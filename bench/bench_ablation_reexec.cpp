// bench_ablation_reexec.cpp - Ablation A2: the value of re-execution.
//
// The paper's model forbids migration but allows restarting a job from
// scratch on another resource. Is that freedom worth anything? This
// ablation compares SRPT with re-execution enabled (the paper's variant)
// against a crippled SRPT that never discards progress, across a load
// sweep. Expected: re-execution helps under contention (a queued job can
// escape to an idle resource) at the price of some wasted work.
//
// Flags: --reps, --seed, --n, --load=0.05,0.25,...
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 1000));
  const std::vector<double> loads =
      args.get_double_list("load", {0.05, 0.25, 0.5, 1.0});
  const std::vector<std::string> policies = {"srpt", "srpt-noreexec"};

  print_bench_header(std::cout, "Ablation A2: value of re-execution (SRPT)",
                     "random instances, n = " + std::to_string(n) +
                         ", CCR = 1, load sweep",
                     options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (double load : loads) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 1.0;
    cfg.load = load;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(load, 3);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(load, 3), factory,
                                     policies, sweep));
    std::cout << "  [done] load = " << format_double(load, 3) << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "load");
  const int status = bench::write_trace_artifacts(
      options, policies, trace_label, trace_factory);

  std::cout << "re-executions per instance (mean)\n";
  Table table({"load", "srpt", "srpt-noreexec"});
  for (const SweepPointResult& point : points) {
    table.add_row({point.label,
                   format_double(point.policy("srpt").reassignments.mean(), 1),
                   format_double(
                       point.policy("srpt-noreexec").reassignments.mean(), 1)});
  }
  table.print(std::cout);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
