// bench_engine_micro.cpp - Microbenchmarks of the simulation engine itself
// (not a paper figure; used to track the substrate's performance).
//
// Measures raw event throughput with the cheapest possible policy (fixed
// allocation and priorities) so the engine's bookkeeping — event queue,
// activation, interval recording — dominates, plus the marginal cost of
// schedule recording and of the section III-B validator.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

ecs::Instance make_instance(int n, std::uint64_t seed) {
  ecs::RandomInstanceConfig cfg;
  cfg.n = n;
  cfg.ccr = 1.0;
  cfg.load = 0.05;
  ecs::Rng rng(seed);
  return make_random_instance(cfg, rng);
}

/// Round-robin fixed allocation: roughly half the jobs on their edge, the
/// rest spread over the clouds; priorities by id.
ecs::FixedPolicy make_fixed_policy(const ecs::Instance& instance) {
  std::vector<int> alloc(instance.jobs.size());
  std::vector<double> priority(instance.jobs.size());
  const int clouds = instance.platform.cloud_count();
  for (std::size_t i = 0; i < instance.jobs.size(); ++i) {
    alloc[i] = (i % 2 == 0) ? ecs::kAllocEdge
                            : static_cast<int>(i / 2 % clouds);
    priority[i] = static_cast<double>(i);
  }
  return ecs::FixedPolicy(std::move(alloc), std::move(priority));
}

void engine_events(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  std::uint64_t events = 0;
  for (auto _ : state) {
    ecs::FixedPolicy policy = make_fixed_policy(instance);
    ecs::EngineConfig config;
    config.record_schedule = false;
    const ecs::SimResult result = ecs::simulate(instance, policy, config);
    events = result.stats.events;
    benchmark::DoNotOptimize(result.completions.data());
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(engine_events)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void engine_with_recording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  for (auto _ : state) {
    ecs::FixedPolicy policy = make_fixed_policy(instance);
    ecs::EngineConfig config;
    config.record_schedule = true;
    const ecs::SimResult result = ecs::simulate(instance, policy, config);
    benchmark::DoNotOptimize(result.schedule.job_count());
  }
}
BENCHMARK(engine_with_recording)->Arg(1000)->Unit(benchmark::kMillisecond);

void validator_cost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  ecs::FixedPolicy policy = make_fixed_policy(instance);
  const ecs::SimResult result = ecs::simulate(instance, policy);
  for (auto _ : state) {
    const auto violations =
        ecs::validate_schedule(instance, result.schedule);
    benchmark::DoNotOptimize(violations.size());
  }
}
BENCHMARK(validator_cost)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ecs::bench::apply_log_level_argv(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
