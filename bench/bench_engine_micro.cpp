// bench_engine_micro.cpp - Microbenchmarks of the simulation engine itself
// (not a paper figure; used to track the substrate's performance).
//
// Measures raw event throughput with the cheapest possible policy (fixed
// allocation and priorities) so the engine's bookkeeping — event queue,
// activation, interval recording — dominates, plus the marginal cost of
// schedule recording and of the section III-B validator.
//
// The engine_events_sparse series is the scaling probe for the active-set
// event loop: n grows to 100k jobs while arrivals stay spread out, so the
// number of *live* jobs at any instant is bounded and per-event cost must
// stay flat in n. A policy that reacts only to the events that fired (never
// sweeping all jobs) keeps the engine's own bookkeeping dominant.
//
// With --json-out=PATH (e.g. --json-out=BENCH_engine.json) the binary also
// writes a compact machine-readable summary: one row per benchmark with the
// per-iteration time, events per second and per-event nanoseconds.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_micro_common.hpp"

#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "sim/engine_core.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

ecs::Instance make_instance(int n, std::uint64_t seed) {
  ecs::RandomInstanceConfig cfg;
  cfg.n = n;
  cfg.ccr = 1.0;
  cfg.load = 0.05;
  ecs::Rng rng(seed);
  return make_random_instance(cfg, rng);
}

/// Round-robin fixed allocation: roughly half the jobs on their edge, the
/// rest spread over the clouds; priorities by id.
ecs::FixedPolicy make_fixed_policy(const ecs::Instance& instance) {
  std::vector<int> alloc(instance.jobs.size());
  std::vector<double> priority(instance.jobs.size());
  const int clouds = instance.platform.cloud_count();
  for (std::size_t i = 0; i < instance.jobs.size(); ++i) {
    alloc[i] = (i % 2 == 0) ? ecs::kAllocEdge
                            : static_cast<int>(i / 2 % clouds);
    priority[i] = static_cast<double>(i);
  }
  return ecs::FixedPolicy(std::move(alloc), std::move(priority));
}

/// O(|events|) policy: allocates each job once, at its release, and stays
/// silent otherwise. Unlike FixedPolicy (one directive per job per
/// decision), its cost does not grow with n, so the sparse series measures
/// the engine and not the policy.
class OnReleasePolicy final : public ecs::Policy {
 public:
  explicit OnReleasePolicy(int clouds) : clouds_(clouds) {}
  [[nodiscard]] std::string name() const override { return "OnRelease"; }
  void decide(const ecs::SimView& view,
              const std::vector<ecs::Event>& events,
              std::vector<ecs::Directive>& out) override {
    (void)view;
    for (const ecs::Event& e : events) {
      if (e.kind != ecs::EventKind::kRelease) continue;
      const int target = (e.job % 2 == 0)
                             ? ecs::kAllocEdge
                             : static_cast<int>(e.job / 2 % clouds_);
      out.push_back(
          ecs::Directive{e.job, target, static_cast<double>(e.job)});
    }
  }

 private:
  int clouds_;
};

/// Deterministic sparse-activity instance: arrivals are spaced so that both
/// the edges and the clouds run well below saturation and the live set
/// stays bounded (a few jobs) regardless of n.
ecs::Instance sparse_instance(int n) {
  const int edges = 20;
  ecs::Instance instance;
  instance.platform =
      ecs::Platform(std::vector<double>(edges, 0.5), 4);
  instance.jobs.reserve(n);
  for (int i = 0; i < n; ++i) {
    ecs::Job job;
    job.id = i;
    job.origin = i % edges;
    job.work = 1.0 + 0.25 * (i % 4);
    job.release = 0.3 * i;
    job.up = 0.2;
    job.down = 0.1;
    instance.jobs.push_back(job);
  }
  return instance;
}

void engine_events(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  std::uint64_t events = 0;
  for (auto _ : state) {
    ecs::FixedPolicy policy = make_fixed_policy(instance);
    ecs::EngineConfig config;
    config.record_schedule = false;
    const ecs::SimResult result = ecs::simulate(instance, policy, config);
    events = result.stats.events;
    benchmark::DoNotOptimize(result.completions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(engine_events)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void engine_events_sparse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = sparse_instance(n);
  std::uint64_t events = 0;
  for (auto _ : state) {
    OnReleasePolicy policy(instance.platform.cloud_count());
    ecs::EngineConfig config;
    config.record_schedule = false;
    const ecs::SimResult result = ecs::simulate(instance, policy, config);
    events = result.stats.events;
    benchmark::DoNotOptimize(result.completions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(engine_events_sparse)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void engine_core_reuse(benchmark::State& state) {
  // The batch driver's cost structure in isolation: one resident
  // EngineCore re-prepared per run (buffer capacity survives, zero
  // steady-state allocation), versus engine_events' fresh-everything
  // simulate(). Same instance, same fixed policy, same recording config —
  // the delta against engine_events at equal n is the per-run construction
  // cost the resident core avoids.
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  ecs::FixedPolicy policy = make_fixed_policy(instance);
  ecs::detail::EngineCore core;
  ecs::SimResult result;
  ecs::EngineConfig config;
  config.record_schedule = false;
  config.time_policy = false;
  std::uint64_t events = 0;
  for (auto _ : state) {
    policy.reset(instance);
    core.prepare(instance, nullptr, policy, config);
    while (!core.step_rounds(0)) {
    }
    core.finish_into(result);
    events = result.stats.events;
    benchmark::DoNotOptimize(result.completions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(engine_core_reuse)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void engine_with_recording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  for (auto _ : state) {
    ecs::FixedPolicy policy = make_fixed_policy(instance);
    ecs::EngineConfig config;
    config.record_schedule = true;
    const ecs::SimResult result = ecs::simulate(instance, policy, config);
    benchmark::DoNotOptimize(result.schedule.job_count());
  }
}
BENCHMARK(engine_with_recording)->Arg(1000)->Unit(benchmark::kMillisecond);

void validator_cost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = make_instance(n, 7);
  ecs::FixedPolicy policy = make_fixed_policy(instance);
  const ecs::SimResult result = ecs::simulate(instance, policy);
  for (auto _ : state) {
    const auto violations =
        ecs::validate_schedule(instance, result.schedule);
    benchmark::DoNotOptimize(violations.size());
  }
}
BENCHMARK(validator_cost)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ecs::bench::apply_log_level_argv(argc, argv);
  const std::string json_path = ecs::bench::extract_json_out(argc, argv);
  ecs::bench::CompactJsonReporter reporter("events_per_s", "per_event_ns");
  return ecs::bench::run_micro_benchmarks(argc, argv, json_path, reporter);
}
