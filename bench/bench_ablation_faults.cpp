// bench_ablation_faults.cpp - Ablation A5: unannounced faults and failover.
//
// Unlike the announced availability windows of A4 (known to the policies in
// advance via Instance::cloud_outages), the faults here are injected by the
// engine and become visible to a policy only through kFault / kRecovery
// events after the damage is done: a crash aborts every activity on the
// cloud and discards all progress (the paper's re-execution rule), a
// message loss forces the affected transfer to restart. The ablation sweeps
// the per-cloud crash rate and compares each naive heuristic against its
// failover-wrapped counterpart (retry with exponential backoff, per-cloud
// blacklisting, graceful degradation to edge-only). At rate 0 the wrapped
// policies reproduce their base exactly; at nonzero rates they should win.
//
// Flags: --reps, --seed, --n, --rate=0,0.002,..., --repair=100
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "workloads/load.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions base_options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 600));
  const double mean_repair = args.get_double("repair", 100.0);
  const std::vector<double> rates =
      args.get_double_list("rate", {0.0, 0.002, 0.005, 0.01});
  const std::vector<std::string> policies = {
      "greedy",  "failover-greedy",  "srpt",
      "failover-srpt", "ssf-edf", "failover-ssf-edf"};

  print_bench_header(
      std::cout, "Ablation A5: unannounced faults + failover",
      "random instances, n = " + std::to_string(n) +
          ", CCR = 0.5, load 0.25; per-cloud crash rate as given, mean "
          "repair " + format_double(mean_repair, 1) +
          "; faults are unannounced (engine-injected)",
      base_options.sweep.replications, base_options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  bench::CommonOptions trace_options = base_options;
  for (double rate : rates) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 0.5;
    cfg.load = 0.25;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    bench::CommonOptions options = base_options;
    if (rate > 0.0) {
      const double load = cfg.load;
      options.sweep.fault_factory = [rate, mean_repair, load](
                                        const Instance& instance,
                                        std::uint64_t seed) {
        double total_work = 0.0;
        for (const Job& job : instance.jobs) total_work += job.work;
        FaultConfig fault_cfg;
        fault_cfg.crash_rate = rate;
        fault_cfg.mean_repair = mean_repair;
        fault_cfg.loss_rate = rate;
        // Cover the full busy period with margin.
        fault_cfg.horizon =
            2.0 * release_horizon(total_work,
                                  instance.platform.total_speed(), load);
        // Derive the fault stream from a distinct sub-seed so the plan is
        // independent of the instance draw but still replayable.
        Rng rng(derive_seed(seed, hash_tag("faults")));
        return make_fault_plan(instance.platform.cloud_count(), fault_cfg,
                               rng);
      };
    }
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(rate, 4);
      trace_options = options;
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(rate, 4), factory,
                                     policies, sweep));
    std::cout << "  [done] rate = " << format_double(rate, 4) << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, base_options, "crash-rate");
  return bench::write_trace_artifacts(trace_options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
