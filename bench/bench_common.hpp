// bench_common.hpp - Shared plumbing for the figure-reproduction binaries.
//
// Every bench binary follows the same pattern: parse the common flags,
// build one InstanceFactory per sweep point, run the sweep, and print a
// paper-style table (optionally also CSV). Flags understood by all
// binaries:
//
//   --reps=N        replications per point (paper: 1000; defaults are
//                   smaller so the whole suite finishes on small hosts)
//   --seed=S        base seed (default 42)
//   --threads=T     worker threads (default: hardware concurrency)
//   --csv=PATH      also write the table as CSV
//   --stddev        show the standard deviation next to each mean
//   --no-validate   skip the first-replication schedule validation
//   --log-level=L   stderr log threshold: debug, info, warn or error
//
// Observability flags (see docs/OBSERVABILITY.md): after the sweep, the
// first replication of the first sweep point is re-run with sinks attached
// and the artifacts are written out.
//
//   --trace-out=PATH     Chrome/Perfetto trace_event JSON (ui.perfetto.dev)
//   --trace-jsonl=PATH   lossless JSONL trace (tools/trace_inspect reads it)
//   --metrics-out=PATH   MetricsRegistry JSON snapshot of that run
//   --metrics-prom=PATH  MetricsRegistry Prometheus text exposition
//   --trace-policy=NAME  policy to trace (default: last policy of the run)
//   --watchdog           run the traced replication under the online
//                        invariant watchdog (obs/watchdog.hpp) and print
//                        its report; exits 3 on a violation
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto_sink.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace ecs::bench {

struct CommonOptions {
  SweepOptions sweep;
  std::string csv_path;
  bool show_stddev = false;
  std::string trace_path;    ///< --trace-out=   Perfetto trace_event JSON
  std::string trace_jsonl;   ///< --trace-jsonl= lossless JSONL trace
  std::string metrics_path;  ///< --metrics-out= metrics registry JSON
  std::string metrics_prom;  ///< --metrics-prom= Prometheus exposition
  std::string trace_policy;  ///< --trace-policy= (default: last policy)
  bool watchdog = false;     ///< --watchdog: invariant-check the traced run
};

/// Runs a bench binary's body under the repo's error-path convention:
/// exceptions (e.g. a malformed numeric flag rejected by Args, or an
/// invalid schedule) become a one-line `error: ...` on stderr and exit
/// status 1 instead of std::terminate.
template <typename Fn>
int guarded_main(Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

/// Applies --log-level=debug|info|warn|error; exits with status 2 on an
/// unknown level name.
inline void apply_log_level(const Args& args) {
  const std::string name = args.get_or("log-level", "");
  if (name.empty()) return;
  const std::optional<LogLevel> level = parse_log_level(name);
  if (!level) {
    std::cerr << "unknown --log-level '" << name
              << "' (expected debug, info, warn or error)\n";
    std::exit(2);
  }
  set_log_level(*level);
}

/// argv-level variant for google-benchmark binaries: strips
/// --log-level=... before benchmark::Initialize sees (and rejects) it.
inline void apply_log_level_argv(int& argc, char** argv) {
  const std::string prefix = "--log-level=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      const std::optional<LogLevel> level =
          parse_log_level(arg.substr(prefix.size()));
      if (!level) {
        std::cerr << "unknown " << arg
                  << " (expected debug, info, warn or error)\n";
        std::exit(2);
      }
      set_log_level(*level);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
}

inline CommonOptions parse_common(const Args& args, int default_reps) {
  CommonOptions options;
  options.sweep.replications =
      static_cast<int>(args.get_int("reps", default_reps));
  options.sweep.base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.sweep.threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  options.sweep.validate_first = !args.get_bool("no-validate", false);
  options.csv_path = args.get_or("csv", "");
  options.show_stddev = args.get_bool("stddev", false);
  options.trace_path = args.get_or("trace-out", "");
  options.trace_jsonl = args.get_or("trace-jsonl", "");
  options.metrics_path = args.get_or("metrics-out", "");
  options.metrics_prom = args.get_or("metrics-prom", "");
  options.trace_policy = args.get_or("trace-policy", "");
  options.watchdog = args.get_bool("watchdog", false);
  apply_log_level(args);
  return options;
}

/// True when any observability artifact was requested.
inline bool wants_trace_artifacts(const CommonOptions& options) {
  return !options.trace_path.empty() || !options.trace_jsonl.empty() ||
         !options.metrics_path.empty() || !options.metrics_prom.empty() ||
         options.watchdog;
}

/// Re-runs the first replication of the given sweep point with the
/// requested sinks attached and writes the artifact files. A no-op unless
/// one of --trace-out / --trace-jsonl / --metrics-out / --metrics-prom /
/// --watchdog was given. Runs the exact instance (and fault plan) of
/// replication 0 — `point_index` must be the index the sweep ran the point
/// under (sweep_seed mixes it) — so the trace shows one of the runs the
/// sweep aggregated. Returns the process exit status: 0, or 3 when
/// --watchdog detected an invariant violation (callers `return` it from
/// main).
[[nodiscard]] inline int write_trace_artifacts(
    const CommonOptions& options, const std::vector<std::string>& policies,
    const std::string& label, const InstanceFactory& factory,
    int point_index = 0) {
  if (!wants_trace_artifacts(options) || policies.empty() || !factory) {
    return 0;
  }
  // Default to the last policy: the binaries list edge-only first, so the
  // last one is a cloud-using heuristic whose trace shows communication
  // spans and flow arrows (override with --trace-policy).
  const std::string policy =
      options.trace_policy.empty() ? policies.back() : options.trace_policy;
  const std::uint64_t seed =
      sweep_seed(options.sweep.base_seed, point_index, label, 0);
  const Instance instance = factory(seed);

  std::ofstream perfetto_file;
  std::ofstream jsonl_file;
  std::optional<obs::PerfettoTraceSink> perfetto;
  std::optional<obs::JsonlTraceSink> jsonl;
  obs::TeeTraceSink tee;
  if (!options.trace_path.empty()) {
    perfetto_file.open(options.trace_path);
    if (!perfetto_file) {
      std::cerr << "cannot write trace to " << options.trace_path << "\n";
    } else {
      perfetto.emplace(perfetto_file);
      tee.add(&*perfetto);
    }
  }
  if (!options.trace_jsonl.empty()) {
    jsonl_file.open(options.trace_jsonl);
    if (!jsonl_file) {
      std::cerr << "cannot write trace to " << options.trace_jsonl << "\n";
    } else {
      jsonl.emplace(jsonl_file);
      tee.add(&*jsonl);
    }
  }
  obs::MetricsRegistry registry;
  std::optional<obs::InvariantWatchdog> watchdog;
  if (options.watchdog) watchdog.emplace();

  RunOptions run_options;
  run_options.engine = options.sweep.engine;
  if (options.sweep.fault_factory) {
    run_options.engine.faults = options.sweep.fault_factory(instance, seed);
  }
  if (!tee.empty()) run_options.engine.trace = &tee;
  run_options.engine.metrics = &registry;
  if (watchdog) run_options.engine.watchdog = &*watchdog;
  // Traced artifacts carry decision provenance so trace_inspect --explain
  // can reconstruct every job's causal story from the JSONL file.
  run_options.engine.provenance = true;
  const RunOutcome outcome = run_policy(instance, policy, run_options);

  std::cout << "traced run: policy " << policy << ", point " << label
            << ", max-stretch "
            << format_double(outcome.metrics.max_stretch, 3) << ", "
            << outcome.stats.events << " events\n";
  if (perfetto) {
    std::cout << "  Perfetto trace -> " << options.trace_path
              << "  (open in ui.perfetto.dev)\n";
  }
  if (jsonl) {
    std::cout << "  JSONL trace    -> " << options.trace_jsonl
              << "  (summarize with tools/trace_inspect)\n";
  }
  if (!options.metrics_path.empty()) {
    std::ofstream metrics_file(options.metrics_path);
    if (!metrics_file) {
      std::cerr << "cannot write metrics to " << options.metrics_path << "\n";
    } else {
      registry.write_json(metrics_file);
      std::cout << "  metrics JSON   -> " << options.metrics_path << "\n";
    }
  }
  if (!options.metrics_prom.empty()) {
    std::ofstream prom_file(options.metrics_prom);
    if (!prom_file) {
      std::cerr << "cannot write metrics to " << options.metrics_prom << "\n";
    } else {
      registry.write_prometheus(prom_file);
      std::cout << "  Prometheus     -> " << options.metrics_prom << "\n";
    }
  }
  if (watchdog) {
    watchdog->report(std::cout);
    if (!watchdog->ok()) return 3;
  }
  return 0;
}

/// Prints the stretch table and the scheduling-time table for a finished
/// sweep, and writes the CSV when requested.
inline void report_sweep(const std::vector<SweepPointResult>& points,
                         const std::vector<std::string>& policies,
                         const CommonOptions& options,
                         const std::string& x_label) {
  ReportOptions stretch_options;
  stretch_options.metric = ReportMetric::kMaxStretch;
  stretch_options.x_label = x_label;
  stretch_options.show_stddev = options.show_stddev;
  const Table stretch_table = make_report(points, policies, stretch_options);
  std::cout << "max-stretch (mean over replications)\n";
  stretch_table.print(std::cout);

  ReportOptions time_options;
  time_options.metric = ReportMetric::kWallSeconds;
  time_options.x_label = x_label;
  time_options.precision = 4;
  const Table time_table = make_report(points, policies, time_options);
  std::cout << "\nscheduling time per instance [s]\n";
  time_table.print(std::cout);

  const Table quantile_table =
      make_stretch_quantile_report(points, policies, x_label);
  std::cout << "\nper-job stretch tail (quantile sketch, "
            << format_double(obs::QuantileSketch::kDefaultAlpha * 100.0, 0)
            << "% relative error)\n";
  quantile_table.print(std::cout);
  std::cout << "\n";

  if (!options.csv_path.empty()) {
    std::ofstream csv(options.csv_path);
    if (!csv) {
      std::cerr << "cannot write CSV to " << options.csv_path << "\n";
    } else {
      stretch_table.write_csv(csv);
      csv << "\n";
      time_table.write_csv(csv);
      csv << "\n";
      quantile_table.write_csv(csv);
      std::cout << "CSV written to " << options.csv_path << "\n";
    }
  }
}

}  // namespace ecs::bench
