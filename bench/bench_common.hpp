// bench_common.hpp - Shared plumbing for the figure-reproduction binaries.
//
// Every bench binary follows the same pattern: parse the common flags,
// build one InstanceFactory per sweep point, run the sweep, and print a
// paper-style table (optionally also CSV). Flags understood by all
// binaries:
//
//   --reps=N        replications per point (paper: 1000; defaults are
//                   smaller so the whole suite finishes on small hosts)
//   --seed=S        base seed (default 42)
//   --threads=T     worker threads (default: hardware concurrency)
//   --csv=PATH      also write the table as CSV
//   --stddev        show the standard deviation next to each mean
//   --no-validate   skip the first-replication schedule validation
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "util/args.hpp"

namespace ecs::bench {

struct CommonOptions {
  SweepOptions sweep;
  std::string csv_path;
  bool show_stddev = false;
};

inline CommonOptions parse_common(const Args& args, int default_reps) {
  CommonOptions options;
  options.sweep.replications =
      static_cast<int>(args.get_int("reps", default_reps));
  options.sweep.base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.sweep.threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  options.sweep.validate_first = !args.get_bool("no-validate", false);
  options.csv_path = args.get_or("csv", "");
  options.show_stddev = args.get_bool("stddev", false);
  return options;
}

/// Prints the stretch table and the scheduling-time table for a finished
/// sweep, and writes the CSV when requested.
inline void report_sweep(const std::vector<SweepPointResult>& points,
                         const std::vector<std::string>& policies,
                         const CommonOptions& options,
                         const std::string& x_label) {
  ReportOptions stretch_options;
  stretch_options.metric = ReportMetric::kMaxStretch;
  stretch_options.x_label = x_label;
  stretch_options.show_stddev = options.show_stddev;
  const Table stretch_table = make_report(points, policies, stretch_options);
  std::cout << "max-stretch (mean over replications)\n";
  stretch_table.print(std::cout);

  ReportOptions time_options;
  time_options.metric = ReportMetric::kWallSeconds;
  time_options.x_label = x_label;
  time_options.precision = 4;
  const Table time_table = make_report(points, policies, time_options);
  std::cout << "\nscheduling time per instance [s]\n";
  time_table.print(std::cout);
  std::cout << "\n";

  if (!options.csv_path.empty()) {
    std::ofstream csv(options.csv_path);
    if (!csv) {
      std::cerr << "cannot write CSV to " << options.csv_path << "\n";
    } else {
      stretch_table.write_csv(csv);
      csv << "\n";
      time_table.write_csv(csv);
      std::cout << "CSV written to " << options.csv_path << "\n";
    }
  }
}

}  // namespace ecs::bench
