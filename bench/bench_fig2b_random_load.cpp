// bench_fig2b_random_load.cpp - Reproduces Figure 2(b) of the paper.
//
// Random instances with CCR = 1, sweeping the load from 0.05 up to 2.
// Following the paper, Edge-Only is omitted ("too costly since all jobs
// compete on the edge"). Expected shape: SSF-EDF is clearly best and
// degrades the most gracefully as the load grows; SRPT and Greedy increase
// drastically, and Greedy can overtake SRPT under heavy load. Greedy's
// scheduling time also grows sharply with the load (paper section VI-B,
// "execution times").
//
// Note on absolute values: under the paper's literal horizon formula
// (sum of work / (load * aggregate speed)), load > 1 oversubscribes the
// platform, so every policy's max-stretch necessarily grows with n — the
// comparative ordering is the reproducible signal here (see
// EXPERIMENTS.md).
//
// Extra flags: --n=N, --load=0.05,0.2,...
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 3);
  const int n = static_cast<int>(args.get_int("n", 2000));
  const std::vector<double> loads =
      args.get_double_list("load", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0});
  const std::vector<std::string> policies = {"greedy", "srpt", "ssf-edf"};

  print_bench_header(
      std::cout, "Figure 2(b): random instances, max-stretch vs load",
      "n = " + std::to_string(n) +
          ", CCR = 1, 20 cloud / 10+10 edge processors (Edge-Only omitted "
          "as in the paper)",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (double load : loads) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 1.0;
    cfg.load = load;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(load, 3);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(load, 3), factory,
                                     policies, sweep));
    std::cout << "  [done] load = " << format_double(load, 3) << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "load");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
