// bench_fig2d_kang_100edges.cpp - Reproduces Figure 2(d) of the paper.
//
// Same as Figure 2(c) but with 100 edge processors competing for the same
// 10 cloud processors. Expected shape: with more competition for the cloud,
// Greedy closes the gap with SRPT and SSF-EDF; scheduling times are much
// higher than in the 20-edge scenario (the paper reports up to 16 s for
// SSF-EDF at its largest instances).
//
// Extra flags: --n=250,500,... (sweep points), --edges=100, --clouds=10.
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/kang_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 3);
  const std::vector<std::int64_t> ns =
      args.get_int_list("n", {500, 1000, 2000, 4000});
  const int edges = static_cast<int>(args.get_int("edges", 100));
  const int clouds = static_cast<int>(args.get_int("clouds", 10));
  const std::vector<std::string> policies = paper_policy_names();

  print_bench_header(
      std::cout, "Figure 2(d): Kang instances, max-stretch vs n (100 edges)",
      std::to_string(edges) + " edge processors (GPU/CPU x WiFi/LTE/3G), " +
          std::to_string(clouds) + " cloud processors, load 0.05",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (std::int64_t n : ns) {
    KangInstanceConfig cfg;
    cfg.n = static_cast<int>(n);
    cfg.edge_count = edges;
    cfg.cloud_count = clouds;
    cfg.load = 0.05;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_kang_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = std::to_string(n);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(std::to_string(n), factory, policies,
                                     sweep));
    std::cout << "  [done] n = " << n << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "n");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
