// bench_ablation_cloudsize.cpp - Ablation A3: how many cloud processors
// does the platform need?
//
// The paper fixes 20 cloud processors for the random scenarios. This
// ablation sweeps the cloud size from 0 (pure edge) upward at fixed load
// to show where the heuristics stop benefiting from extra cloud capacity —
// the crossover between communication-bound and compute-bound operation.
//
// Flags: --reps, --seed, --n, --clouds=0,5,10,...
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 1000));
  const std::vector<std::int64_t> cloud_sizes =
      args.get_int_list("clouds", {0, 2, 5, 10, 20, 40});
  const std::vector<std::string> policies = {"greedy", "srpt", "ssf-edf"};

  print_bench_header(
      std::cout, "Ablation A3: cloud size sweep",
      "random instances, n = " + std::to_string(n) +
          ", CCR = 1, load 0.25 (load horizon scales with capacity)",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (std::int64_t clouds : cloud_sizes) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 1.0;
    cfg.load = 0.25;
    cfg.cloud_count = static_cast<int>(clouds);
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = std::to_string(clouds);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(std::to_string(clouds), factory,
                                     policies, sweep));
    std::cout << "  [done] clouds = " << clouds << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "clouds");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
