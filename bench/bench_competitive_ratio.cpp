// bench_competitive_ratio.cpp - Empirical competitiveness of the online
// stretch-so-far EDF algorithm on a single machine.
//
// The paper builds on Bender et al.: on one processor, stretch-so-far EDF
// with alpha = 1 is Delta-competitive, where Delta is the ratio between
// the longest and the shortest job, and the offline optimum is computable
// in polynomial time by binary search + preemptive EDF. The paper's
// future work asks for competitive bounds in the edge-cloud setting; this
// bench provides the empirical ground truth for the single-machine core:
// it sweeps Delta, solves each instance both online (Edge-Only on a
// single-edge, cloudless platform) and offline (the exact oracle), and
// reports mean and worst observed ratio against the Delta bound.
//
// Flags: --reps, --seed, --n, --delta=2,8,...
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "sched/edge_only.hpp"
#include "sched/offline/single_machine.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  bench::apply_log_level(args);
  const int reps = static_cast<int>(args.get_int("reps", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int n = static_cast<int>(args.get_int("n", 40));
  const std::vector<double> deltas =
      args.get_double_list("delta", {2.0, 4.0, 16.0, 64.0});

  print_bench_header(
      std::cout, "Empirical competitive ratio: stretch-so-far EDF, 1 machine",
      "n = " + std::to_string(n) +
          " jobs, works uniform in [1, Delta], bursty releases; ratio = "
          "online / offline-optimal max-stretch (bound: Delta)",
      reps, seed);

  Table table({"Delta", "mean ratio", "worst ratio", "bound"});
  for (double delta : deltas) {
    Accumulator ratio;
    double worst = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(derive_seed(derive_seed(seed, hash_tag("delta")),
                          static_cast<std::uint64_t>(rep) * 1000 +
                              static_cast<std::uint64_t>(delta)));
      Instance instance;
      instance.platform = Platform({1.0}, 0);
      // Bursty arrivals stress the online algorithm: a fraction of the
      // jobs lands in tight clusters.
      Time t = 0.0;
      for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) t += rng.uniform(0.0, 4.0 * delta);
        instance.jobs.push_back(Job{i, 0, rng.uniform(1.0, delta), t,
                                    0.0, 0.0});
      }

      EdgeOnlyPolicy online;
      const SimResult sim = simulate(instance, online);
      const double online_stretch =
          metrics_from_completions(instance, sim.completions).max_stretch;

      std::vector<SmJob> jobs;
      for (const Job& job : instance.jobs) {
        jobs.push_back(SmJob{job.work, job.release, job.work});
      }
      const double offline_stretch =
          optimal_max_stretch_single_machine(jobs).max_stretch;

      const double r = online_stretch / offline_stretch;
      ratio.add(r);
      worst = std::max(worst, r);
    }
    table.add_row({format_double(delta, 2), format_double(ratio.mean(), 4),
                   format_double(worst, 4), format_double(delta, 2)});
    std::cout << "  [done] Delta = " << format_double(delta, 2) << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nThe observed worst ratio must stay below the Delta bound "
               "(and in practice sits far below it).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
