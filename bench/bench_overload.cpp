// bench_overload.cpp - Graceful degradation under sustained overload.
//
// Sweeps the arrival rate of a streaming workload across (and past) the
// platform's service capacity and reports, per rate point, how admission
// control trades jobs for tail latency: the refusal rate (rejections +
// sheds over all arrivals) against the p50 / p90 / p99 / p99.9 stretch of
// the jobs that WERE admitted and completed. The headline claim this bench
// pins: with admission on, the admitted tail stays bounded as the offered
// load grows — the refusal rate absorbs the overload — while with
// admission off the tail (and the live set) grows without bound.
//
// Flags:
//   --rates=R1,R2,...   arrival rates to sweep (jobs per unit time;
//                       default 1,2,4,8 around the ~2.6 capacity of the
//                       default 20-cloud/10+10-edge platform)
//   --n=N               jobs per rate point (default 20000)
//   --family=F          poisson | diurnal | bursty | pareto (default
//                       poisson)
//   --policy=NAME       scheduling policy (default srpt)
//   --max-live=K        admission cap on resident jobs (default 64;
//                       0 = admission off, the unbounded contrast row)
//   --rule=R            reject-newest | reject-hopeless | shed-infeasible
//                       (default reject-newest)
//   --stretch-limit=X   bound for shed-infeasible (default 8)
//   --seed=S            base seed (default 42)
//   --json-out=PATH     write the table as compact JSON rows
//                       (BENCH_overload.json in CI)
//   --log-level=L       stderr log threshold
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/sketch.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/random_instances.hpp"

namespace {

using namespace ecs;

/// Feeds every completion's realized stretch (the kCompletion instant's
/// value) into a quantile sketch; ignores the rest of the trace stream.
/// O(1) memory regardless of n — soak-friendly.
class StretchTailSink final : public obs::TraceSink {
 public:
  void record(const obs::TraceRecord& rec) override {
    if (rec.kind == obs::TraceKind::kInstant &&
        rec.point == obs::TracePoint::kCompletion) {
      sketch_.observe(rec.value);
    }
  }
  [[nodiscard]] const obs::QuantileSketch& sketch() const { return sketch_; }

 private:
  obs::QuantileSketch sketch_;
};

struct Row {
  double rate = 0.0;
  SimStats stats;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0, max = 0.0;
  double wall_seconds = 0.0;
  double refusal_rate = 0.0;
};

int run(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  bench::apply_log_level(args);
  const std::vector<double> rates =
      args.get_double_list("rates", {1.0, 2.0, 4.0, 8.0});
  const auto n = args.get_int("n", 20'000);
  const std::string family_name = args.get_or("family", "poisson");
  const std::string policy_name = args.get_or("policy", "srpt");
  const auto max_live =
      static_cast<std::uint64_t>(args.get_int("max-live", 64));
  const std::string rule_name = args.get_or("rule", "reject-newest");
  const double stretch_limit = args.get_double("stretch-limit", 8.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string json_path = args.get_or("json-out", "");

  AdmissionConfig admission;
  admission.max_live = max_live;
  if (rule_name == "reject-newest") {
    admission.rule = AdmissionRule::kRejectNewest;
  } else if (rule_name == "reject-hopeless") {
    admission.rule = AdmissionRule::kRejectHopeless;
  } else if (rule_name == "shed-infeasible") {
    admission.rule = AdmissionRule::kShedInfeasible;
    admission.stretch_limit = stretch_limit;
  } else {
    std::fprintf(stderr, "unknown --rule '%s'\n", rule_name.c_str());
    return 2;
  }

  RandomInstanceConfig platform_cfg;  // paper platform, jobs unused
  Instance base;
  base.platform = make_random_platform(platform_cfg);

  std::printf(
      "overload sweep: %s arrivals, policy %s, n=%lld per point, "
      "admission %s (max-live=%llu)\n\n",
      family_name.c_str(), policy_name.c_str(),
      static_cast<long long>(n), rule_name.c_str(),
      static_cast<unsigned long long>(max_live));

  std::vector<Row> rows;
  for (const double rate : rates) {
    ArrivalConfig acfg;
    acfg.family = parse_arrival_family(family_name);
    acfg.n = n;
    acfg.rate = rate;
    acfg.seed = derive_seed(seed, hash_tag("overload"));
    acfg.shape.edge_count = base.platform.edge_count();

    EngineConfig config;
    config.record_schedule = false;
    config.record_completions = false;
    config.record_admission = false;  // stats carry the counts we report
    config.admission = admission;
    StretchTailSink sink;
    config.trace = &sink;

    const auto arrivals = make_arrival_stream(acfg);
    const auto policy = make_policy(policy_name);
    const auto start = std::chrono::steady_clock::now();
    const SimResult result =
        simulate_stream(base, *arrivals, *policy, config);

    Row row;
    row.rate = rate;
    row.stats = result.stats;
    row.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const obs::QuantileSketch& sketch = sink.sketch();
    row.p50 = sketch.quantile(0.50);
    row.p90 = sketch.quantile(0.90);
    row.p99 = sketch.quantile(0.99);
    row.p999 = sketch.quantile(0.999);
    row.max = sketch.quantile(1.0);
    row.refusal_rate =
        static_cast<double>(row.stats.rejections + row.stats.sheds) /
        static_cast<double>(n > 0 ? n : 1);
    rows.push_back(row);
    std::printf("  [done] rate = %g\n", rate);
  }

  std::printf(
      "\n%8s %9s %9s %8s %9s %9s %8s %8s %8s %8s %8s\n", "rate", "admitted",
      "refused", "ref.rate", "peak.live", "p50", "p90", "p99", "p99.9",
      "max", "wall[s]");
  for (const Row& r : rows) {
    std::printf(
        "%8g %9llu %9llu %8.3f %9llu %9.2f %8.2f %8.2f %8.2f %8.2f %8.3f\n",
        r.rate, static_cast<unsigned long long>(r.stats.admitted),
        static_cast<unsigned long long>(r.stats.rejections + r.stats.sheds),
        r.refusal_rate, static_cast<unsigned long long>(r.stats.peak_live),
        r.p50, r.p90, r.p99, r.p999, r.max, r.wall_seconds);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "  {\"name\": \"overload/" << family_name << "/rate="
          << r.rate << "\", \"policy\": \"" << policy_name
          << "\", \"rule\": \"" << rule_name << "\""
          << ", \"n\": " << n << ", \"admitted\": " << r.stats.admitted
          << ", \"rejections\": " << r.stats.rejections
          << ", \"sheds\": " << r.stats.sheds
          << ", \"refusal_rate\": " << r.refusal_rate
          << ", \"peak_live\": " << r.stats.peak_live
          << ", \"events\": " << r.stats.events
          << ", \"stretch_p50\": " << r.p50
          << ", \"stretch_p90\": " << r.p90
          << ", \"stretch_p99\": " << r.p99
          << ", \"stretch_p999\": " << r.p999
          << ", \"stretch_max\": " << r.max
          << ", \"real_time_ms\": " << r.wall_seconds * 1e3 << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::printf("\nJSON -> %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
