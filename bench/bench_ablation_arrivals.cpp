// bench_ablation_arrivals.cpp - Ablation A5: robustness to the arrival
// model.
//
// The paper draws release dates uniformly over the load-controlled
// horizon. Real edge traffic is rarely uniform: this ablation re-runs the
// Figure 2(a)-style comparison under Poisson (memoryless) and bursty
// (clustered) arrivals at the same mean rate, checking that the paper's
// conclusions — SSF-EDF best, SRPT close, Greedy behind — survive the
// change of arrival process. Bursty arrivals are the stress case: entire
// clusters compete for the cloud at once.
//
// Flags: --reps, --seed, --n, --load.
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 1000));
  const double load = args.get_double("load", 0.2);
  const std::vector<std::string> policies = {"greedy", "srpt", "ssf-edf",
                                             "fcfs"};

  print_bench_header(
      std::cout, "Ablation A5: arrival-process robustness",
      "random instances, n = " + std::to_string(n) + ", CCR = 1, load " +
          format_double(load, 3) +
          "; same mean rate under uniform / Poisson / bursty releases",
      options.sweep.replications, options.sweep.base_seed);

  const std::vector<std::pair<std::string, ReleaseProcess>> processes = {
      {"uniform", ReleaseProcess::kUniform},
      {"poisson", ReleaseProcess::kPoisson},
      {"bursty", ReleaseProcess::kBursty},
  };

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (const auto& [label, process] : processes) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 1.0;
    cfg.load = load;
    cfg.release_process = process;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = label;
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(label, factory, policies,
                                     sweep));
    std::cout << "  [done] " << label << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "arrivals");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
