// bench_batch.cpp - Sweep throughput: the many-worlds batch driver against
// the legacy task-per-replication baseline (not a paper figure; tracks the
// substrate's performance).
//
// Both series run the SAME sweep point — identical instances, policies,
// seeds, validation contract and thread count — through run_sweep_point,
// differing only in SweepOptions::driver. The workload is a paper-style
// random scenario at sweep scale: many small replications, where the task
// path's per-run construction (policy objects, engine buffers, policy-timer
// clock reads) is pure overhead the batch driver's resident worlds avoid.
// tests/test_exp.cpp pins that the two drivers produce bit-identical
// aggregates, so this comparison is throughput-only by construction.
//
// Flags (besides the usual google-benchmark ones):
//   --json-out=PATH      compact JSON summary (one row per benchmark)
//   --min-speedup=X      after the run, compare the batch and tasks rows at
//                        the LARGEST common replication count and exit 4
//                        when tasks_time / batch_time < X (sanity floor for
//                        CI; see DESIGN.md section 7 for measured numbers).
//
// CI runs a small-N variant and gates the per-world times against
// bench/BENCH_batch_baseline.json via tools/check_bench_regression.py.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_micro_common.hpp"

#include "exp/sweep.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

/// Allocation-light policies on short worlds: the driver's fixed per-run
/// costs (construction, buffer setup, policy-timer clock reads) are the
/// object under measurement. With expensive policies (ssf-edf's search) or
/// big instances the two drivers converge, because the simulation itself
/// dominates and is identical work in both — see DESIGN.md section 7 for
/// the measured breakdown.
const std::vector<std::string> kPolicies = {"edge-only", "greedy",
                                            "srpt"};

ecs::Instance sweep_instance(std::uint64_t seed) {
  ecs::RandomInstanceConfig cfg;
  cfg.n = 30;  // short worlds: the regime where driver overhead shows
  cfg.cloud_count = 4;
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  cfg.ccr = 1.0;
  cfg.load = 0.1;
  ecs::Rng rng(seed);
  return make_random_instance(cfg, rng);
}

ecs::SweepOptions sweep_options(int reps, ecs::SweepDriver driver) {
  ecs::SweepOptions options;
  options.replications = reps;
  options.driver = driver;
  options.point_index = 0;
  // Validation on: rep 0 of each policy records + validates, exactly what
  // the figure binaries do. Threads at the default (hardware concurrency)
  // for both drivers.
  options.validate_first = true;
  return options;
}

void run_point(benchmark::State& state, ecs::SweepDriver driver) {
  const int reps = static_cast<int>(state.range(0));
  const ecs::SweepOptions options = sweep_options(reps, driver);
  double max_stretch = 0.0;
  for (auto _ : state) {
    const ecs::SweepPointResult result = ecs::run_sweep_point(
        "point", [](std::uint64_t seed) { return sweep_instance(seed); },
        kPolicies, options);
    max_stretch = result.per_policy.front().max_stretch.mean();
    benchmark::DoNotOptimize(max_stretch);
  }
  const auto worlds =
      static_cast<double>(reps) * static_cast<double>(kPolicies.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(worlds) *
                          state.iterations());
  state.counters["worlds_per_s"] = benchmark::Counter(
      worlds, benchmark::Counter::kIsIterationInvariantRate);
}

void sweep_tasks(benchmark::State& state) {
  run_point(state, ecs::SweepDriver::kTasks);
}
void sweep_batch(benchmark::State& state) {
  run_point(state, ecs::SweepDriver::kBatch);
}

// Same Arg list for both so every replication count has a matched pair.
// UseRealTime: both drivers are internally multi-threaded, so wall time is
// the comparable quantity (and the one the speedup gate uses).
BENCHMARK(sweep_tasks)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sweep_batch)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Strips --min-speedup=X from argv; 0 = not requested.
double extract_min_speedup(int& argc, char** argv) {
  const std::string prefix = "--min-speedup=";
  double value = 0.0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = std::atof(arg.substr(prefix.size()).c_str());
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// Finds the per-iteration time of `prefix/N` for the largest N present in
/// both series; returns 0 on no match.
double time_of(const std::vector<ecs::bench::CompactJsonReporter::Row>& rows,
               const std::string& name) {
  for (const auto& row : rows) {
    if (row.name == name) return row.real_time_ms;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ecs::bench::apply_log_level_argv(argc, argv);
  const std::string json_path = ecs::bench::extract_json_out(argc, argv);
  const double min_speedup = extract_min_speedup(argc, argv);
  ecs::bench::CompactJsonReporter reporter("worlds_per_s", "per_world_ns");
  const int status =
      ecs::bench::run_micro_benchmarks(argc, argv, json_path, reporter);
  if (status != 0) return status;

  // Report the speedup at every matched replication count; gate on the
  // largest when --min-speedup was given.
  double gated_speedup = 0.0;
  long gated_reps = 0;
  for (const long reps : {100L, 1000L}) {
    const std::string suffix = "/" + std::to_string(reps) + "/real_time";
    const double tasks = time_of(reporter.rows(), "sweep_tasks" + suffix);
    const double batch = time_of(reporter.rows(), "sweep_batch" + suffix);
    if (tasks <= 0.0 || batch <= 0.0) continue;
    const double speedup = tasks / batch;
    std::cout << "batch-vs-tasks speedup at " << reps
              << " replications: " << speedup << "x\n";
    gated_speedup = speedup;
    gated_reps = reps;
  }
  if (min_speedup > 0.0) {
    if (gated_reps == 0) {
      std::cerr << "error: --min-speedup given but no matched "
                   "sweep_tasks/sweep_batch pair was measured\n";
      return 4;
    }
    if (gated_speedup < min_speedup) {
      std::cerr << "error: batch speedup " << gated_speedup << "x at "
                << gated_reps << " replications is below the required "
                << min_speedup << "x\n";
      return 4;
    }
    std::cout << "speedup gate passed: " << gated_speedup << "x >= "
              << min_speedup << "x at " << gated_reps << " replications\n";
  }
  return 0;
}
