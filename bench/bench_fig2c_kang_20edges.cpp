// bench_fig2c_kang_20edges.cpp - Reproduces Figure 2(c) of the paper.
//
// Kang instances (GPU/CPU devices over Wi-Fi/LTE/3G, parameters from Kang
// et al. [24]) on 20 edge processors and 10 cloud processors; the number
// of jobs sweeps. Expected shape: SSF-EDF best, SRPT very close, Greedy
// behind, Edge-Only cannot keep up as n grows.
//
// Extra flags: --n=250,500,... (sweep points), --edges=20, --clouds=10.
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/kang_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 3);
  const std::vector<std::int64_t> ns =
      args.get_int_list("n", {500, 1000, 2000, 4000});
  const int edges = static_cast<int>(args.get_int("edges", 20));
  const int clouds = static_cast<int>(args.get_int("clouds", 10));
  const std::vector<std::string> policies = paper_policy_names();

  print_bench_header(
      std::cout, "Figure 2(c): Kang instances, max-stretch vs n",
      std::to_string(edges) + " edge processors (GPU/CPU x WiFi/LTE/3G), " +
          std::to_string(clouds) + " cloud processors, load 0.05",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (std::int64_t n : ns) {
    KangInstanceConfig cfg;
    cfg.n = static_cast<int>(n);
    cfg.edge_count = edges;
    cfg.cloud_count = clouds;
    cfg.load = 0.05;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_kang_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = std::to_string(n);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(std::to_string(n), factory, policies,
                                     sweep));
    std::cout << "  [done] n = " << n << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "n");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
