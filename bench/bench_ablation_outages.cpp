// bench_ablation_outages.cpp - Ablation A4: cloud availability windows.
//
// Implements the paper's future-work scenario (section VII): cloud
// processors are dynamically requested by other applications during given
// time intervals and become unavailable. The ablation sweeps the expected
// unavailable fraction and reports the max-stretch of the cloud-using
// heuristics plus Edge-Only (which is immune to outages and becomes the
// better option once the cloud is unreliable enough — the crossover this
// table exposes).
//
// Flags: --reps, --seed, --n, --fraction=0,0.2,...
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/load.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 1000));
  const std::vector<double> fractions =
      args.get_double_list("fraction", {0.0, 0.1, 0.25, 0.5, 0.75});
  const std::vector<std::string> policies = {"edge-only", "greedy", "srpt",
                                             "ssf-edf"};

  print_bench_header(
      std::cout, "Ablation A4: cloud availability windows",
      "random instances, n = " + std::to_string(n) +
          ", CCR = 0.5, load 0.25; clouds unavailable for the given "
          "fraction of time",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (double fraction : fractions) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 0.5;
    cfg.load = 0.25;
    const InstanceFactory factory = [cfg, fraction](std::uint64_t seed) {
      Rng rng(seed);
      Instance instance = make_random_instance(cfg, rng);
      if (fraction > 0.0) {
        double total_work = 0.0;
        for (const Job& job : instance.jobs) total_work += job.work;
        OutageConfig outage_cfg;
        outage_cfg.fraction = fraction;
        outage_cfg.mean_duration = 50.0;
        // Cover the full busy period with margin.
        outage_cfg.horizon =
            2.0 * release_horizon(total_work,
                                  instance.platform.total_speed(), cfg.load);
        instance.cloud_outages = make_cloud_outages(
            instance.platform.cloud_count(), outage_cfg, rng);
      }
      return instance;
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(fraction, 3);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(fraction, 3), factory,
                                     policies, sweep));
    std::cout << "  [done] fraction = " << format_double(fraction, 3)
              << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "outage-frac");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
