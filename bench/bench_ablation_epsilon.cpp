// bench_ablation_epsilon.cpp - Ablation A1: SSF-EDF binary-search precision.
//
// SSF-EDF's per-release binary search runs log(1/epsilon) feasibility
// probes (paper section V-D gives the complexity as
// O(n^2 P^c log(1/eps))). This ablation sweeps epsilon to expose the
// trade-off the paper's complexity analysis implies: coarser precision
// saves scheduling time, and beyond some point the target stretch gets
// sloppy enough to hurt the achieved max-stretch.
//
// Flags: --reps, --seed, --n, --eps=0.2,0.05,...
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sched/ssf_edf.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

// run_sweep_point resolves policies by factory name, which has no epsilon
// parameter, so this bench drives the replication loop directly.
struct Row {
  double eps;
  ecs::Accumulator stretch;
  ecs::Accumulator wall;
};

}  // namespace

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  bench::apply_log_level(args);
  const int reps = static_cast<int>(args.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int n = static_cast<int>(args.get_int("n", 1000));
  const std::vector<double> epsilons =
      args.get_double_list("eps", {0.5, 0.1, 0.01, 0.001, 0.0001});

  print_bench_header(std::cout,
                     "Ablation A1: SSF-EDF binary-search precision",
                     "random instances, n = " + std::to_string(n) +
                         ", CCR = 1, load 0.25",
                     reps, seed);

  std::vector<Row> rows;
  for (double eps : epsilons) {
    Row row;
    row.eps = eps;
    for (int rep = 0; rep < reps; ++rep) {
      RandomInstanceConfig cfg;
      cfg.n = n;
      cfg.ccr = 1.0;
      cfg.load = 0.25;
      Rng rng(derive_seed(seed, static_cast<std::uint64_t>(rep)));
      const Instance instance = make_random_instance(cfg, rng);

      SsfEdfConfig policy_cfg;
      policy_cfg.epsilon = eps;
      SsfEdfPolicy policy(policy_cfg);
      RunOptions options;
      options.validate = rep == 0;
      const RunOutcome outcome = run_policy(instance, policy, options);
      row.stretch.add(outcome.metrics.max_stretch);
      row.wall.add(outcome.wall_seconds);
    }
    rows.push_back(row);
    std::cout << "  [done] eps = " << format_double(eps, 6) << "\n";
  }

  std::cout << "\n";
  Table table({"epsilon", "max-stretch", "sched-time [s]"});
  for (const Row& row : rows) {
    table.add_row({format_double(row.eps, 6),
                   format_double(row.stretch.mean(), 4),
                   format_double(row.wall.mean(), 4)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
