// bench_energy_tradeoff.cpp - Energy/stretch trade-off across heuristics.
//
// The paper's introduction names energy consumption as the other
// first-class criterion of edge-cloud platforms and defers multi-objective
// optimization to future work. This bench provides the accounting ground
// truth for that discussion: for each heuristic and CCR it reports the
// achieved max-stretch next to the active energy per job (compute + radio,
// split by origin) and the energy wasted in re-executions. The expected
// picture: Edge-Only minimizes energy (cheap local CPUs, no radios) at a
// catastrophic stretch cost when CCR is low; the cloud-using heuristics
// buy their stretch with cloud wattage and radio time.
//
// Flags: --reps, --seed, --n, --ccr=0.1,1,...
#include <iostream>

#include "bench_common.hpp"
#include "core/energy.hpp"
#include "core/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  bench::apply_log_level(args);
  const int reps = static_cast<int>(args.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int n = static_cast<int>(args.get_int("n", 600));
  const std::vector<double> ccrs = args.get_double_list("ccr", {0.1, 1.0, 5.0});
  const std::vector<std::string> policies = paper_policy_names();

  print_bench_header(
      std::cout, "Energy/stretch trade-off",
      "random instances, n = " + std::to_string(n) +
          ", load 0.25; active energy = compute + radio Joules per job "
          "(idle excluded); waste = energy in abandoned runs",
      reps, seed);

  for (double ccr : ccrs) {
    Table table({"policy", "max-stretch", "active J/job", "edge%", "cloud%",
                 "radio%", "waste%"});
    for (const std::string& name : policies) {
      Accumulator stretch;
      Accumulator active;
      Accumulator edge_part;
      Accumulator cloud_part;
      Accumulator radio_part;
      Accumulator waste_part;
      for (int rep = 0; rep < reps; ++rep) {
        RandomInstanceConfig cfg;
        cfg.n = n;
        cfg.ccr = ccr;
        cfg.load = 0.25;
        Rng rng(derive_seed(derive_seed(seed, hash_tag(name)),
                            static_cast<std::uint64_t>(rep)));
        const Instance instance = make_random_instance(cfg, rng);
        const auto policy = make_policy(name);
        const SimResult sim = simulate(instance, *policy);
        const ScheduleMetrics m = compute_metrics(instance, sim.schedule);
        const EnergyBreakdown e = compute_energy(instance, sim.schedule);
        const double act =
            e.edge_compute + e.cloud_compute + e.communication;
        stretch.add(m.max_stretch);
        active.add(act / n);
        edge_part.add(100.0 * e.edge_compute / act);
        cloud_part.add(100.0 * e.cloud_compute / act);
        radio_part.add(100.0 * e.communication / act);
        waste_part.add(100.0 * e.wasted / act);
      }
      table.add_row({name, format_double(stretch.mean(), 3),
                     format_double(active.mean(), 3),
                     format_double(edge_part.mean(), 1),
                     format_double(cloud_part.mean(), 1),
                     format_double(radio_part.mean(), 1),
                     format_double(waste_part.mean(), 2)});
    }
    std::cout << "CCR = " << format_double(ccr, 3) << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
