// bench_avg_stretch.cpp - Average (mean) stretch across heuristics.
//
// The paper optimizes the max-stretch but reviews the average-stretch
// literature (footnote 2, related work): SRPT is O(1)-competitive for the
// *average* stretch [Muthukrishnan et al.], while no such guarantee exists
// for its max-stretch. This bench shows that trade-off empirically: on the
// mean-stretch metric SRPT and SSF-EDF swap closeness, and FCFS's
// length-blindness is far less visible than on the max — the worst-hit
// jobs vanish into the average, which is exactly why the paper argues max
// is the fairness metric.
//
// Flags: --reps, --seed, --n, --load=...
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 5);
  const int n = static_cast<int>(args.get_int("n", 1000));
  const std::vector<double> loads =
      args.get_double_list("load", {0.05, 0.25, 0.5});
  const std::vector<std::string> policies = {"greedy", "srpt", "ssf-edf",
                                             "fcfs"};

  print_bench_header(
      std::cout, "Average stretch across heuristics",
      "random instances, n = " + std::to_string(n) +
          ", CCR = 1; mean stretch (top) vs max stretch (bottom) on the "
          "same runs",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (double load : loads) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = 1.0;
    cfg.load = load;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(load, 3);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(load, 3), factory,
                                     policies, sweep));
    std::cout << "  [done] load = " << format_double(load, 3) << "\n";
  }
  std::cout << "\n";

  ReportOptions mean_options;
  mean_options.metric = ReportMetric::kMeanStretch;
  mean_options.x_label = "load";
  std::cout << "mean stretch\n";
  make_report(points, policies, mean_options).print(std::cout);

  ReportOptions max_options;
  max_options.metric = ReportMetric::kMaxStretch;
  max_options.x_label = "load";
  std::cout << "\nmax stretch (same runs)\n";
  make_report(points, policies, max_options).print(std::cout);
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
