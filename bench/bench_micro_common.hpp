// bench_micro_common.hpp - Shared plumbing for the google-benchmark micro
// binaries (bench_engine_micro, bench_policy_micro).
//
// Kept separate from bench_common.hpp so the figure-reproduction binaries
// (which do not link google benchmark) never see <benchmark/benchmark.h>.
//
// Provides:
//  * CompactJsonReporter — console reporter that also collects a compact
//    machine-readable summary, one row per benchmark:
//      [{"name": ..., "real_time_ms": ..., "<rate>": ..., "<per>": ...}]
//    The rate counter name and the derived per-item field are configurable
//    ("events_per_s"/"per_event_ns" for the engine bench,
//    "decisions_per_s"/"per_decision_ns" for the policy bench); both are
//    null for benchmarks that do not publish the counter.
//  * extract_json_out — strips --json-out=PATH from argv before
//    benchmark::Initialize rejects it.
//  * run_micro_benchmarks — the shared main() body: initialize, run with
//    the reporter, write the JSON file when requested.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace ecs::bench {

/// Console reporter that additionally collects every finished run and can
/// write the compact JSON summary. Subclassing the console reporter keeps
/// the normal terminal output while avoiding the library's file-reporter
/// path (which insists on --benchmark_out).
class CompactJsonReporter final : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_time_ms = 0.0;
    double rate = 0.0;
    double per_item_ns = 0.0;
    bool has_rate = false;
  };

  /// `rate_counter` is the per-second throughput counter benchmarks
  /// publish (e.g. "events_per_s"); `per_item_field` is the derived
  /// nanoseconds-per-item JSON field name (e.g. "per_event_ns").
  CompactJsonReporter(std::string rate_counter, std::string per_item_field)
      : rate_counter_(std::move(rate_counter)),
        per_item_field_(std::move(per_item_field)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      // Per-iteration wall time in milliseconds, independent of the
      // benchmark's display unit.
      row.real_time_ms =
          run.iterations > 0
              ? run.real_accumulated_time * 1e3 /
                    static_cast<double>(run.iterations)
              : 0.0;
      const auto it = run.counters.find(rate_counter_);
      if (it != run.counters.end() && it->second.value > 0.0) {
        row.rate = it->second.value;
        row.per_item_ns = 1e9 / it->second.value;
        row.has_rate = true;
      }
      rows_.push_back(std::move(row));
    }
  }

  void write(std::ostream& os) const {
    os << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << "  {\"name\": \"" << r.name << "\""
         << ", \"real_time_ms\": " << r.real_time_ms;
      if (r.has_rate) {
        os << ", \"" << rate_counter_ << "\": " << r.rate << ", \""
           << per_item_field_ << "\": " << r.per_item_ns;
      } else {
        os << ", \"" << rate_counter_ << "\": null, \"" << per_item_field_
           << "\": null";
      }
      os << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "]\n";
  }

  /// Every finished run, for binaries that post-process their own results
  /// (bench_batch derives the batch-vs-tasks speedup from matched rows).
  [[nodiscard]] const std::vector<Row>& rows() const noexcept {
    return rows_;
  }

 private:
  std::string rate_counter_;
  std::string per_item_field_;
  std::vector<Row> rows_;
};

/// Strips --json-out=PATH from argv (before benchmark::Initialize rejects
/// it) and returns the path, empty when absent.
inline std::string extract_json_out(int& argc, char** argv) {
  const std::string prefix = "--json-out=";
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      path = arg.substr(prefix.size());
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Shared main() body of the micro-benchmark binaries. `json_path` comes
/// from extract_json_out; the reporter's rows are written there after the
/// run when non-empty.
inline int run_micro_benchmarks(int argc, char** argv,
                                const std::string& json_path,
                                CompactJsonReporter& reporter) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write benchmark JSON to " << json_path << "\n";
      return 1;
    }
    reporter.write(out);
    std::cout << "benchmark JSON -> " << json_path << "\n";
  }
  return 0;
}

}  // namespace ecs::bench
