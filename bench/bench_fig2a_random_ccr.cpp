// bench_fig2a_random_ccr.cpp - Reproduces Figure 2(a) of the paper.
//
// Random instances, n = 4000 jobs, 20 cloud processors, 10 slow (0.1) and
// 10 fast (0.5) edge processors, load 0.05; the Communication-to-
// Computation Ratio sweeps from 0.1 (compute-intensive) to 10
// (communication-intensive). One row per CCR, one column per heuristic,
// cells are the mean max-stretch.
//
// Expected shape (paper section VI-B): Edge-Only is far worse for small
// CCR (the cloud is nearly free to use); the gap narrows as communication
// gets expensive. SSF-EDF is best everywhere with SRPT close behind;
// Greedy trails; the cloud-using heuristics exceed a stretch of two only
// at the largest CCRs.
//
// Extra flags: --n=N (jobs), --ccr=0.1,0.5,... (sweep points),
//              --paper-policies (drop FCFS, keep the paper's four).
#include <iostream>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const bench::CommonOptions options = bench::parse_common(args, 3);
  const int n = static_cast<int>(args.get_int("n", 4000));
  const std::vector<double> ccrs =
      args.get_double_list("ccr", {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
  const std::vector<std::string> policies = args.get_bool("paper-policies",
                                                          false)
                                                ? paper_policy_names()
                                                : policy_names();

  print_bench_header(
      std::cout, "Figure 2(a): random instances, max-stretch vs CCR",
      "n = " + std::to_string(n) +
          ", 20 cloud / 10+10 edge processors, load 0.05",
      options.sweep.replications, options.sweep.base_seed);

  std::vector<SweepPointResult> points;
  InstanceFactory trace_factory;
  std::string trace_label;
  for (double ccr : ccrs) {
    RandomInstanceConfig cfg;
    cfg.n = n;
    cfg.ccr = ccr;
    cfg.load = 0.05;
    const InstanceFactory factory = [cfg](std::uint64_t seed) {
      Rng rng(seed);
      return make_random_instance(cfg, rng);
    };
    if (!trace_factory) {
      trace_factory = factory;
      trace_label = format_double(ccr, 3);
    }
    SweepOptions sweep = options.sweep;
    sweep.point_index = static_cast<int>(points.size());
    points.push_back(run_sweep_point(format_double(ccr, 3), factory,
                                     policies, sweep));
    std::cout << "  [done] CCR = " << format_double(ccr, 3) << "\n";
  }
  std::cout << "\n";
  bench::report_sweep(points, policies, options, "CCR");
  return bench::write_trace_artifacts(options, policies, trace_label,
                                      trace_factory);
}

}  // namespace

int main(int argc, char** argv) {
  return ecs::bench::guarded_main([&] { return run(argc, argv); });
}
