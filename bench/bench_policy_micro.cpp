// bench_policy_micro.cpp - Microbenchmarks of online-policy arbitration
// (not a paper figure; tracks the decide() hot path).
//
// Two series, each run for both the optimized policies (src/sched/) and
// the frozen pre-rewrite references (tests/reference_policies.hpp):
//
//  * policy_decide/<policy>[_ref]/<live> — ns per decide() call, driven
//    directly on a hand-built view whose live set has exactly <live> jobs.
//    Isolates pure arbitration cost as a function of live-set size: the
//    workspace reuse (zero steady-state allocation), the O(live) span
//    iteration and — for SSF-EDF — the warm-started stretch search.
//
//  * policy_sim_sparse/<policy>[_ref]/<n> — ns per decision over a full
//    simulate() of an n-job sparse-arrival instance whose live set stays
//    bounded (a few jobs) regardless of n. This is the headline O(live)
//    vs O(n) comparison: the reference scans all n job states on every
//    decision, the optimized policy touches only the live span.
//
// With --json-out=PATH the binary writes one row per benchmark with the
// per-iteration time and per-decision nanoseconds (CI keeps
// BENCH_policy.json as an artifact and gates on
// bench/BENCH_policy_baseline.json via tools/check_bench_regression.py).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_micro_common.hpp"

#include "reference_policies.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

std::unique_ptr<ecs::Policy> make_any_policy(const std::string& name,
                                             bool use_ref) {
  return use_ref ? ecs::ref::make_reference_policy(name)
                 : ecs::make_policy(name);
}

/// One decision round, directly driven: every job of a random instance is
/// live and unassigned, and the event batch carries one release so the
/// deadline-recompute (stretch search) paths run on every call.
struct DirectScenario {
  explicit DirectScenario(int live_count) {
    ecs::RandomInstanceConfig cfg;
    cfg.n = live_count;
    cfg.cloud_count = 3;
    cfg.slow_edges = 2;
    cfg.fast_edges = 2;
    cfg.load = 0.3;
    ecs::Rng rng(42);
    instance = make_random_instance(cfg, rng);

    now = 0.0;
    for (const ecs::Job& job : instance.jobs) {
      live.push_back(job.id);
      now = std::max(now, job.release);
    }
    for (const ecs::Job& job : instance.jobs) {
      ecs::JobState s;
      s.job = job;
      s.best_time = instance.platform.best_time(job);
      s.rem_work = job.work;
      s.released = true;
      states.push_back(s);
    }
    events.push_back(
        ecs::Event{ecs::EventKind::kRelease, instance.jobs.back().id, now, -1});
  }

  ecs::Instance instance;
  std::vector<ecs::JobState> states;
  std::vector<ecs::JobId> live;
  std::vector<ecs::Event> events;
  ecs::Time now = 0.0;
};

void policy_decide(benchmark::State& state, const char* policy_name,
                   bool use_ref) {
  const DirectScenario scenario(static_cast<int>(state.range(0)));
  const ecs::SimView view(scenario.instance, scenario.states, scenario.now,
                          &scenario.live);
  const auto policy = make_any_policy(policy_name, use_ref);
  policy->reset(scenario.instance);

  std::vector<ecs::Directive> out;
  for (auto _ : state) {
    out.clear();
    policy->decide(view, scenario.events, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["decisions_per_s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}

/// Deterministic sparse-activity instance (same shape as the engine
/// micro-bench): arrivals spaced so the live set stays bounded while n
/// grows. Any per-decision cost that scales with n shows up here.
ecs::Instance sparse_instance(int n) {
  const int edges = 20;
  ecs::Instance instance;
  instance.platform = ecs::Platform(std::vector<double>(edges, 0.5), 4);
  instance.jobs.reserve(n);
  for (int i = 0; i < n; ++i) {
    ecs::Job job;
    job.id = i;
    job.origin = i % edges;
    job.work = 1.0 + 0.25 * (i % 4);
    job.release = 0.3 * i;
    job.up = 0.2;
    job.down = 0.1;
    instance.jobs.push_back(job);
  }
  return instance;
}

void policy_sim_sparse(benchmark::State& state, const char* policy_name,
                       bool use_ref) {
  const int n = static_cast<int>(state.range(0));
  const ecs::Instance instance = sparse_instance(n);
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    const auto policy = make_any_policy(policy_name, use_ref);
    ecs::EngineConfig config;
    config.record_schedule = false;
    const ecs::SimResult result = ecs::simulate(instance, *policy, config);
    decisions = result.stats.decisions;
    benchmark::DoNotOptimize(result.completions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decisions) *
                          state.iterations());
  state.counters["decisions_per_s"] = benchmark::Counter(
      static_cast<double>(decisions),
      benchmark::Counter::kIsIterationInvariantRate);
}

#define ECS_POLICY_DECIDE_BENCH(tag, name)                           \
  BENCHMARK_CAPTURE(policy_decide, tag, name, false)                 \
      ->Arg(16)->Arg(64)->Arg(256);                                  \
  BENCHMARK_CAPTURE(policy_decide, tag##_ref, name, true)            \
      ->Arg(16)->Arg(64)->Arg(256)

ECS_POLICY_DECIDE_BENCH(fcfs, "fcfs");
ECS_POLICY_DECIDE_BENCH(greedy, "greedy");
ECS_POLICY_DECIDE_BENCH(srpt, "srpt");
ECS_POLICY_DECIDE_BENCH(ssf_edf, "ssf-edf");
ECS_POLICY_DECIDE_BENCH(edge_only, "edge-only");
ECS_POLICY_DECIDE_BENCH(failover_srpt, "failover-srpt");

#undef ECS_POLICY_DECIDE_BENCH

// The headline O(live) vs O(n) series: SSF-EDF over a growing instance
// with a bounded live set. The reference re-scans all n states (and cold
// restarts its stretch search) on every decision, so its per-decision
// cost grows linearly in n; the optimized policy's stays flat.
BENCHMARK_CAPTURE(policy_sim_sparse, ssf_edf, "ssf-edf", false)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(policy_sim_sparse, ssf_edf_ref, "ssf-edf", true)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(policy_sim_sparse, srpt, "srpt", false)
    ->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(policy_sim_sparse, fcfs, "fcfs", false)
    ->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ecs::bench::apply_log_level_argv(argc, argv);
  const std::string json_path = ecs::bench::extract_json_out(argc, argv);
  ecs::bench::CompactJsonReporter reporter("decisions_per_s",
                                           "per_decision_ns");
  return ecs::bench::run_micro_benchmarks(argc, argv, json_path, reporter);
}
