// bench_exec_times.cpp - Reproduces the paper's "Execution times"
// measurements (section VI-B) with google-benchmark.
//
// The paper reports the wall time each heuristic needs to compute its
// schedule: SRPT is much faster than SSF-EDF and Edge-Only; Greedy matches
// SRPT at low load but degrades sharply as the load grows; times increase
// with n and the load but stay flat in the CCR.
//
// Each benchmark simulates one full instance (scheduling + engine) for the
// given (policy, n, load) combination on random instances with CCR = 1.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include <cstdio>
#include <cstdlib>

#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace {

ecs::Instance make_instance(int n, double load, std::uint64_t seed) {
  ecs::RandomInstanceConfig cfg;
  cfg.n = n;
  cfg.ccr = 1.0;
  cfg.load = load;
  ecs::Rng rng(seed);
  return make_random_instance(cfg, rng);
}

void run_policy_bench(benchmark::State& state, const std::string& policy) {
  const int n = static_cast<int>(state.range(0));
  const double load = static_cast<double>(state.range(1)) / 100.0;
  const ecs::Instance instance = make_instance(n, load, 42);
  double max_stretch = 0.0;
  for (auto _ : state) {
    ecs::RunOptions options;
    options.validate = false;
    const ecs::RunOutcome outcome =
        ecs::run_policy(instance, policy, options);
    max_stretch = outcome.metrics.max_stretch;
    if (std::getenv("ECS_DEBUG")) std::fprintf(stderr, "DBG policy=%s n=%d load=%f max=%f\n", policy.c_str(), n, load, max_stretch);
    benchmark::DoNotOptimize(max_stretch);
  }
  state.counters["max_stretch"] = max_stretch;
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
}

void args_grid(benchmark::internal::Benchmark* bench) {
  // (n, load * 100). Loads 0.05 and 0.5 bracket the paper's range without
  // making the default suite run for minutes.
  for (const int n : {500, 1000, 2000}) {
    bench->Args({n, 5});
  }
  bench->Args({1000, 50});
}

}  // namespace

BENCHMARK_CAPTURE(run_policy_bench, edge_only, std::string("edge-only"))
    ->Apply(args_grid)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_policy_bench, greedy, std::string("greedy"))
    ->Apply(args_grid)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_policy_bench, srpt, std::string("srpt"))
    ->Apply(args_grid)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_policy_bench, ssf_edf, std::string("ssf-edf"))
    ->Apply(args_grid)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ecs::bench::apply_log_level_argv(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
