#!/usr/bin/env bash
# Final reproduction run: full test suite + every bench binary, with
# outputs captured at the repository root (test_output.txt,
# bench_output.txt). Run from the repository root after building.
set -u
cd "$(dirname "$0")/.."
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  echo "===== $b ====="
  "$b"
done 2>&1 | tee bench_output.txt
