#!/usr/bin/env python3
"""Plot the CSV output of the bench binaries.

Each figure bench writes, with --csv=FILE, two stacked CSV tables (the
max-stretch table and the scheduling-time table) separated by a blank
line. This script renders the first table as the paper-style line plot:
x axis = sweep parameter, one line per heuristic, log-scaled axes where
appropriate.

Usage:
    bench_fig2a_random_ccr --reps=30 --csv=fig2a.csv
    tools/plot_results.py fig2a.csv --logx --out=fig2a.png
"""
import argparse
import csv
import sys


def read_first_table(path):
    rows = []
    with open(path, newline="") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                break  # blank line separates the stacked tables
            rows.append(next(csv.reader([line])))
    if len(rows) < 2:
        raise SystemExit(f"{path}: no table found")
    return rows[0], rows[1:]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_file")
    parser.add_argument("--out", default=None, help="output image path")
    parser.add_argument("--logx", action="store_true")
    parser.add_argument("--logy", action="store_true")
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    header, rows = read_first_table(args.csv_file)
    x_label, policies = header[0], header[1:]
    xs = [float(r[0]) if r[0].replace(".", "", 1).isdigit() else r[0]
          for r in rows]
    series = {p: [float(r[1 + i].split(" ")[0]) for r in rows]
              for i, p in enumerate(policies)}

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; printing the table instead\n")
        print(x_label, *policies, sep="\t")
        for r in rows:
            print(*r, sep="\t")
        return 0

    fig, ax = plt.subplots(figsize=(6, 4))
    markers = "os^Dv*"
    for i, (policy, ys) in enumerate(series.items()):
        ax.plot(xs, ys, marker=markers[i % len(markers)], label=policy)
    ax.set_xlabel(x_label)
    ax.set_ylabel("max stretch")
    if args.logx:
        ax.set_xscale("log")
    if args.logy:
        ax.set_yscale("log")
    if args.title:
        ax.set_title(args.title)
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = args.out or args.csv_file.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
