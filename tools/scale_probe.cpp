// scale_probe.cpp - Quick wall-time probe at paper scale (not installed).
//
// Runs every registered policy once on one random instance and prints a
// line per policy. Flags:
//
//   --n=N           jobs (default 4000)
//   --ccr=X         communication-to-computation ratio (default 1)
//   --load=X        load factor (default 0.05)
//   --seed=S        instance seed (default 1)
//   --policy=NAME   probe a single policy instead of all
//   --log-level=L   stderr log threshold: debug, info, warn or error
//   --trace-out=P   write a Perfetto trace of the LAST probed policy's run
//   --metrics-out=P write the metrics-registry JSON (all probed runs)
//
// Streaming memory probe (the O(live) claim, measured):
//
//   --stream              run ascending streaming stages instead
//   --stream-n=L          comma list of job counts (default
//                         10000,100000,1000000)
//   --rate=X              arrival rate (default 4: ~1.5x the default
//                         platform's service capacity)
//   --family=F            poisson | diurnal | bursty | pareto
//   --max-live=K          admission cap (default 64; 0 = admission off)
//
// Each stage prints jobs, events, peak_live and the process RSS high-water
// mark (getrusage ru_maxrss). Stages run in ascending n within ONE
// process, so a flat RSS column across a 100x growth in n is direct
// evidence that streaming memory tracks the live set, not the stream
// length.
//
// The legacy positional form `scale_probe [n [ccr [load]]]` keeps working.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto_sink.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/random_instances.hpp"

namespace {

/// Process peak RSS in MiB. ru_maxrss units are platform-specific — KiB on
/// Linux, BYTES on macOS (see getrusage(2) on each) — so normalize per
/// platform instead of assuming KiB everywhere; the printed unit is MiB on
/// both. A high-water mark: it never decreases, which is exactly what the
/// ascending-n probe needs.
double peak_rss_mib() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

int run_stream_probe(const ecs::Args& args) {
  using namespace ecs;
  const std::vector<std::int64_t> stages =
      args.get_int_list("stream-n", {10'000, 100'000, 1'000'000});
  const double rate = args.get_double("rate", 4.0);
  const std::string family = args.get_or("family", "poisson");
  const auto max_live =
      static_cast<std::uint64_t>(args.get_int("max-live", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string policy_name = args.get_or("policy", "srpt");

  RandomInstanceConfig pcfg;  // default paper platform; jobs unused
  Instance base;
  base.platform = make_random_platform(pcfg);

  std::printf("streaming probe: %s arrivals at rate %g, policy %s, "
              "max-live %llu (0 = admission off)\n",
              family.c_str(), rate, policy_name.c_str(),
              static_cast<unsigned long long>(max_live));
  std::printf("%10s %12s %10s %10s %10s %10s %10s\n", "jobs", "events",
              "peak_live", "tracked", "refused", "wall[s]", "rss[MiB]");
  for (const std::int64_t n : stages) {
    ArrivalConfig acfg;
    acfg.family = parse_arrival_family(family);
    acfg.n = n;
    acfg.rate = rate;
    acfg.seed = seed;
    acfg.shape.edge_count = base.platform.edge_count();

    EngineConfig config;
    config.record_schedule = false;
    config.record_completions = false;
    config.record_admission = false;  // grows with refusals, not live
    config.admission.max_live = max_live;

    const auto arrivals = make_arrival_stream(acfg);
    const auto policy = make_policy(policy_name);
    const auto start = std::chrono::steady_clock::now();
    const SimResult result =
        simulate_stream(base, *arrivals, *policy, config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("%10lld %12llu %10llu %10llu %10llu %10.3f %10.1f\n",
                static_cast<long long>(n),
                static_cast<unsigned long long>(result.stats.events),
                static_cast<unsigned long long>(result.stats.peak_live),
                static_cast<unsigned long long>(result.stats.peak_tracked),
                static_cast<unsigned long long>(result.stats.rejections +
                                                result.stats.sheds),
                wall, peak_rss_mib());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecs;
  const Args args = Args::parse(argc, argv);
  const std::vector<std::string>& pos = args.positional();

  const std::string level_name = args.get_or("log-level", "");
  if (!level_name.empty()) {
    const std::optional<LogLevel> level = parse_log_level(level_name);
    if (!level) {
      std::cerr << "unknown --log-level '" << level_name
                << "' (expected debug, info, warn or error)\n";
      return 2;
    }
    set_log_level(*level);
  }

  if (args.get_bool("stream", false)) {
    try {
      return run_stream_probe(args);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  RandomInstanceConfig cfg;
  cfg.n = static_cast<int>(
      args.get_int("n", pos.size() > 0 ? std::atoi(pos[0].c_str()) : 4000));
  cfg.ccr =
      args.get_double("ccr", pos.size() > 1 ? std::atof(pos[1].c_str()) : 1.0);
  cfg.load = args.get_double(
      "load", pos.size() > 2 ? std::atof(pos[2].c_str()) : 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  Rng rng(seed);
  const Instance instance = make_random_instance(cfg, rng);

  std::vector<std::string> names = policy_names();
  const std::string only = args.get_or("policy", "");
  if (!only.empty()) names = {only};

  const std::string trace_path = args.get_or("trace-out", "");
  const std::string metrics_path = args.get_or("metrics-out", "");
  obs::MetricsRegistry registry;

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    RunOptions options;
    options.validate = false;
    options.engine.metrics = metrics_path.empty() ? nullptr : &registry;
    // One trace file, so only the last policy (the only sensible default
    // when probing a single --policy) gets the sink.
    std::ofstream trace_file;
    std::optional<obs::PerfettoTraceSink> sink;
    if (!trace_path.empty() && i + 1 == names.size()) {
      trace_file.open(trace_path);
      if (trace_file) {
        sink.emplace(trace_file);
        options.engine.trace = &*sink;
      } else {
        std::cerr << "cannot write trace to " << trace_path << "\n";
      }
    }
    const RunOutcome o = run_policy(instance, name, options);
    std::printf(
        "%-10s max=%8.3f mean=%6.3f wall=%7.3fs events=%llu reexec=%llu\n",
        name.c_str(), o.metrics.max_stretch, o.metrics.mean_stretch,
        o.wall_seconds, static_cast<unsigned long long>(o.stats.events),
        static_cast<unsigned long long>(o.stats.reassignments));
    if (sink) {
      std::printf("  Perfetto trace -> %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }

  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      std::cerr << "cannot write metrics to " << metrics_path << "\n";
      return 1;
    }
    registry.write_json(metrics_file);
    std::printf("metrics JSON -> %s\n", metrics_path.c_str());
  }
  return 0;
}
