// scale_probe.cpp - Quick wall-time probe at paper scale (not installed).
#include <cstdio>

#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "workloads/random_instances.hpp"

int main(int argc, char** argv) {
  ecs::RandomInstanceConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 4000;
  cfg.ccr = argc > 2 ? std::atof(argv[2]) : 1.0;
  cfg.load = argc > 3 ? std::atof(argv[3]) : 0.05;
  ecs::Rng rng(1);
  const ecs::Instance instance = ecs::make_random_instance(cfg, rng);
  for (const std::string& name : ecs::policy_names()) {
    ecs::RunOptions options;
    options.validate = false;
    const ecs::RunOutcome o = ecs::run_policy(instance, name, options);
    std::printf("%-10s max=%8.3f mean=%6.3f wall=%7.3fs events=%llu reexec=%llu\n",
                name.c_str(), o.metrics.max_stretch, o.metrics.mean_stretch,
                o.wall_seconds,
                static_cast<unsigned long long>(o.stats.events),
                static_cast<unsigned long long>(o.stats.reassignments));
  }
  return 0;
}
