#!/usr/bin/env python3
"""Gate micro-benchmark results against a checked-in baseline.

Reads compact benchmark JSON files (the format written by the --json-out
flag of bench_engine_micro / bench_policy_micro: a list of rows with
"name" and a per-item nanoseconds field) and fails when any row's
per-item time regressed by more than --max-ratio over the baseline.
--baseline/--current may be repeated to gate several suites in one
invocation; the i-th baseline is compared against the i-th current file.

Rows are matched by name. Rows present in only one file are reported but
do not fail the check (benchmark sets evolve); at least one row must match
or the comparison is vacuous and fails. CI machines differ from the
machine that produced the baseline, so the default ratio is deliberately
coarse (3x): it catches complexity-class regressions (an O(live) path
degrading to O(n), a workspace reuse reverting to per-call allocation),
not percent-level noise.
"""

import argparse
import json
import sys


def per_item_ns(row):
    for key in ("per_decision_ns", "per_event_ns", "per_world_ns"):
        if row.get(key) is not None:
            return float(row[key])
    # Fall back to wall time for rows without a rate counter.
    if row.get("real_time_ms") is not None:
        return float(row["real_time_ms"]) * 1e6
    return None


def load(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        value = per_item_ns(row)
        if value is not None and value > 0.0:
            out[row["name"]] = value
    return out


def compare(baseline_path, current_path, max_ratio):
    """Returns the list of regressed row names, or None when no rows match
    (a vacuous comparison, which the caller treats as failure)."""
    baseline = load(baseline_path)
    current = load(current_path)

    matched = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    for name in only_baseline:
        print(f"note: baseline row not measured this run: {name}")
    for name in only_current:
        print(f"note: new row without baseline: {name}")
    if not matched:
        print("error: no benchmark rows in common between "
              f"{baseline_path} and {current_path}", file=sys.stderr)
        return None

    failures = []
    for name in matched:
        ratio = current[name] / baseline[name]
        status = "FAIL" if ratio > max_ratio else "ok"
        print(f"{status:4s} {name}: {current[name]:.1f} ns vs baseline "
              f"{baseline[name]:.1f} ns (x{ratio:.2f})")
        if ratio > max_ratio:
            failures.append(name)

    if not failures:
        print(f"all {len(matched)} matched benchmarks within x{max_ratio} "
              "of baseline")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, action="append",
                        help="checked-in baseline JSON (repeatable)")
    parser.add_argument("--current", required=True, action="append",
                        help="freshly measured JSON (repeatable, paired "
                             "with --baseline by position)")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when current/baseline exceeds this "
                             "(default: 3.0)")
    args = parser.parse_args()

    if len(args.baseline) != len(args.current):
        print("error: --baseline and --current must be given the same "
              "number of times", file=sys.stderr)
        return 2

    exit_code = 0
    for baseline_path, current_path in zip(args.baseline, args.current):
        if len(args.baseline) > 1:
            print(f"== {current_path} vs {baseline_path} ==")
        failures = compare(baseline_path, current_path, args.max_ratio)
        if failures is None:
            exit_code = 1
        elif failures:
            print(f"error: {len(failures)} benchmark(s) regressed more "
                  f"than x{args.max_ratio}: {', '.join(failures)}",
                  file=sys.stderr)
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
