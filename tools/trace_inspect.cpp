// trace_inspect.cpp - Summarizes a JSONL simulation trace on the terminal.
//
//   trace_inspect --trace=run.jsonl [--metrics=run-metrics.json] [--top=N]
//                 [--explain=JOB_ID|worst] [--check]
//
// Prints the run's meta line, record counts per trace point, the busiest
// processors by occupied span time, the worst-stretch completions, the most
// disrupted jobs (re-executions: reassignments + fault aborts + losses),
// and the maxima of the sampled time series. With --metrics= it also dumps
// the metrics-registry snapshot (phase timers, counters, histograms).
//
//   --explain=JOB_ID   replay the trace through the provenance log and
//                      print the full causal chain of scheduler decisions
//                      behind that job's final stretch ("worst" picks the
//                      worst-stretch completion). Requires a trace written
//                      with provenance enabled for reason codes; older
//                      traces still yield the directive-free chain.
//   --check            replay the trace through the online invariant
//                      watchdog (obs/watchdog.hpp) and print its report;
//                      exits 3 when a violation is found.
//
// The trace comes from any binary's --trace-jsonl= flag; the metrics JSON
// from --metrics-out= (see docs/OBSERVABILITY.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace ecs;

/// Human label for the resource a span occupied.
std::string span_resource(const obs::TraceRecord& rec) {
  std::ostringstream os;
  switch (rec.point) {
    case obs::TracePoint::kExec:
      if (rec.alloc == kAllocEdge) {
        os << "edge " << rec.origin << " cpu";
      } else {
        os << "cloud " << rec.alloc << " cpu";
      }
      break;
    case obs::TracePoint::kUplink:
      os << "edge " << rec.origin << " -> cloud " << rec.alloc << " uplink";
      break;
    case obs::TracePoint::kDownlink:
      os << "cloud " << rec.alloc << " -> edge " << rec.origin << " downlink";
      break;
    default:
      os << "?";
      break;
  }
  return os.str();
}

void print_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read metrics file " << path << "\n";
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::json::Value root = obs::json::parse(buffer.str());

  std::printf("\nmetrics (%s)\n", path.c_str());
  if (const obs::json::Value* timers = root.find("timers")) {
    for (const auto& [name, value] : timers->object) {
      std::printf("  %-28s %10.6f s over %llu call(s)\n", name.c_str(),
                  value.at("seconds").as_number(),
                  static_cast<unsigned long long>(
                      value.at("count").as_int()));
    }
  }
  if (const obs::json::Value* counters = root.find("counters")) {
    for (const auto& [name, value] : counters->object) {
      std::printf("  %-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value.as_int()));
    }
  }
  if (const obs::json::Value* gauges = root.find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      std::printf("  %-28s last %.3f, max %.3f\n", name.c_str(),
                  value.at("last").as_number(), value.at("max").as_number());
    }
  }
  if (const obs::json::Value* hists = root.find("histograms")) {
    for (const auto& [name, value] : hists->object) {
      const auto count = value.at("count").as_int();
      const double sum = value.at("sum").as_number();
      std::printf("  %-28s %llu sample(s), mean %.3f\n", name.c_str(),
                  static_cast<unsigned long long>(count),
                  count > 0 ? sum / static_cast<double>(count) : 0.0);
    }
  }
}

/// Replays a parsed trace through a sink in the live call order, so the
/// offline tools see exactly what an attached sink saw during the run.
void replay(const obs::JsonlTrace& trace, obs::TraceSink& sink) {
  sink.begin_trace(trace.meta);
  for (const obs::TraceRecord& rec : trace.records) sink.record(rec);
  if (trace.complete) sink.end_trace(trace.makespan);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  const std::string level_name = args.get_or("log-level", "");
  if (!level_name.empty()) {
    const std::optional<LogLevel> level = parse_log_level(level_name);
    if (!level) {
      std::cerr << "unknown --log-level '" << level_name
                << "' (expected debug, info, warn or error)\n";
      return 2;
    }
    set_log_level(*level);
  }

  std::string trace_path = args.get_or("trace", "");
  if (trace_path.empty() && !args.positional().empty()) {
    trace_path = args.positional().front();
  }
  const std::string metrics_path = args.get_or("metrics", "");
  const int top = static_cast<int>(args.get_int("top", 5));
  const std::string explain = args.get_or("explain", "");
  const bool check = args.get_bool("check", false);
  if (trace_path.empty() && metrics_path.empty()) {
    std::cerr << "usage: trace_inspect --trace=run.jsonl "
                 "[--metrics=metrics.json] [--top=N] "
                 "[--explain=JOB_ID|worst] [--check]\n";
    return 2;
  }
  if ((!explain.empty() || check) && trace_path.empty()) {
    std::cerr << "--explain/--check need --trace=run.jsonl\n";
    return 2;
  }

  int status = 0;
  if (!trace_path.empty()) {
    obs::JsonlTrace trace;
    try {
      trace = obs::read_jsonl_trace_file(trace_path);
    } catch (const std::exception& e) {
      std::cerr << "cannot parse " << trace_path << ": " << e.what() << "\n";
      return 1;
    }

    std::printf("trace %s\n", trace_path.c_str());
    std::printf("  policy %s, %d edge(s), %d cloud(s), %d job(s)\n",
                trace.meta.policy.c_str(), trace.meta.edge_count,
                trace.meta.cloud_count, trace.meta.job_count);
    if (trace.complete) {
      std::printf("  makespan %.4f, %zu record(s)\n", trace.makespan,
                  trace.records.size());
    } else {
      std::printf("  INCOMPLETE (no end line), %zu record(s)\n",
                  trace.records.size());
    }

    std::map<std::string, std::uint64_t> by_point;
    std::map<std::string, double> busy;                 // resource -> time
    std::map<JobId, std::uint64_t> disruptions;         // job -> re-executions
    std::vector<std::pair<double, JobId>> completions;  // stretch, job
    std::map<std::string, double> counter_max;
    for (const obs::TraceRecord& rec : trace.records) {
      ++by_point[to_string(rec.kind) + "/" + to_string(rec.point)];
      switch (rec.kind) {
        case obs::TraceKind::kSpan:
          busy[span_resource(rec)] += rec.end - rec.begin;
          break;
        case obs::TraceKind::kInstant:
          if (rec.point == obs::TracePoint::kCompletion) {
            completions.push_back({rec.value, rec.job});
          }
          if (rec.job >= 0 && (rec.point == obs::TracePoint::kReassignment ||
                               rec.point == obs::TracePoint::kFault ||
                               rec.point == obs::TracePoint::kUplinkLoss ||
                               rec.point == obs::TracePoint::kDownlinkLoss)) {
            ++disruptions[rec.job];
          }
          break;
        case obs::TraceKind::kCounter:
          counter_max[to_string(rec.point)] =
              std::max(counter_max[to_string(rec.point)], rec.value);
          break;
      }
    }

    std::printf("\nrecords by point\n");
    for (const auto& [name, count] : by_point) {
      std::printf("  %-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }

    if (!counter_max.empty()) {
      std::printf("\ntime-series maxima\n");
      for (const auto& [name, value] : counter_max) {
        std::printf("  %-28s %.4f\n", name.c_str(), value);
      }
    }

    if (!busy.empty()) {
      std::vector<std::pair<double, std::string>> ranked;
      for (const auto& [name, time] : busy) ranked.push_back({time, name});
      std::sort(ranked.rbegin(), ranked.rend());
      std::printf("\nbusiest resources (occupied simulated time)\n");
      for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
        std::printf("  %-34s %10.4f\n", ranked[i].second.c_str(),
                    ranked[i].first);
      }
    }

    if (!completions.empty()) {
      std::sort(completions.rbegin(), completions.rend());
      std::printf("\nworst stretches\n");
      for (int i = 0; i < top && i < static_cast<int>(completions.size());
           ++i) {
        std::printf("  J%-6d stretch %8.4f\n", completions[i].second,
                    completions[i].first);
      }
    }

    if (!disruptions.empty()) {
      std::vector<std::pair<std::uint64_t, JobId>> ranked;
      for (const auto& [job, count] : disruptions) {
        ranked.push_back({count, job});
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::printf("\nmost disrupted jobs (reassignments + faults + losses)\n");
      for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
        std::printf("  J%-6d %llu event(s)\n", ranked[i].second,
                    static_cast<unsigned long long>(ranked[i].first));
      }
    }

    if (!explain.empty()) {
      obs::ProvenanceLog log;
      replay(trace, log);
      JobId job = -1;
      if (explain == "worst") {
        job = log.worst_job();
        if (job < 0) {
          std::cerr << "--explain=worst: trace has no completions\n";
          return 1;
        }
      } else {
        try {
          job = std::stoi(explain);
        } catch (const std::exception&) {
          std::cerr << "--explain expects a job id or 'worst', got '"
                    << explain << "'\n";
          return 2;
        }
        if (job < 0 || job >= log.job_count()) {
          std::cerr << "--explain=" << job << ": trace has "
                    << log.job_count() << " job(s)\n";
          return 1;
        }
      }
      std::cout << "\n";
      log.explain(job, std::cout);
    }

    if (check) {
      obs::InvariantWatchdog watchdog;
      replay(trace, watchdog);
      std::cout << "\n";
      watchdog.report(std::cout);
      if (!watchdog.ok()) status = 3;
    }
  }

  if (!metrics_path.empty()) print_metrics(metrics_path);
  return status;
}
