// Edge-case tests for the simulation engine: degenerate communication
// times, extreme contention, combined extensions (heterogeneous clouds +
// outages), and consistency between recording modes.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

TEST(EngineEdge, ZeroUplinkNonzeroDownlink) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 1.5}};
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // exec [0,2), down [2,3.5).
  EXPECT_NEAR(result.completions[0], 3.5, 1e-9);
  EXPECT_TRUE(result.schedule.job(0).final_run.uplink.empty());
  EXPECT_NEAR(result.schedule.job(0).final_run.downlink.measure(), 1.5,
              1e-9);
}

TEST(EngineEdge, ManyJobsOneProcessorSerialize) {
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  std::vector<double> priorities;
  for (int i = 0; i < 50; ++i) {
    instance.jobs.push_back(Job{i, 0, 1.0, 0.0, 0.0, 0.0});
    priorities.push_back(static_cast<double>(i));
  }
  FixedPolicy policy(std::vector<int>(50, kAllocEdge), priorities);
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(result.completions[i], i + 1.0, 1e-6);
  }
}

TEST(EngineEdge, TinyAndHugeWorksCoexist) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 1e-4, 0.0, 1e-5, 1e-5},
                   {1, 0, 1e4, 0.0, 1.0, 1.0}};
  const auto policy = make_policy("srpt");
  const SimResult result = simulate(instance, *policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_LT(result.completions[0], 1.0);
  EXPECT_GT(result.completions[1], 1e3);
}

TEST(EngineEdge, RecordingModesAgreeOnCompletions) {
  RandomInstanceConfig cfg;
  cfg.n = 120;
  cfg.cloud_count = 4;
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  cfg.load = 0.4;
  Rng rng(17);
  const Instance instance = make_random_instance(cfg, rng);
  for (const std::string& name : policy_names()) {
    const auto p1 = make_policy(name);
    EngineConfig with;
    with.record_schedule = true;
    const SimResult a = simulate(instance, *p1, with);
    const auto p2 = make_policy(name);
    EngineConfig without;
    without.record_schedule = false;
    const SimResult b = simulate(instance, *p2, without);
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
      EXPECT_EQ(a.completions[i], b.completions[i]) << name << " J" << i;
    }
  }
}

TEST(EngineEdge, HeterogeneousCloudsWithOutagesCombined) {
  Instance instance;
  instance.platform = Platform({0.25}, std::vector<double>{0.5, 2.0});
  instance.jobs = {{0, 0, 4.0, 0.0, 0.5, 0.5},
                   {1, 0, 2.0, 0.0, 0.5, 0.5},
                   {2, 0, 1.0, 1.0, 0.2, 0.2}};
  instance.cloud_outages.resize(2);
  instance.cloud_outages[1].add(1.0, 4.0);  // fast cloud out early
  for (const std::string& name : policy_names()) {
    const auto policy = make_policy(name);
    const SimResult result = simulate(instance, *policy);
    const auto violations = validate_schedule(instance, result.schedule);
    EXPECT_TRUE(violations.empty())
        << name << ": "
        << (violations.empty() ? "" : to_string(violations.front()));
  }
}

TEST(EngineEdge, OutageExactlyAtActivityBoundary) {
  // The outage starts exactly when the uplink ends: the compute phase must
  // wait for the outage to clear.
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 2.0, 0.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(2.0, 5.0);
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // up [0,2), outage [2,5), exec [5,6).
  EXPECT_NEAR(result.completions[0], 6.0, 1e-9);
}

TEST(EngineEdge, BackToBackOutages) {
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 3.0, 0.0, 0.0, 0.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(1.0, 2.0);
  instance.cloud_outages[0].add(3.0, 4.0);
  instance.cloud_outages[0].add(5.0, 6.0);
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // exec pieces: [0,1), [2,3), [4,5), then remaining 0 -> done at 5? The
  // job needs 3 units: [0,1) + [2,3) + [4,5) = 3 -> completes at 5.
  EXPECT_NEAR(result.completions[0], 5.0, 1e-9);
  EXPECT_EQ(result.schedule.job(0).final_run.exec.size(), 3u);
}

TEST(EngineEdge, SimultaneousCompletionsAcrossResources) {
  // Two jobs finishing at exactly the same instant on different resources.
  Instance instance;
  instance.platform = Platform({1.0, 1.0}, 0);
  instance.jobs = {{0, 0, 3.0, 0.0, 0.0, 0.0}, {1, 1, 3.0, 0.0, 0.0, 0.0}};
  FixedPolicy policy({kAllocEdge, kAllocEdge}, {0.0, 0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 3.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 3.0, 1e-9);
}

TEST(EngineEdge, LongSimulationTimescale) {
  // Large absolute times must not break epsilon handling.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 1e6, 1.0, 1.0},
                   {1, 0, 3.0, 1e6 + 2.0, 0.5, 0.5}};
  const auto policy = make_policy("ssf-edf");
  const SimResult result = simulate(instance, *policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_GE(m.max_stretch, 1.0 - 1e-6);
  EXPECT_LT(m.max_stretch, 10.0);
}

TEST(EngineEdge, PolicySeesPreDecisionActivityState) {
  // During decide(), JobState::active still reflects the previous round,
  // which policies may use to detect preemption.
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0}, {1, 0, 1.0, 1.0, 0.0, 0.0}};

  class Recorder final : public Policy {
   public:
    bool saw_active_compute = false;
    [[nodiscard]] std::string name() const override { return "Recorder"; }
    void decide(const SimView& view, const std::vector<Event>& events,
                std::vector<Directive>& out) override {
      (void)events;
      if (view.now() > 0.5 && view.state(0).live()) {
        saw_active_compute |=
            view.state(0).active == Activity::kCompute;
      }
      for (const JobState& s : view.states()) {
        if (s.live()) {
          out.push_back(Directive{s.job.id, kAllocEdge,
                                  static_cast<double>(s.job.id)});
        }
      }
    }
  };
  Recorder policy;
  (void)simulate(instance, policy);
  EXPECT_TRUE(policy.saw_active_compute);
}

}  // namespace
}  // namespace ecs
