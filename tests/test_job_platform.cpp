// Tests for the job and platform model (core/job.hpp, core/platform.hpp).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/job.hpp"
#include "core/platform.hpp"

namespace ecs {
namespace {

TEST(Platform, BasicAccessors) {
  const Platform p({0.5, 0.1}, 3);
  EXPECT_EQ(p.edge_count(), 2);
  EXPECT_EQ(p.cloud_count(), 3);
  EXPECT_EQ(p.processor_count(), 5);
  EXPECT_DOUBLE_EQ(p.edge_speed(0), 0.5);
  EXPECT_DOUBLE_EQ(p.edge_speed(1), 0.1);
}

TEST(Platform, TotalSpeed) {
  const Platform p({0.5, 0.1}, 3);
  EXPECT_DOUBLE_EQ(p.total_speed(), 3.6);
}

TEST(Platform, RejectsBadSpeeds) {
  EXPECT_THROW(Platform({0.0}, 1), std::invalid_argument);
  EXPECT_THROW(Platform({-0.5}, 1), std::invalid_argument);
  EXPECT_THROW(Platform({1.5}, 1), std::invalid_argument);
  EXPECT_THROW(Platform({0.5}, -1), std::invalid_argument);
}

TEST(Platform, ExecutionTimes) {
  const Platform p({0.5}, 1);
  const Job job{0, 0, 2.0, 0.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(p.edge_time(job), 4.0);     // 2 / 0.5
  EXPECT_DOUBLE_EQ(p.cloud_time(job), 3.5);    // 1 + 2 + 0.5
  EXPECT_DOUBLE_EQ(p.best_time(job), 3.5);
}

TEST(Platform, BestTimePicksEdgeWhenCommsCostly) {
  const Platform p({0.5}, 1);
  const Job job{0, 0, 2.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(p.best_time(job), 4.0);
}

TEST(Platform, BestTimeWithoutCloud) {
  const Platform p({0.5}, 0);
  const Job job{0, 0, 2.0, 0.0, 0.0, 0.0};
  // No cloud: even "free" communications cannot help.
  EXPECT_DOUBLE_EQ(p.best_time(job), 4.0);
}

TEST(Job, ValidateAcceptsGoodJob) {
  const Job job{0, 1, 2.0, 3.0, 0.0, 0.0};
  EXPECT_TRUE(validate_job(job, 2).empty());
}

TEST(Job, ValidateRejectsBadParameters) {
  EXPECT_FALSE(validate_job(Job{0, 0, 0.0, 0.0, 0.0, 0.0}, 1).empty());
  EXPECT_FALSE(validate_job(Job{0, 0, -1.0, 0.0, 0.0, 0.0}, 1).empty());
  EXPECT_FALSE(validate_job(Job{0, 0, 1.0, -1.0, 0.0, 0.0}, 1).empty());
  EXPECT_FALSE(validate_job(Job{0, 0, 1.0, 0.0, -0.1, 0.0}, 1).empty());
  EXPECT_FALSE(validate_job(Job{0, 0, 1.0, 0.0, 0.0, -0.1}, 1).empty());
  EXPECT_FALSE(validate_job(Job{0, 5, 1.0, 0.0, 0.0, 0.0}, 2).empty());
  EXPECT_FALSE(validate_job(Job{0, -1, 1.0, 0.0, 0.0, 0.0}, 2).empty());
}

TEST(Instance, ValidateChecksIdsMatchPositions) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{1, 0, 1.0, 0.0, 0.0, 0.0}};  // id 1 at position 0
  const auto problems = validate_instance(instance);
  ASSERT_FALSE(problems.empty());
}

TEST(Instance, RequireValidThrowsWithAllProblems) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, -1.0, 0.0, 0.0, 0.0}};
  EXPECT_THROW(require_valid_instance(instance), std::invalid_argument);
}

TEST(Instance, ValidInstancePasses) {
  Instance instance;
  instance.platform = Platform({0.5, 0.1}, 2);
  instance.jobs = {{0, 0, 1.0, 0.0, 1.0, 1.0}, {1, 1, 2.0, 1.0, 0.0, 0.0}};
  EXPECT_TRUE(validate_instance(instance).empty());
  EXPECT_NO_THROW(require_valid_instance(instance));
}

TEST(Instance, EmptyPlatformRejected) {
  Instance instance;  // default platform: no edges
  const auto problems = validate_instance(instance);
  ASSERT_FALSE(problems.empty());
}

}  // namespace
}  // namespace ecs
