// Tests for the shared policy helpers (sched/common.hpp): sticky target
// selection and the immediate-start list assignment.
#include "sched/common.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace ecs {
namespace {

JobState make_state(const Platform& platform, Job job) {
  JobState s;
  s.job = job;
  s.best_time = platform.best_time(job);
  s.released = true;
  return s;
}

TEST(BestTargetSticky, PicksStrictlyBetterTarget) {
  const Platform platform({0.25}, 1);
  ResourceClock clock(platform, 0.0);
  const JobState s = make_state(platform, {0, 0, 2.0, 0.0, 0.5, 0.5});
  // Cloud 3 < edge 8.
  const auto [target, done] = best_target_sticky(platform, clock, s);
  EXPECT_EQ(target, 0);
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(BestTargetSticky, KeepsCurrentAllocationOnTies) {
  // Two identical clouds: a job already allocated to cloud 1 must stay
  // there rather than hopping to the equivalent cloud 0.
  const Platform platform({0.25}, 2);
  ResourceClock clock(platform, 0.0);
  JobState s = make_state(platform, {0, 0, 2.0, 0.0, 0.5, 0.5});
  s.alloc = 1;
  s.rem_up = 0.5;
  s.rem_work = 2.0;
  s.rem_down = 0.5;
  const auto [target, done] = best_target_sticky(platform, clock, s);
  EXPECT_EQ(target, 1);
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(BestTargetSticky, ProgressMakesCurrentAllocationWin) {
  // Continuing (remaining work 0.5) beats even an idle fresh cloud.
  const Platform platform({0.25}, 2);
  ResourceClock clock(platform, 0.0);
  JobState s = make_state(platform, {0, 0, 2.0, 0.0, 0.5, 0.5});
  s.alloc = 0;
  s.rem_up = 0.0;
  s.rem_work = 0.5;
  s.rem_down = 0.5;
  const auto [target, done] = best_target_sticky(platform, clock, s);
  EXPECT_EQ(target, 0);
  EXPECT_DOUBLE_EQ(done, 1.0);
}

TEST(BestTargetSticky, LeavesCurrentWhenGenuinelyBetterElsewhere) {
  // The job sits unstarted on a cloud whose CPU is booked far into the
  // future; the edge is strictly better.
  const Platform platform({1.0}, 1);
  ResourceClock clock(platform, 0.0);
  const JobState blocker = make_state(platform, {1, 0, 50.0, 0.0, 0.0, 0.0});
  (void)clock.commit(platform, blocker, 0);
  JobState s = make_state(platform, {0, 0, 2.0, 0.0, 0.1, 0.1});
  s.alloc = 0;
  s.rem_up = 0.1;
  s.rem_work = 2.0;
  s.rem_down = 0.1;
  const auto [target, done] = best_target_sticky(platform, clock, s);
  EXPECT_EQ(target, kAllocEdge);
  EXPECT_DOUBLE_EQ(done, 2.0);
}

TEST(ContainsRelease, DetectsReleaseKind) {
  EXPECT_FALSE(contains_release({}));
  EXPECT_FALSE(contains_release({{EventKind::kComputeDone, 0, 1.0}}));
  EXPECT_TRUE(contains_release({{EventKind::kComputeDone, 0, 1.0},
                                {EventKind::kRelease, 1, 1.0}}));
}

TEST(ListAssign, OnlyImmediateStartersGetExplicitTargets) {
  // Three jobs from one edge, one cloud. In key order: J0 takes the cloud
  // (uplink starts now). J1's cloud route queues behind J0 on both the
  // send port and the cloud CPU (done at 5.5), so its best target is the
  // free edge (done at 4.0) — an immediate start, explicit directive.
  // J2 then finds the edge claimed and the cloud route queued: it keeps
  // (kTargetKeep) and waits for a later event.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 0.5},
                   {1, 0, 2.0, 0.0, 1.0, 0.5},
                   {2, 0, 0.4, 0.0, 5.0, 5.0}};
  std::vector<JobState> states;
  for (const Job& job : instance.jobs) {
    states.push_back(JobState{});
    states.back().job = job;
    states.back().best_time = instance.platform.best_time(job);
    states.back().released = true;
  }
  const SimView view(instance, states, 0.0);
  const std::vector<Directive> directives = list_assign_directives(
      view, {{0, 1.0}, {1, 2.0}, {2, 3.0}});
  ASSERT_EQ(directives.size(), 3u);
  EXPECT_EQ(directives[0].job, 0);
  EXPECT_EQ(directives[0].target, 0);  // starts uplink now
  EXPECT_EQ(directives[1].job, 1);
  EXPECT_EQ(directives[1].target, kAllocEdge);  // edge 4.0 < queued cloud
  EXPECT_EQ(directives[2].job, 2);
  EXPECT_EQ(directives[2].target, kTargetKeep);  // everything queued
  // Priorities follow the key order.
  EXPECT_LT(directives[0].priority, directives[1].priority);
  EXPECT_LT(directives[1].priority, directives[2].priority);
}

}  // namespace
}  // namespace ecs
