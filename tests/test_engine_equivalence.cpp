// Randomized engine-equivalence harness: observability and recording are
// pure observers. For random instances (with outages and unannounced
// faults), running the same policy with schedule recording on/off and
// tracing on/off must produce IDENTICAL results — completion times exact to
// the bit, stats equal field by field, interval histories equal whenever
// they are recorded, and trace streams equal whenever they are emitted.
//
// This pins the active-set engine core against observer effects: any
// accidental dependence of the hot path on a recorder, sink or counter
// (e.g. a progress update done only when tracing) breaks this suite
// immediately and exactly, with no tolerance to hide behind.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/engine_core.hpp"
#include "util/rng.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

struct Variant {
  SimResult result;
  std::vector<obs::TraceRecord> trace;
};

Variant run_variant(const Instance& instance, const std::string& policy_name,
                    const FaultPlan& faults, bool record, bool traced) {
  const auto policy = make_policy(policy_name);
  EngineConfig config;
  config.record_schedule = record;
  config.faults = faults;
  obs::MemoryTraceSink sink;
  if (traced) config.trace = &sink;
  Variant v;
  v.result = simulate(instance, *policy, config);
  v.trace = sink.records();
  return v;
}

void expect_same_run_record(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.uplink, b.uplink);
  EXPECT_EQ(a.downlink, b.downlink);
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.job_count(), b.job_count());
  for (int id = 0; id < a.job_count(); ++id) {
    expect_same_run_record(a.job(id).final_run, b.job(id).final_run);
    ASSERT_EQ(a.job(id).abandoned.size(), b.job(id).abandoned.size());
    for (std::size_t r = 0; r < a.job(id).abandoned.size(); ++r) {
      expect_same_run_record(a.job(id).abandoned[r], b.job(id).abandoned[r]);
    }
  }
}

/// Everything except policy_seconds (wall time is never reproducible).
void expect_same_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.fault_aborts, b.fault_aborts);
  EXPECT_EQ(a.message_losses, b.message_losses);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.uplink_retransmits, b.uplink_retransmits);
  EXPECT_EQ(a.downlink_retransmits, b.downlink_retransmits);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
}

void expect_same_fault_log(const std::vector<Event>& a,
                           const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].time, b[i].time);  // exact: same arithmetic, same bits
    EXPECT_EQ(a[i].cloud, b[i].cloud);
  }
}

/// The randomized scenario of the equivalence matrix: outage calendars on
/// odd seeds, unannounced fault plans on most, varying load and CCR.
Instance equivalence_instance(int seed, FaultPlan* faults) {
  RandomInstanceConfig cfg;
  cfg.n = 150;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = seed % 2 == 0 ? 0.1 : 0.3;
  cfg.ccr = seed % 3 == 0 ? 5.0 : 1.0;
  Rng rng(1000 + seed);
  Instance instance = make_random_instance(cfg, rng);

  if (seed % 2 == 1) {  // announced outage windows on odd seeds
    OutageConfig outage_cfg;
    outage_cfg.fraction = 0.1;
    outage_cfg.mean_duration = 10.0;
    outage_cfg.horizon = 500.0;
    Rng outage_rng(2000 + seed);
    instance.cloud_outages =
        make_cloud_outages(cfg.cloud_count, outage_cfg, outage_rng);
  }

  if (seed % 3 != 0) {  // unannounced crashes + losses on most seeds
    FaultConfig fault_cfg;
    fault_cfg.crash_rate = 0.002;
    fault_cfg.mean_repair = 20.0;
    fault_cfg.loss_rate = 0.005;
    fault_cfg.horizon = 500.0;
    Rng fault_rng(3000 + seed);
    *faults = make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
  }
  return instance;
}

/// Completions + stats + fault log + schedule, exact.
void expect_same_result(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i], b.completions[i]) << "job " << i;
  }
  expect_same_stats(a.stats, b.stats);
  expect_same_fault_log(a.fault_log, b.fault_log);
  expect_same_schedule(a.schedule, b.schedule);
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EngineEquivalence, ObserversDoNotPerturbTheRun) {
  const auto& [policy_name, seed] = GetParam();
  FaultPlan faults;
  const Instance instance = equivalence_instance(seed, &faults);

  const Variant rec_traced =
      run_variant(instance, policy_name, faults, true, true);
  const Variant rec_plain =
      run_variant(instance, policy_name, faults, true, false);
  const Variant bare_traced =
      run_variant(instance, policy_name, faults, false, true);
  const Variant bare_plain =
      run_variant(instance, policy_name, faults, false, false);

  // Completion times: exact equality against the fully-instrumented run.
  for (const Variant* v : {&rec_plain, &bare_traced, &bare_plain}) {
    ASSERT_EQ(v->result.completions.size(),
              rec_traced.result.completions.size());
    for (std::size_t i = 0; i < v->result.completions.size(); ++i) {
      EXPECT_EQ(v->result.completions[i], rec_traced.result.completions[i])
          << "job " << i;
    }
    expect_same_stats(v->result.stats, rec_traced.result.stats);
    expect_same_fault_log(v->result.fault_log, rec_traced.result.fault_log);
  }

  // Interval histories: identical whenever recorded.
  expect_same_schedule(rec_traced.result.schedule, rec_plain.result.schedule);

  // Trace streams: identical whenever emitted (recording is invisible).
  ASSERT_EQ(rec_traced.trace.size(), bare_traced.trace.size());
  for (std::size_t i = 0; i < rec_traced.trace.size(); ++i) {
    EXPECT_EQ(rec_traced.trace[i], bare_traced.trace[i]) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBySeeds, EngineEquivalence,
    ::testing::Combine(::testing::Values("edge-only", "greedy", "srpt",
                                         "ssf-edf", "fcfs",
                                         "failover-srpt"),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- batched execution
//
// The batch driver's contract: a world's result depends only on its
// (instance, policy, config) triple — never on core reuse, chunked
// stepping, interleaving with other worlds, or which worker ran it.

const std::vector<std::string> kAllPolicies = {
    "edge-only", "greedy", "srpt", "ssf-edf", "fcfs", "failover-srpt"};
constexpr int kSeedCount = 4;

TEST(BatchEquivalence, BatchedWorldMatrixMatchesSimulateBitForBit) {
  // Every (policy, seed) cell as a world, on few threads with a tiny
  // rounds_per_visit so worlds genuinely interleave mid-run, against a
  // fresh simulate() per cell.
  struct Cell {
    Instance instance;
    FaultPlan faults;
    SimResult batched;
  };
  std::vector<Cell> cells(kAllPolicies.size() * kSeedCount);
  for (int seed = 0; seed < kSeedCount; ++seed) {
    for (std::size_t p = 0; p < kAllPolicies.size(); ++p) {
      Cell& cell = cells[seed * kAllPolicies.size() + p];
      cell.instance = equivalence_instance(seed, &cell.faults);
    }
  }

  BatchOptions options;
  options.threads = 3;
  options.worlds_per_thread = 2;
  options.rounds_per_visit = 17;  // deliberately tiny and odd
  BatchEngine batch(
      kAllPolicies.size(),
      [](std::size_t p) { return make_policy(kAllPolicies[p]); }, options);
  batch.run(
      cells.size(),
      [&](std::size_t index, Instance& instance, WorldSetup& setup) {
        instance = cells[index].instance;
        setup.policy = index % kAllPolicies.size();
        setup.config = EngineConfig{};
        setup.config.record_schedule = true;
        setup.config.faults = cells[index].faults;
      },
      [&](std::size_t index, const Instance&, SimResult& result, double) {
        cells[index].batched = std::move(result);
      });

  for (int seed = 0; seed < kSeedCount; ++seed) {
    for (std::size_t p = 0; p < kAllPolicies.size(); ++p) {
      const Cell& cell = cells[seed * kAllPolicies.size() + p];
      const auto policy = make_policy(kAllPolicies[p]);
      EngineConfig config;
      config.record_schedule = true;
      config.faults = cell.faults;
      const SimResult reference = simulate(cell.instance, *policy, config);
      SCOPED_TRACE(kAllPolicies[p] + " seed " + std::to_string(seed));
      expect_same_result(cell.batched, reference);
    }
  }
}

TEST(BatchEquivalence, InterleavedWorldsOnOneStatefulPolicyStayIsolated) {
  // Regression: a single worker interleaves its two resident worlds in
  // round-robin chunks. Give BOTH worlds the same stateful policy
  // (ssf-edf carries deadlines and a warm-started target stretch across
  // decide() calls) — if the resident slots shared one policy object, the
  // interleaving would bleed one world's search state into the other.
  struct Cell {
    Instance instance;
    FaultPlan faults;
    SimResult batched;
  };
  std::vector<Cell> cells(kSeedCount);
  for (int seed = 0; seed < kSeedCount; ++seed) {
    cells[seed].instance = equivalence_instance(seed, &cells[seed].faults);
  }

  BatchOptions options;
  options.threads = 1;             // one worker, fully deterministic
  options.worlds_per_thread = 2;   // two interleaved resident worlds
  options.rounds_per_visit = 3;    // swap between them constantly
  BatchEngine batch(
      1, [](std::size_t) { return make_policy("ssf-edf"); }, options);
  batch.run(
      cells.size(),
      [&](std::size_t index, Instance& instance, WorldSetup& setup) {
        instance = cells[index].instance;
        setup.config.record_schedule = true;
        setup.config.faults = cells[index].faults;
      },
      [&](std::size_t index, const Instance&, SimResult& result, double) {
        cells[index].batched = std::move(result);
      });

  for (int seed = 0; seed < kSeedCount; ++seed) {
    const auto policy = make_policy("ssf-edf");
    EngineConfig config;
    config.record_schedule = true;
    config.faults = cells[seed].faults;
    const SimResult reference =
        simulate(cells[seed].instance, *policy, config);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_same_result(cells[seed].batched, reference);
  }
}

TEST(BatchEquivalence, ReusedCoreIsBitIdenticalToFreshCores) {
  // One core and one policy object, prepared over and over across runs
  // with DIFFERENT instances in between (so leftover capacity from a big
  // run faces a small run, and vice versa), versus a fresh core per run.
  detail::EngineCore reused;
  const auto policy = make_policy("srpt");
  for (int seed = 0; seed < kSeedCount; ++seed) {
    FaultPlan faults;
    const Instance instance = equivalence_instance(seed, &faults);
    EngineConfig config;
    config.record_schedule = true;
    config.faults = faults;

    policy->reset(instance);
    reused.prepare(instance, nullptr, *policy, config);
    const SimResult warm = reused.run();

    detail::EngineCore fresh;
    const auto fresh_policy = make_policy("srpt");
    fresh_policy->reset(instance);
    fresh.prepare(instance, nullptr, *fresh_policy, config);
    const SimResult cold = fresh.run();

    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_same_result(warm, cold);
  }
}

TEST(BatchEquivalence, ChunkSizeOfSteppingNeverAffectsResults) {
  FaultPlan faults;
  const Instance instance = equivalence_instance(1, &faults);
  EngineConfig config;
  config.record_schedule = true;
  config.faults = faults;

  SimResult results[3];
  const std::uint64_t chunks[3] = {1, 7, 0};  // 0 = run to completion
  for (int i = 0; i < 3; ++i) {
    detail::EngineCore core;
    const auto policy = make_policy("ssf-edf");
    policy->reset(instance);
    core.prepare(instance, nullptr, *policy, config);
    if (chunks[i] == 0) {
      results[i] = core.run();
    } else {
      while (!core.step_rounds(chunks[i])) {
      }
      core.finish_into(results[i]);
    }
  }
  expect_same_result(results[0], results[2]);
  expect_same_result(results[1], results[2]);
}

}  // namespace
}  // namespace ecs
