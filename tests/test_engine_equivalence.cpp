// Randomized engine-equivalence harness: observability and recording are
// pure observers. For random instances (with outages and unannounced
// faults), running the same policy with schedule recording on/off and
// tracing on/off must produce IDENTICAL results — completion times exact to
// the bit, stats equal field by field, interval histories equal whenever
// they are recorded, and trace streams equal whenever they are emitted.
//
// This pins the active-set engine core against observer effects: any
// accidental dependence of the hot path on a recorder, sink or counter
// (e.g. a progress update done only when tracing) breaks this suite
// immediately and exactly, with no tolerance to hide behind.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

struct Variant {
  SimResult result;
  std::vector<obs::TraceRecord> trace;
};

Variant run_variant(const Instance& instance, const std::string& policy_name,
                    const FaultPlan& faults, bool record, bool traced) {
  const auto policy = make_policy(policy_name);
  EngineConfig config;
  config.record_schedule = record;
  config.faults = faults;
  obs::MemoryTraceSink sink;
  if (traced) config.trace = &sink;
  Variant v;
  v.result = simulate(instance, *policy, config);
  v.trace = sink.records();
  return v;
}

void expect_same_run_record(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.uplink, b.uplink);
  EXPECT_EQ(a.downlink, b.downlink);
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.job_count(), b.job_count());
  for (int id = 0; id < a.job_count(); ++id) {
    expect_same_run_record(a.job(id).final_run, b.job(id).final_run);
    ASSERT_EQ(a.job(id).abandoned.size(), b.job(id).abandoned.size());
    for (std::size_t r = 0; r < a.job(id).abandoned.size(); ++r) {
      expect_same_run_record(a.job(id).abandoned[r], b.job(id).abandoned[r]);
    }
  }
}

/// Everything except policy_seconds (wall time is never reproducible).
void expect_same_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.fault_aborts, b.fault_aborts);
  EXPECT_EQ(a.message_losses, b.message_losses);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.uplink_retransmits, b.uplink_retransmits);
  EXPECT_EQ(a.downlink_retransmits, b.downlink_retransmits);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
}

void expect_same_fault_log(const std::vector<Event>& a,
                           const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].time, b[i].time);  // exact: same arithmetic, same bits
    EXPECT_EQ(a[i].cloud, b[i].cloud);
  }
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EngineEquivalence, ObserversDoNotPerturbTheRun) {
  const auto& [policy_name, seed] = GetParam();

  RandomInstanceConfig cfg;
  cfg.n = 150;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = seed % 2 == 0 ? 0.1 : 0.3;
  cfg.ccr = seed % 3 == 0 ? 5.0 : 1.0;
  Rng rng(1000 + seed);
  Instance instance = make_random_instance(cfg, rng);

  if (seed % 2 == 1) {  // announced outage windows on odd seeds
    OutageConfig outage_cfg;
    outage_cfg.fraction = 0.1;
    outage_cfg.mean_duration = 10.0;
    outage_cfg.horizon = 500.0;
    Rng outage_rng(2000 + seed);
    instance.cloud_outages =
        make_cloud_outages(cfg.cloud_count, outage_cfg, outage_rng);
  }

  FaultPlan faults;
  if (seed % 3 != 0) {  // unannounced crashes + losses on most seeds
    FaultConfig fault_cfg;
    fault_cfg.crash_rate = 0.002;
    fault_cfg.mean_repair = 20.0;
    fault_cfg.loss_rate = 0.005;
    fault_cfg.horizon = 500.0;
    Rng fault_rng(3000 + seed);
    faults = make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
  }

  const Variant rec_traced =
      run_variant(instance, policy_name, faults, true, true);
  const Variant rec_plain =
      run_variant(instance, policy_name, faults, true, false);
  const Variant bare_traced =
      run_variant(instance, policy_name, faults, false, true);
  const Variant bare_plain =
      run_variant(instance, policy_name, faults, false, false);

  // Completion times: exact equality against the fully-instrumented run.
  for (const Variant* v : {&rec_plain, &bare_traced, &bare_plain}) {
    ASSERT_EQ(v->result.completions.size(),
              rec_traced.result.completions.size());
    for (std::size_t i = 0; i < v->result.completions.size(); ++i) {
      EXPECT_EQ(v->result.completions[i], rec_traced.result.completions[i])
          << "job " << i;
    }
    expect_same_stats(v->result.stats, rec_traced.result.stats);
    expect_same_fault_log(v->result.fault_log, rec_traced.result.fault_log);
  }

  // Interval histories: identical whenever recorded.
  expect_same_schedule(rec_traced.result.schedule, rec_plain.result.schedule);

  // Trace streams: identical whenever emitted (recording is invisible).
  ASSERT_EQ(rec_traced.trace.size(), bare_traced.trace.size());
  for (std::size_t i = 0; i < rec_traced.trace.size(); ++i) {
    EXPECT_EQ(rec_traced.trace[i], bare_traced.trace[i]) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBySeeds, EngineEquivalence,
    ::testing::Combine(::testing::Values("edge-only", "greedy", "srpt",
                                         "ssf-edf", "fcfs",
                                         "failover-srpt"),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ecs
