// Policy-equivalence harness for the O(live) arbitration rewrite.
//
// Two guarantees pinned here, with no tolerance to hide behind:
//
//  1. Bit-identical schedules: for random instances (with outages and
//     unannounced faults), every factory policy must produce EXACTLY the
//     same run as its frozen pre-rewrite reference implementation
//     (tests/reference_policies.hpp) — completion times equal to the bit,
//     stats (including reassignment counts) equal field by field, interval
//     histories and fault logs identical. The workspace reuse, the
//     live-span iteration and the warm-started stretch search are pure
//     optimizations; any behavioral drift fails this suite exactly.
//
//  2. Zero steady-state allocations: after a warm-up call, decide() on an
//     unchanged live set performs no heap allocation at all, for every
//     factory policy. Verified with a counting global operator new.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "reference_policies.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every global allocation in this binary bumps the
// counter. The zero-allocation test measures the delta across warmed
// decide() calls; everything else (gtest bookkeeping, setup) happens
// outside the measured window and is unaffected.
namespace {
std::atomic<std::size_t> g_alloc_calls{0};

void* counted_alloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace ecs {
namespace {

struct Workload {
  Instance instance;
  FaultPlan faults;
};

/// Same workload family as the engine-equivalence suite: random
/// instances, announced outages on odd seeds, unannounced crashes and
/// message losses on most seeds.
Workload make_workload(int seed) {
  Workload w;
  RandomInstanceConfig cfg;
  cfg.n = 150;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = seed % 2 == 0 ? 0.1 : 0.3;
  cfg.ccr = seed % 3 == 0 ? 5.0 : 1.0;
  Rng rng(1000 + seed);
  w.instance = make_random_instance(cfg, rng);

  if (seed % 2 == 1) {
    OutageConfig outage_cfg;
    outage_cfg.fraction = 0.1;
    outage_cfg.mean_duration = 10.0;
    outage_cfg.horizon = 500.0;
    Rng outage_rng(2000 + seed);
    w.instance.cloud_outages =
        make_cloud_outages(cfg.cloud_count, outage_cfg, outage_rng);
  }
  if (seed % 3 != 0) {
    FaultConfig fault_cfg;
    fault_cfg.crash_rate = 0.002;
    fault_cfg.mean_repair = 20.0;
    fault_cfg.loss_rate = 0.005;
    fault_cfg.horizon = 500.0;
    Rng fault_rng(3000 + seed);
    w.faults = make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
  }
  return w;
}

SimResult run(const Workload& w, Policy& policy) {
  EngineConfig config;
  config.record_schedule = true;
  config.faults = w.faults;
  return simulate(w.instance, policy, config);
}

void expect_same_run_record(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.uplink, b.uplink);
  EXPECT_EQ(a.downlink, b.downlink);
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.job_count(), b.job_count());
  for (int id = 0; id < a.job_count(); ++id) {
    expect_same_run_record(a.job(id).final_run, b.job(id).final_run);
    ASSERT_EQ(a.job(id).abandoned.size(), b.job(id).abandoned.size());
    for (std::size_t r = 0; r < a.job(id).abandoned.size(); ++r) {
      expect_same_run_record(a.job(id).abandoned[r], b.job(id).abandoned[r]);
    }
  }
}

/// Everything except policy_seconds (wall time is never reproducible).
void expect_same_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.fault_aborts, b.fault_aborts);
  EXPECT_EQ(a.message_losses, b.message_losses);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.uplink_retransmits, b.uplink_retransmits);
  EXPECT_EQ(a.downlink_retransmits, b.downlink_retransmits);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
}

void expect_same_fault_log(const std::vector<Event>& a,
                           const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].time, b[i].time);  // exact: same arithmetic, same bits
    EXPECT_EQ(a[i].cloud, b[i].cloud);
  }
}

class PolicyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PolicyEquivalence, MatchesFrozenReferenceBitForBit) {
  const auto& [policy_name, seed] = GetParam();
  const Workload w = make_workload(seed);

  const auto optimized = make_policy(policy_name);
  const auto reference = ref::make_reference_policy(policy_name);

  const SimResult got = run(w, *optimized);
  const SimResult want = run(w, *reference);

  ASSERT_EQ(got.completions.size(), want.completions.size());
  for (std::size_t i = 0; i < got.completions.size(); ++i) {
    EXPECT_EQ(got.completions[i], want.completions[i]) << "job " << i;
  }
  expect_same_stats(got.stats, want.stats);
  expect_same_fault_log(got.fault_log, want.fault_log);
  expect_same_schedule(got.schedule, want.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBySeeds, PolicyEquivalence,
    ::testing::Combine(::testing::Values("edge-only", "greedy", "srpt",
                                         "srpt-noreexec", "ssf-edf", "fcfs",
                                         "failover-srpt"),
                       ::testing::Range(0, 5)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Zero-allocation: drive decide() directly on a hand-built view. After the
// first call warmed every workspace buffer, repeated decisions on the same
// live set must not touch the heap.

class ZeroAllocation : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroAllocation, SteadyStateDecideDoesNotAllocate) {
  const std::string& policy_name = GetParam();

  RandomInstanceConfig cfg;
  cfg.n = 64;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = 0.3;
  Rng rng(42);
  const Instance instance = make_random_instance(cfg, rng);

  // Every job live and unassigned at a time past the last release: the
  // worst-case decision round (policies see the full instance at once).
  Time now = 0.0;
  std::vector<JobState> states;
  std::vector<JobId> live;
  states.reserve(instance.jobs.size());
  for (const Job& job : instance.jobs) {
    live.push_back(job.id);
    now = std::max(now, job.release);
  }
  for (const Job& job : instance.jobs) {
    JobState s;
    s.job = job;
    s.best_time = instance.platform.best_time(job);
    s.rem_work = job.work;
    s.released = true;
    states.push_back(s);
  }
  const SimView view(instance, states, now, &live);
  // A release in the batch exercises the deadline-recompute (stretch
  // search) path of SSF-EDF and Edge-Only on every call.
  const std::vector<Event> events = {
      Event{EventKind::kRelease, instance.jobs.back().id, now, -1}};

  const auto policy = make_policy(policy_name);
  policy->reset(instance);

  std::vector<Directive> out;
  for (int warm = 0; warm < 3; ++warm) {
    out.clear();
    policy->decide(view, events, out);
  }
  ASSERT_FALSE(out.empty());

  const std::size_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    out.clear();
    policy->decide(view, events, out);
  }
  const std::size_t after = g_alloc_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0U)
      << policy->name() << " allocated in steady-state decide()";
}

INSTANTIATE_TEST_SUITE_P(AllFactoryPolicies, ZeroAllocation,
                         ::testing::Values("edge-only", "greedy", "srpt",
                                           "srpt-noreexec", "ssf-edf",
                                           "fcfs", "failover-srpt"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ecs
