// Tests for decision provenance (obs/provenance.hpp): the trace-record
// mapping, chain assembly with directive/legacy dedup, and the acceptance
// property that a faulted run under every policy yields a complete causal
// chain (release -> placements -> completion) for every job, with the
// final stretch recoverable from the chain alone.
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "obs/reason.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

obs::TraceRecord instant(obs::TracePoint point, JobId job, Time t) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kInstant;
  rec.point = point;
  rec.job = job;
  rec.begin = rec.end = t;
  return rec;
}

TEST(ProvenanceFromTrace, MapsLifecycleInstants) {
  obs::TraceRecord rel = instant(obs::TracePoint::kRelease, 3, 1.5);
  rel.origin = 2;
  auto p = obs::provenance_from_trace(rel);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, obs::ProvenanceKind::kRelease);
  EXPECT_EQ(p->job, 3);
  EXPECT_EQ(p->origin, 2);

  obs::TraceRecord done = instant(obs::TracePoint::kCompletion, 3, 9.0);
  done.value = 2.25;  // realized stretch rides the completion instant
  p = obs::provenance_from_trace(done);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, obs::ProvenanceKind::kComplete);
  EXPECT_DOUBLE_EQ(p->value, 2.25);

  // Spans, counters and job-less instants carry no per-job lifecycle info.
  obs::TraceRecord span;
  span.kind = obs::TraceKind::kSpan;
  span.point = obs::TracePoint::kExec;
  span.job = 3;
  EXPECT_FALSE(obs::provenance_from_trace(span).has_value());
  obs::TraceRecord fault = instant(obs::TracePoint::kFault, -1, 4.0);
  EXPECT_FALSE(obs::provenance_from_trace(fault).has_value());
}

TEST(ProvenanceFromTrace, DirectiveKindsAndReasons) {
  obs::TraceRecord dir = instant(obs::TracePoint::kDirective, 0, 2.0);
  dir.cloud = kAllocUnassigned;  // source
  dir.alloc = 1;                 // target
  dir.reason = static_cast<int>(ReasonCode::kProjectedBestCompletion);
  auto p = obs::provenance_from_trace(dir);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, obs::ProvenanceKind::kAssign);
  EXPECT_EQ(p->source, kAllocUnassigned);
  EXPECT_EQ(p->target, 1);
  EXPECT_EQ(p->reason, ReasonCode::kProjectedBestCompletion);

  dir.cloud = 1;
  dir.alloc = kAllocEdge;
  p = obs::provenance_from_trace(dir);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, obs::ProvenanceKind::kReassign);

  dir.cloud = kAllocEdge;
  p = obs::provenance_from_trace(dir);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, obs::ProvenanceKind::kKeep);
}

TEST(ProvenanceLog, DedupsDirectiveAgainstLegacyReassignment) {
  // The engine emits the provenance directive first, then the legacy
  // kReassignment instant for the same move; the chain keeps one entry —
  // the directive's, which carries the reason.
  obs::ProvenanceLog log;
  obs::TraceMeta meta;
  meta.job_count = 1;
  meta.edge_count = 1;
  meta.cloud_count = 2;
  log.begin_trace(meta);
  log.record(instant(obs::TracePoint::kRelease, 0, 0.0));
  obs::TraceRecord dir = instant(obs::TracePoint::kDirective, 0, 1.0);
  dir.cloud = kAllocUnassigned;
  dir.alloc = 0;
  dir.reason = static_cast<int>(ReasonCode::kSrptShortestRemaining);
  log.record(dir);
  obs::TraceRecord legacy = instant(obs::TracePoint::kReassignment, 0, 1.0);
  legacy.alloc = 0;
  legacy.value = static_cast<double>(kAllocUnassigned);  // previous alloc
  log.record(legacy);
  log.end_trace(2.0);

  const auto& chain = log.chain(0);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].kind, obs::ProvenanceKind::kRelease);
  EXPECT_EQ(chain[1].kind, obs::ProvenanceKind::kAssign);
  EXPECT_EQ(chain[1].reason, ReasonCode::kSrptShortestRemaining);
}

TEST(ProvenanceLog, AllocNames) {
  EXPECT_EQ(obs::alloc_name(kAllocUnassigned, 0), "unassigned");
  EXPECT_EQ(obs::alloc_name(kAllocEdge, 3), "edge3");
  EXPECT_EQ(obs::alloc_name(2, 0), "cloud2");
}

/// Faulted mid-size instance shared by the policy sweep below.
Instance faulted_instance(FaultPlan& plan_out) {
  RandomInstanceConfig cfg;
  cfg.n = 150;
  cfg.ccr = 1.0;
  cfg.load = 0.8;
  Rng rng(21);
  Instance instance = make_random_instance(cfg, rng);
  FaultConfig fault_cfg;
  fault_cfg.crash_rate = 0.01;
  fault_cfg.loss_rate = 0.01;
  fault_cfg.mean_repair = 25.0;
  Rng fault_rng(22);
  plan_out =
      make_fault_plan(instance.platform.cloud_count(), fault_cfg, fault_rng);
  return instance;
}

TEST(ProvenanceLog, CompleteChainForEveryJobUnderEveryPolicy) {
  // The acceptance property: in a faulted run of each of the seven
  // policies, every job's chain tells the full story — a release, at least
  // one explicit reasoned placement, and the completion — and the chain's
  // final stretch matches the metrics computed from completions.
  FaultPlan plan;
  const Instance instance = faulted_instance(plan);
  const std::vector<std::string> policies = {
      "fcfs",          "greedy",   "srpt",         "srpt-noreexec",
      "ssf-edf",       "edge-only", "failover-srpt"};
  for (const std::string& name : policies) {
    obs::ProvenanceLog log;
    EngineConfig config;
    config.trace = &log;
    config.provenance = true;
    config.faults = plan;
    const auto policy = make_policy(name);
    const SimResult result = simulate(instance, *policy, config);
    const ScheduleMetrics metrics =
        metrics_from_completions(instance, result.completions);

    for (int j = 0; j < instance.job_count(); ++j) {
      EXPECT_TRUE(log.complete_chain(j)) << name << " job " << j;
      const auto stretch = log.final_stretch(j);
      ASSERT_TRUE(stretch.has_value()) << name << " job " << j;
      EXPECT_NEAR(*stretch, metrics.per_job[j].stretch, 1e-9)
          << name << " job " << j;
      // Every placement decision in the chain names a reason.
      for (const obs::ProvenanceRecord& rec : log.chain(j)) {
        if (rec.kind == obs::ProvenanceKind::kAssign ||
            rec.kind == obs::ProvenanceKind::kReassign ||
            rec.kind == obs::ProvenanceKind::kKeep) {
          EXPECT_NE(rec.reason, ReasonCode::kUnspecified)
              << name << " job " << j;
        }
      }
    }
    // The worst job agrees with the metrics' max stretch.
    const JobId worst = log.worst_job();
    ASSERT_GE(worst, 0) << name;
    EXPECT_NEAR(*log.final_stretch(worst), metrics.max_stretch, 1e-9)
        << name;
    // explain() renders a non-trivial story for the worst job.
    std::ostringstream out;
    log.explain(worst, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("release"), std::string::npos) << name;
    EXPECT_NE(text.find("complete"), std::string::npos) << name;
  }
}

TEST(ProvenanceEngine, ProvenanceRunIsBitIdenticalToPlain) {
  // Emitting provenance must not perturb the simulation arithmetic.
  FaultPlan plan;
  const Instance instance = faulted_instance(plan);
  EngineConfig plain_config;
  plain_config.faults = plan;
  const auto plain_policy = make_policy("failover-ssf-edf");
  const SimResult plain = simulate(instance, *plain_policy, plain_config);

  obs::MemoryTraceSink sink;
  EngineConfig config;
  config.trace = &sink;
  config.provenance = true;
  config.faults = plan;
  const auto policy = make_policy("failover-ssf-edf");
  const SimResult traced = simulate(instance, *policy, config);

  ASSERT_EQ(plain.completions.size(), traced.completions.size());
  for (std::size_t i = 0; i < plain.completions.size(); ++i) {
    EXPECT_EQ(plain.completions[i], traced.completions[i]) << "job " << i;
  }
  EXPECT_EQ(plain.stats.events, traced.stats.events);
  EXPECT_EQ(plain.stats.decisions, traced.stats.decisions);
  EXPECT_EQ(plain.stats.reassignments, traced.stats.reassignments);

  // The traced stream actually contains reasoned directives.
  bool directive_seen = false;
  for (const obs::TraceRecord& rec : sink.records()) {
    directive_seen |= rec.point == obs::TracePoint::kDirective;
  }
  EXPECT_TRUE(directive_seen);
}

}  // namespace
}  // namespace ecs
