// Tests for cloud availability windows (Instance::cloud_outages, the
// paper's future-work scenario). The engine must suspend every activity
// involving an unavailable cloud, preempting at the boundary and resuming
// afterwards with progress intact; the validator must reject any schedule
// touching a cloud during its outage.
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"
#include "workloads/trace_io.hpp"

namespace ecs {
namespace {

TEST(IntervalContains, PointMembership) {
  IntervalSet set;
  set.add(2.0, 5.0);
  set.add(8.0, 9.0);
  EXPECT_TRUE(set.contains(2.0));   // half-open: begin included
  EXPECT_TRUE(set.contains(3.0));
  EXPECT_FALSE(set.contains(5.0));  // end excluded
  EXPECT_FALSE(set.contains(6.0));
  EXPECT_TRUE(set.contains(8.5));
  EXPECT_FALSE(set.contains(0.0));
}

TEST(Outages, InstanceAvailabilityQueries) {
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.cloud_outages.resize(2);
  instance.cloud_outages[1].add(10.0, 20.0);
  EXPECT_TRUE(instance.cloud_available(0, 15.0));
  EXPECT_FALSE(instance.cloud_available(1, 15.0));
  EXPECT_TRUE(instance.cloud_available(1, 20.0));
  // No outage table at all: everything available.
  Instance plain;
  plain.platform = Platform({0.5}, 2);
  EXPECT_TRUE(plain.cloud_available(1, 15.0));
}

TEST(Outages, ValidateInstanceChecksSize) {
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.0, 0.0}};
  instance.cloud_outages.resize(1);  // wrong: 2 clouds
  EXPECT_FALSE(validate_instance(instance).empty());
  instance.cloud_outages.resize(2);
  EXPECT_TRUE(validate_instance(instance).empty());
}

TEST(Outages, ComputeSuspendsAndResumes) {
  // Job computes on the only cloud; an outage [2, 5) interrupts it.
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(2.0, 5.0);
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // up [0,1), exec [1,2) + [5,8), down [8,9).
  EXPECT_NEAR(result.completions[0], 9.0, 1e-9);
  const IntervalSet& exec = result.schedule.job(0).final_run.exec;
  ASSERT_EQ(exec.size(), 2u);
  EXPECT_NEAR(exec.intervals()[0].end, 2.0, 1e-9);
  EXPECT_NEAR(exec.intervals()[1].begin, 5.0, 1e-9);
  // Progress was kept: total execution is exactly the work amount.
  EXPECT_NEAR(exec.measure(), 4.0, 1e-9);
}

TEST(Outages, UplinkBlockedUntilCloudReturns) {
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 2.0, 0.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(0.0, 3.0);  // cloud down from the start
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // Uplink can only start at 3: up [3,5), exec [5,6).
  EXPECT_NEAR(result.completions[0], 6.0, 1e-9);
}

TEST(Outages, ValidatorFlagsWorkDuringOutage) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(1.0, 3.0);
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.exec.add(0.5, 2.5);  // overlaps the outage
  const auto violations = validate_schedule(instance, schedule);
  bool found = false;
  for (const Violation& v : violations) {
    found |= v.kind == ViolationKind::kOutageConflict;
  }
  EXPECT_TRUE(found);
}

TEST(Outages, EdgeExecutionUnaffected) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(0.0, 100.0);
  FixedPolicy policy({kAllocEdge}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
}

TEST(Outages, PoliciesSurviveOutagesOnRandomInstances) {
  RandomInstanceConfig cfg;
  cfg.n = 60;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = 0.3;
  for (const std::string& name : policy_names()) {
    Rng rng(77);
    Instance instance = make_random_instance(cfg, rng);
    OutageConfig outage_cfg;
    outage_cfg.fraction = 0.3;
    outage_cfg.mean_duration = 40.0;
    outage_cfg.horizon = 2000.0;
    Rng outage_rng(99);
    instance.cloud_outages =
        make_cloud_outages(cfg.cloud_count, outage_cfg, outage_rng);
    RunOptions options;
    options.validate = true;
    const RunOutcome outcome = run_policy(instance, name, options);
    EXPECT_TRUE(outcome.validated) << name;
    EXPECT_GE(outcome.metrics.max_stretch, 1.0 - 1e-6) << name;
  }
}

TEST(Outages, GeneratorRespectsFraction) {
  OutageConfig cfg;
  cfg.fraction = 0.25;
  cfg.mean_duration = 20.0;
  cfg.horizon = 100000.0;
  Rng rng(5);
  const auto outages = make_cloud_outages(4, cfg, rng);
  ASSERT_EQ(outages.size(), 4u);
  for (const IntervalSet& set : outages) {
    // Long-run unavailable fraction approaches cfg.fraction.
    EXPECT_NEAR(set.measure() / cfg.horizon, 0.25, 0.05);
  }
}

TEST(Outages, GeneratorDeterministicUnderFixedSeed) {
  OutageConfig cfg;
  cfg.fraction = 0.3;
  cfg.mean_duration = 25.0;
  cfg.horizon = 5000.0;
  Rng a(314), b(314), c(315);
  const auto first = make_cloud_outages(3, cfg, a);
  const auto second = make_cloud_outages(3, cfg, b);
  const auto other = make_cloud_outages(3, cfg, c);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t k = 0; k < first.size(); ++k) {
    EXPECT_EQ(first[k], second[k]) << "cloud " << k;
  }
  // A different seed draws a different timeline.
  bool any_difference = false;
  for (std::size_t k = 0; k < first.size(); ++k) {
    any_difference |= !(first[k] == other[k]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Outages, GeneratorFractionAcrossSeeds) {
  // The realized unavailable fraction, averaged over many independent
  // seeds, converges to the configured fraction.
  OutageConfig cfg;
  cfg.fraction = 0.2;
  cfg.mean_duration = 30.0;
  cfg.horizon = 10000.0;
  double total = 0.0;
  int sets = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    for (const IntervalSet& set : make_cloud_outages(2, cfg, rng)) {
      total += set.measure() / cfg.horizon;
      ++sets;
    }
  }
  EXPECT_NEAR(total / sets, cfg.fraction, 0.02);
}

TEST(Outages, GeneratorEdgeCases) {
  Rng rng(1);
  OutageConfig zero;
  zero.fraction = 0.0;
  const auto none = make_cloud_outages(2, zero, rng);
  EXPECT_TRUE(none[0].empty());
  OutageConfig bad;
  bad.fraction = 1.0;
  EXPECT_THROW((void)make_cloud_outages(1, bad, rng), std::invalid_argument);
  bad.fraction = -0.1;
  EXPECT_THROW((void)make_cloud_outages(1, bad, rng), std::invalid_argument);
}

TEST(Outages, TraceIoRoundTrip) {
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.5, 0.5}};
  instance.cloud_outages.resize(2);
  instance.cloud_outages[0].add(1.0, 2.0);
  instance.cloud_outages[0].add(5.0, 7.5);
  std::stringstream buffer;
  save_instance(buffer, instance);
  const Instance loaded = load_instance(buffer);
  ASSERT_EQ(loaded.cloud_outages.size(), 2u);
  EXPECT_EQ(loaded.cloud_outages[0], instance.cloud_outages[0]);
  EXPECT_TRUE(loaded.cloud_outages[1].empty());
}

TEST(Outages, StretchStillAtLeastOne) {
  // With the denominator min(t^e, t^c) computed WITHOUT outages, stretches
  // remain >= 1: an outage can only delay a job further.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.5, 0.5}};
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(0.0, 10.0);
  const auto policy = make_policy("ssf-edf");
  const SimResult result = simulate(instance, *policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_GE(m.max_stretch, 1.0 - 1e-9);
}

}  // namespace
}  // namespace ecs
