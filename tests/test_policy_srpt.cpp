// Tests for the SRPT heuristic (sched/srpt.hpp, paper section V-C).
#include "sched/srpt.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

SimResult run_srpt(const Instance& instance, SrptConfig config = {}) {
  SrptPolicy policy(config);
  return simulate(instance, policy);
}

TEST(Srpt, RunsShortestJobFirstOnSingleMachine) {
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 10.0, 0.0, 0.0, 0.0}, {1, 0, 1.0, 0.0, 0.0, 0.0}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[1], 1.0, 1e-9);
  EXPECT_NEAR(result.completions[0], 11.0, 1e-9);
}

TEST(Srpt, PreemptsForShorterArrival) {
  // A long job runs; a short job arrives and has smaller remaining time,
  // so it takes the processor (classic SRPT preemption).
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 10.0, 0.0, 0.0, 0.0}, {1, 0, 2.0, 3.0, 0.0, 0.0}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[1], 5.0, 1e-9);
  EXPECT_NEAR(result.completions[0], 12.0, 1e-9);
  EXPECT_EQ(result.schedule.job(0).final_run.exec.size(), 2u);
}

TEST(Srpt, NoPreemptionWhenRemainingIsSmaller) {
  // The running job has 1 unit left when a 2-unit job arrives: no switch.
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 4.0, 0.0, 0.0, 0.0}, {1, 0, 2.0, 3.0, 0.0, 0.0}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 6.0, 1e-9);
}

TEST(Srpt, OffloadsToCloudWhenFaster) {
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 5.0, 0.0, 1.0, 1.0}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, 0);
  EXPECT_NEAR(result.completions[0], 7.0, 1e-9);  // 1 + 5 + 1 vs 50 local
}

TEST(Srpt, ReexecutionEscapeToIdleResource) {
  // Job 0 queued behind a long job on the only cloud after being preempted
  // there would wait; restarting on the (slow but idle) edge finishes
  // earlier, so SRPT re-executes. Construct: J0 gets cloud first, then J1
  // (shorter) snipes it; J0's escape to edge beats waiting.
  Instance instance;
  instance.platform = Platform({0.9}, 1);
  // J0: work 10, up/down 0.1 -> cloud 10.2, edge 11.1.
  // J1: work 2 released at 0.05 -> takes the cloud (finishes first).
  instance.jobs = {{0, 0, 10.0, 0.0, 0.1, 0.1}, {1, 0, 2.0, 0.05, 0.1, 0.1}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_GE(m.max_stretch, 1.0);
  // Whatever the exact trajectory, the schedule must be valid and both jobs
  // complete; the interesting assertion is that SRPT is allowed to restart:
  // with re-execution disabled the outcome must be no better.
  SrptConfig no_reexec;
  no_reexec.allow_reexecution = false;
  const SimResult crippled = run_srpt(instance, no_reexec);
  require_valid_schedule(instance, crippled.schedule);
  EXPECT_EQ(crippled.stats.reassignments, 0u);
}

TEST(Srpt, NoReexecVariantNeverDiscardsProgress) {
  Instance instance;
  instance.platform = Platform({0.4, 0.4}, 2);
  for (int i = 0; i < 20; ++i) {
    instance.jobs.push_back(Job{i, static_cast<EdgeId>(i % 2),
                                1.0 + (i % 5), 0.3 * i, 0.5, 0.5});
  }
  SrptConfig config;
  config.allow_reexecution = false;
  const SimResult result = run_srpt(instance, config);
  require_valid_schedule(instance, result.schedule);
  EXPECT_EQ(result.stats.reassignments, 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(result.schedule.job(i).abandoned.empty());
  }
}

TEST(Srpt, ParallelismAcrossEdgeAndClouds) {
  // Three simultaneous jobs, one edge + two clouds: all three run at once.
  Instance instance;
  instance.platform = Platform({1.0}, 2);
  instance.jobs = {{0, 0, 4.0, 0.0, 0.5, 0.5},
                   {1, 0, 4.0, 0.0, 0.5, 0.5},
                   {2, 0, 4.0, 0.0, 0.5, 0.5}};
  const SimResult result = run_srpt(instance);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  // Pure serialization on the edge would end at 12; parallel execution
  // (edge 4; clouds with staggered uplinks ~5-6.5) is far better.
  EXPECT_LT(m.makespan, 8.0);
}

}  // namespace
}  // namespace ecs
