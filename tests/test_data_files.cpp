// Smoke tests over the sample instances shipped in data/: they must load,
// validate, and schedule under every policy. Guards the on-disk format
// against accidental incompatible changes to trace_io.
#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "workloads/trace_io.hpp"

namespace ecs {
namespace {

class DataFiles : public ::testing::TestWithParam<const char*> {};

TEST_P(DataFiles, LoadsValidatesAndSchedules) {
  const std::string path = std::string(ECS_SOURCE_DIR) + "/" + GetParam();
  const Instance instance = load_instance_file(path);
  EXPECT_TRUE(validate_instance(instance).empty());
  EXPECT_GT(instance.job_count(), 0);
  for (const std::string& name : {"srpt", "ssf-edf"}) {
    RunOptions options;
    options.validate = true;
    const RunOutcome outcome = run_policy(instance, name, options);
    EXPECT_TRUE(outcome.validated) << path << " / " << name;
    EXPECT_GE(outcome.metrics.max_stretch, 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, DataFiles,
                         ::testing::Values("data/random_small.csv",
                                           "data/kang_small.csv"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ecs
