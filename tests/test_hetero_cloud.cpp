// Tests for the heterogeneous-cloud extension (paper section II notes the
// model extends straightforwardly to heterogeneous cloud processors; this
// library implements that extension end-to-end: platform, engine,
// projection, validator, policies, serialization).
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "sim/projection.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"
#include "workloads/trace_io.hpp"

namespace ecs {
namespace {

TEST(HeteroCloud, PlatformAccessors) {
  const Platform p({0.5}, std::vector<double>{1.0, 2.0, 0.5});
  EXPECT_EQ(p.cloud_count(), 3);
  EXPECT_DOUBLE_EQ(p.cloud_speed(1), 2.0);
  EXPECT_FALSE(p.homogeneous_cloud());
  EXPECT_DOUBLE_EQ(p.max_cloud_speed(), 2.0);
  EXPECT_DOUBLE_EQ(p.total_speed(), 4.0);
  EXPECT_TRUE(Platform({0.5}, 2).homogeneous_cloud());
}

TEST(HeteroCloud, CloudSpeedsMayExceedOne) {
  EXPECT_NO_THROW(Platform({0.5}, std::vector<double>{4.0}));
  EXPECT_THROW(Platform({0.5}, std::vector<double>{0.0}),
               std::invalid_argument);
  EXPECT_THROW(Platform({0.5}, std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(HeteroCloud, ExecutionTimesUseCloudSpeed) {
  const Platform p({0.5}, std::vector<double>{1.0, 2.0});
  const Job job{0, 0, 4.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(p.cloud_time_on(job, 0), 6.0);  // 1 + 4/1 + 1
  EXPECT_DOUBLE_EQ(p.cloud_time_on(job, 1), 4.0);  // 1 + 4/2 + 1
  // Best cloud time uses the fastest processor.
  EXPECT_DOUBLE_EQ(p.cloud_time(job), 4.0);
  EXPECT_DOUBLE_EQ(p.best_time(job), 4.0);  // edge would be 8
}

TEST(HeteroCloud, EngineComputesAtCloudSpeed) {
  Instance instance;
  instance.platform = Platform({0.5}, std::vector<double>{2.0});
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // up 1 + work 4/2 + down 1.
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
  EXPECT_NEAR(result.schedule.job(0).final_run.exec.measure(), 2.0, 1e-9);
}

TEST(HeteroCloud, ValidatorChecksSpeedScaledQuantity) {
  Instance instance;
  instance.platform = Platform({0.5}, std::vector<double>{2.0});
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.uplink.add(0.0, 1.0);
  schedule.job(0).final_run.exec.add(1.0, 2.0);  // needs 2 time units
  schedule.job(0).final_run.downlink.add(2.0, 3.0);
  EXPECT_FALSE(is_valid_schedule(instance, schedule));
  schedule.job(0).final_run.exec.add(2.0, 3.0);  // now 2 units... overlaps
  // Rebuild cleanly: exec [1, 3), downlink [3, 4).
  Schedule good(1);
  good.job(0).final_run.alloc = 0;
  good.job(0).final_run.uplink.add(0.0, 1.0);
  good.job(0).final_run.exec.add(1.0, 3.0);
  good.job(0).final_run.downlink.add(3.0, 4.0);
  EXPECT_TRUE(is_valid_schedule(instance, good));
}

TEST(HeteroCloud, ProjectionUsesCloudSpeed) {
  const Platform p({0.5}, std::vector<double>{1.0, 4.0});
  JobState s;
  s.job = Job{0, 0, 8.0, 0.0, 1.0, 1.0};
  s.best_time = p.best_time(s.job);
  s.released = true;
  EXPECT_DOUBLE_EQ(uncontended_completion(p, s, 0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(uncontended_completion(p, s, 1, 0.0), 4.0);
  EXPECT_EQ(fastest_cloud(p), 1);
  EXPECT_DOUBLE_EQ(best_uncontended_completion(p, s, 0.0), 4.0);
  ResourceClock clock(p, 0.0);
  EXPECT_DOUBLE_EQ(clock.project(p, s, 1), 4.0);
  const auto [target, done] = clock.best_target(p, s);
  EXPECT_EQ(target, 1);
  EXPECT_DOUBLE_EQ(done, 4.0);
}

TEST(HeteroCloud, PoliciesPreferFasterCloud) {
  Instance instance;
  instance.platform = Platform({0.2}, std::vector<double>{1.0, 3.0});
  instance.jobs = {{0, 0, 6.0, 0.0, 0.5, 0.5}};
  for (const std::string& name : {"greedy", "srpt", "ssf-edf", "fcfs"}) {
    const auto policy = make_policy(name);
    const SimResult result = simulate(instance, *policy);
    require_valid_schedule(instance, result.schedule);
    EXPECT_EQ(result.schedule.job(0).final_run.alloc, 1) << name;
    EXPECT_NEAR(result.completions[0], 3.0, 1e-9) << name;  // .5 + 2 + .5
  }
}

TEST(HeteroCloud, AllPoliciesValidOnRandomHeteroPlatform) {
  RandomInstanceConfig cfg;
  cfg.n = 60;
  cfg.cloud_count = 0;  // platform replaced below
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  Rng rng(21);
  Instance instance = make_random_instance(cfg, rng);
  instance.platform = Platform(instance.platform.edge_speeds(),
                               std::vector<double>{0.5, 1.0, 2.0, 4.0});
  for (const std::string& name : policy_names()) {
    RunOptions options;
    options.validate = true;
    const RunOutcome outcome = run_policy(instance, name, options);
    EXPECT_TRUE(outcome.validated) << name;
    EXPECT_GE(outcome.metrics.max_stretch, 1.0 - 1e-6) << name;
  }
}

TEST(HeteroCloud, TraceIoRoundTrip) {
  Instance instance;
  instance.platform = Platform({0.5, 0.25}, std::vector<double>{1.5, 0.75});
  instance.jobs = {{0, 1, 2.0, 0.5, 1.0, 0.0}};
  std::stringstream buffer;
  save_instance(buffer, instance);
  EXPECT_NE(buffer.str().find("cloud_speeds"), std::string::npos);
  const Instance loaded = load_instance(buffer);
  EXPECT_EQ(loaded.platform, instance.platform);
  EXPECT_FALSE(loaded.platform.homogeneous_cloud());
}

TEST(HeteroCloud, FasterCloudImprovesResponses) {
  // Upgrading a cloud processor cannot hurt absolute response times on
  // average (stretch is the wrong yardstick here: a faster cloud also
  // shrinks the denominators min(t^e, t^c), so per-job stretches may rise
  // even as every job finishes sooner). Statistical over seeds with slack.
  double base_total = 0.0;
  double fast_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomInstanceConfig cfg;
    cfg.n = 80;
    cfg.cloud_count = 0;
    cfg.slow_edges = 2;
    cfg.fast_edges = 2;
    cfg.load = 0.4;
    Rng rng(seed);
    Instance instance = make_random_instance(cfg, rng);
    instance.platform =
        Platform(instance.platform.edge_speeds(), std::vector<double>{1.0, 1.0});
    base_total += run_policy(instance, "ssf-edf", RunOptions{})
                      .metrics.mean_response;
    instance.platform =
        Platform(instance.platform.edge_speeds(), std::vector<double>{1.0, 3.0});
    fast_total += run_policy(instance, "ssf-edf", RunOptions{})
                      .metrics.mean_response;
  }
  EXPECT_LE(fast_total, base_total * 1.05);
}

}  // namespace
}  // namespace ecs
