// Streaming-engine suite: simulate_stream with admission disabled must be
// BIT-IDENTICAL to simulate over the materialized instance — completions,
// stats, schedules, fault logs and trace streams — across policies x seeds
// x fault plans. On top of that: admission-control semantics (caps hold,
// refused jobs leave no recorded activity, validator and online watchdog
// stay green) and a 1M-job overload soak proving the working set stays
// flat at the admission cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/validate.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sched/factory.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

/// The streaming engine runs over the platform + outage calendar only.
Instance platform_of(const Instance& instance) {
  Instance base;
  base.platform = instance.platform;
  base.cloud_outages = instance.cloud_outages;
  return base;
}

struct Variant {
  SimResult result;
  std::vector<obs::TraceRecord> trace;
};

Variant run_materialized(const Instance& instance,
                         const std::string& policy_name,
                         const FaultPlan& faults) {
  const auto policy = make_policy(policy_name);
  EngineConfig config;
  config.faults = faults;
  obs::MemoryTraceSink sink;
  config.trace = &sink;
  Variant v;
  v.result = simulate(instance, *policy, config);
  v.trace = sink.records();
  return v;
}

Variant run_streaming(const Instance& instance,
                      const std::string& policy_name, const FaultPlan& faults,
                      const AdmissionConfig& admission = {}) {
  const auto policy = make_policy(policy_name);
  EngineConfig config;
  config.faults = faults;
  config.admission = admission;
  obs::MemoryTraceSink sink;
  config.trace = &sink;
  InstanceArrivalStream arrivals(instance);
  const Instance base = platform_of(instance);
  Variant v;
  v.result = simulate_stream(base, arrivals, *policy, config);
  v.trace = sink.records();
  return v;
}

void expect_same_run_record(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.uplink, b.uplink);
  EXPECT_EQ(a.downlink, b.downlink);
}

void expect_same_results(const Variant& stream, const Variant& mat) {
  // Completions: exact to the bit.
  ASSERT_EQ(stream.result.completions.size(), mat.result.completions.size());
  for (std::size_t i = 0; i < mat.result.completions.size(); ++i) {
    EXPECT_EQ(stream.result.completions[i], mat.result.completions[i])
        << "job " << i;
  }

  // Stats: every deterministic field.
  const SimStats& a = stream.result.stats;
  const SimStats& b = mat.result.stats;
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.fault_aborts, b.fault_aborts);
  EXPECT_EQ(a.message_losses, b.message_losses);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.uplink_retransmits, b.uplink_retransmits);
  EXPECT_EQ(a.downlink_retransmits, b.downlink_retransmits);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.peak_live, b.peak_live);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.sheds, b.sheds);
  EXPECT_EQ(a.max_stretch, b.max_stretch);

  // Fault logs: same realized fault trace.
  ASSERT_EQ(stream.result.fault_log.size(), mat.result.fault_log.size());
  for (std::size_t i = 0; i < mat.result.fault_log.size(); ++i) {
    EXPECT_EQ(stream.result.fault_log[i].kind, mat.result.fault_log[i].kind);
    EXPECT_EQ(stream.result.fault_log[i].job, mat.result.fault_log[i].job);
    EXPECT_EQ(stream.result.fault_log[i].time, mat.result.fault_log[i].time);
    EXPECT_EQ(stream.result.fault_log[i].cloud,
              mat.result.fault_log[i].cloud);
  }

  // Schedules: identical interval histories, job by job.
  ASSERT_EQ(stream.result.schedule.job_count(),
            mat.result.schedule.job_count());
  for (int id = 0; id < mat.result.schedule.job_count(); ++id) {
    expect_same_run_record(stream.result.schedule.job(id).final_run,
                           mat.result.schedule.job(id).final_run);
    ASSERT_EQ(stream.result.schedule.job(id).abandoned.size(),
              mat.result.schedule.job(id).abandoned.size());
    for (std::size_t r = 0; r < mat.result.schedule.job(id).abandoned.size();
         ++r) {
      expect_same_run_record(stream.result.schedule.job(id).abandoned[r],
                             mat.result.schedule.job(id).abandoned[r]);
    }
  }

  // Trace streams: record-for-record equal.
  ASSERT_EQ(stream.trace.size(), mat.trace.size());
  for (std::size_t i = 0; i < mat.trace.size(); ++i) {
    EXPECT_EQ(stream.trace[i], mat.trace[i]) << "record " << i;
  }
}

Instance equivalence_instance(int seed, FaultPlan* faults) {
  RandomInstanceConfig cfg;
  cfg.n = 150;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = seed % 2 == 0 ? 0.1 : 0.4;
  cfg.ccr = seed % 3 == 0 ? 5.0 : 1.0;
  Rng rng(7000 + seed);
  Instance instance = make_random_instance(cfg, rng);

  if (seed % 2 == 1) {
    OutageConfig outage_cfg;
    outage_cfg.fraction = 0.1;
    outage_cfg.mean_duration = 10.0;
    outage_cfg.horizon = 500.0;
    Rng outage_rng(8000 + seed);
    instance.cloud_outages =
        make_cloud_outages(cfg.cloud_count, outage_cfg, outage_rng);
  }
  if (seed % 3 != 0) {
    FaultConfig fault_cfg;
    fault_cfg.crash_rate = 0.002;
    fault_cfg.mean_repair = 20.0;
    fault_cfg.loss_rate = 0.005;
    fault_cfg.horizon = 500.0;
    Rng fault_rng(9000 + seed);
    *faults = make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
  }
  return instance;
}

class StreamingEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StreamingEquivalence, StreamMatchesMaterializedBitForBit) {
  const auto& [policy_name, seed] = GetParam();
  FaultPlan faults;
  const Instance instance = equivalence_instance(seed, &faults);
  const Variant mat = run_materialized(instance, policy_name, faults);
  const Variant stream = run_streaming(instance, policy_name, faults);
  expect_same_results(stream, mat);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesBySeeds, StreamingEquivalence,
    ::testing::Combine(::testing::Values("edge-only", "greedy", "srpt",
                                         "ssf-edf", "fcfs", "failover-srpt"),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(Streaming, SyntheticFamilyRunsAreDeterministic) {
  ArrivalConfig acfg;
  acfg.family = ArrivalFamily::kBursty;
  acfg.n = 400;
  acfg.rate = 0.5;
  acfg.seed = 11;
  acfg.shape.edge_count = 4;

  RandomInstanceConfig pcfg;
  pcfg.cloud_count = 3;
  pcfg.slow_edges = 2;
  pcfg.fast_edges = 2;
  Instance base;
  base.platform = make_random_platform(pcfg);

  SimStats stats[2];
  for (int round = 0; round < 2; ++round) {
    const auto arrivals = make_arrival_stream(acfg);
    const auto policy = make_policy("srpt");
    stats[round] =
        simulate_stream(base, *arrivals, *policy, EngineConfig{}).stats;
  }
  EXPECT_EQ(stats[0].events, stats[1].events);
  EXPECT_EQ(stats[0].completed, stats[1].completed);
  EXPECT_EQ(stats[0].peak_live, stats[1].peak_live);
  EXPECT_EQ(stats[0].max_stretch, stats[1].max_stretch);
  EXPECT_EQ(stats[0].completed, 400u);
}

// ------------------------------------------------------------- admission

/// A deliberately overloaded materialized instance (load >> capacity) so
/// admission decisions actually fire, while the schedule stays checkable
/// by the validator.
Instance overload_instance(int n = 300) {
  RandomInstanceConfig cfg;
  cfg.n = n;
  cfg.cloud_count = 2;
  cfg.slow_edges = 2;
  cfg.fast_edges = 1;
  cfg.load = 8.0;  // ~8x oversubscribed: sustained overload
  Rng rng(1234);
  return make_random_instance(cfg, rng);
}

std::vector<JobId> refused_ids(const SimResult& result) {
  std::vector<JobId> ids;
  for (const AdmissionRecord& rec : result.admission_log) {
    ids.push_back(rec.job);
  }
  return ids;
}

TEST(Admission, RejectNewestCapsTheLiveSet) {
  const Instance instance = overload_instance();
  AdmissionConfig admission;
  admission.max_live = 16;
  admission.rule = AdmissionRule::kRejectNewest;
  const Variant v =
      run_streaming(instance, "srpt", FaultPlan{}, admission);
  const SimStats& stats = v.result.stats;

  EXPECT_LE(stats.peak_live, 16u);
  EXPECT_GT(stats.rejections, 0u);
  EXPECT_EQ(stats.sheds, 0u);  // reject-newest never evicts residents
  EXPECT_EQ(stats.admitted + stats.rejections,
            static_cast<std::uint64_t>(instance.job_count()));
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(v.result.admission_log.size(), stats.rejections);

  // A refused job never completed and recorded no activity; the validator
  // checks the latter for every refused id.
  for (const AdmissionRecord& rec : v.result.admission_log) {
    EXPECT_FALSE(rec.shed);
    EXPECT_EQ(rec.reason, ReasonCode::kAdmissionQueueFull);
    EXPECT_EQ(v.result.completions[rec.job], -1.0);
  }
  const auto violations = validate_schedule(instance, v.result.schedule,
                                            FaultPlan{}, refused_ids(v.result));
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST(Admission, ShedInfeasibleEvictsHopelessResidents) {
  const Instance instance = overload_instance();
  AdmissionConfig admission;
  admission.rule = AdmissionRule::kShedInfeasible;
  admission.stretch_limit = 3.0;
  const Variant v =
      run_streaming(instance, "fcfs", FaultPlan{}, admission);
  const SimStats& stats = v.result.stats;

  EXPECT_GT(stats.sheds, 0u);
  EXPECT_EQ(stats.admitted,
            static_cast<std::uint64_t>(instance.job_count()));  // no caps set
  EXPECT_EQ(stats.completed + stats.sheds, stats.admitted);
  for (const AdmissionRecord& rec : v.result.admission_log) {
    EXPECT_TRUE(rec.shed);
    EXPECT_EQ(rec.reason, ReasonCode::kAdmissionDeadlineInfeasible);
    EXPECT_EQ(v.result.completions[rec.job], -1.0);
  }
  const auto violations = validate_schedule(instance, v.result.schedule,
                                            FaultPlan{}, refused_ids(v.result));
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST(Admission, RejectHopelessPrefersEvictingTheWorstResident) {
  const Instance instance = overload_instance();
  AdmissionConfig admission;
  admission.max_live = 8;
  admission.rule = AdmissionRule::kRejectHopeless;
  const Variant v =
      run_streaming(instance, "srpt", FaultPlan{}, admission);
  const SimStats& stats = v.result.stats;

  EXPECT_LE(stats.peak_live, 8u);
  // Under sustained overload the rule both evicts stale residents and
  // rejects arrivals whose own bound is no better.
  EXPECT_GT(stats.sheds, 0u);
  EXPECT_EQ(stats.admitted + stats.rejections,
            static_cast<std::uint64_t>(instance.job_count()));
  EXPECT_EQ(stats.completed + stats.sheds, stats.admitted);
  const auto violations = validate_schedule(instance, v.result.schedule,
                                            FaultPlan{}, refused_ids(v.result));
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST(Admission, MaterializedEngineHonorsAdmissionToo) {
  // Admission is a property of the engine, not of streaming: the
  // materialized path applies the same caps.
  const Instance instance = overload_instance();
  AdmissionConfig admission;
  admission.max_live = 16;
  const auto policy = make_policy("srpt");
  EngineConfig config;
  config.admission = admission;
  const SimResult result = simulate(instance, *policy, config);
  EXPECT_LE(result.stats.peak_live, 16u);
  EXPECT_GT(result.stats.rejections, 0u);
  EXPECT_EQ(result.stats.admitted + result.stats.rejections,
            static_cast<std::uint64_t>(instance.job_count()));
}

TEST(Admission, OnlineWatchdogStaysGreenWithRejections) {
  const Instance instance = overload_instance();
  AdmissionConfig admission;
  admission.max_live = 12;
  admission.rule = AdmissionRule::kRejectHopeless;

  const auto policy = make_policy("srpt");
  EngineConfig config;
  config.admission = admission;
  obs::InvariantWatchdog watchdog;
  config.watchdog = &watchdog;
  InstanceArrivalStream arrivals(instance);
  const Instance base = platform_of(instance);
  const SimResult result =
      simulate_stream(base, arrivals, *policy, config);

  EXPECT_GT(result.stats.rejections + result.stats.sheds, 0u);
  EXPECT_TRUE(watchdog.ok()) << [&] {
    std::ostringstream os;
    watchdog.report(os);
    return os.str();
  }();
}

// ---------------------------------------------------- adversarial churn

/// One enormous job released first, then a long train of tiny jobs that
/// each complete while it is still running. Completions therefore happen
/// maximally out of release order: id 0 outlives ids 1..n-1. The engine's
/// id -> slot map must track the COUNT of live ids — a map keyed on the id
/// span (everything from the oldest live id up) would hold ~n entries here
/// and the working set would grow linearly with the stream length.
Instance churn_instance(int n) {
  RandomInstanceConfig pcfg;
  pcfg.cloud_count = 2;
  pcfg.slow_edges = 1;
  pcfg.fast_edges = 1;
  Instance instance;
  instance.platform = make_random_platform(pcfg);

  Job big;
  big.id = 0;
  big.origin = 0;
  big.work = 1.0e5;  // outlives every small job below
  big.release = 0.0;
  instance.jobs.push_back(big);
  for (int i = 1; i < n; ++i) {
    Job small;
    small.id = i;
    small.origin = 1;
    small.work = 1.0;
    // Spaced far enough apart that each one is done (at any processor
    // speed of the platform) before the next arrives: the live set is the
    // big job plus at most a couple of small ones, forever.
    small.release = static_cast<Time>(i) * 25.0;
    instance.jobs.push_back(small);
  }
  return instance;
}

TEST(StreamingChurn, OutOfReleaseOrderCompletionsKeepTrackedSetFlat) {
  SimStats at[2];
  const int sizes[2] = {500, 5000};
  for (int round = 0; round < 2; ++round) {
    const Instance instance = churn_instance(sizes[round]);
    const auto policy = make_policy("srpt");
    EngineConfig config;
    config.record_schedule = false;
    config.record_completions = false;
    InstanceArrivalStream arrivals(instance);
    const Instance base = platform_of(instance);
    at[round] = simulate_stream(base, arrivals, *policy, config).stats;

    EXPECT_EQ(at[round].completed, static_cast<std::uint64_t>(sizes[round]));
    EXPECT_LE(at[round].peak_live, 4u) << "n = " << sizes[round];
    // The regression assertion: tracked ids stay within a retire-queue's
    // breadth of the live set, not of the stream.
    EXPECT_LE(at[round].peak_tracked, at[round].peak_live + 2)
        << "n = " << sizes[round];
  }
  // Flat means flat: 10x the stream length, identical high-water mark.
  EXPECT_EQ(at[0].peak_tracked, at[1].peak_tracked);
}

// ------------------------------------------------------------------ soak

TEST(StreamingSoak, MillionJobOverloadKeepsTheWorkingSetFlat) {
  // 1M Poisson arrivals at ~5x the platform's service rate, with faults,
  // admission and the online watchdog all on. Memory must be a function of
  // the admission cap, never of n: peak_live stays at the cap, and the
  // engine's slot table (schedule/completions recording off) never grows
  // past it.
  ArrivalConfig acfg;
  acfg.n = 1'000'000;
  acfg.family = ArrivalFamily::kPoisson;
  acfg.rate = 2.0;
  acfg.seed = 99;
  acfg.shape.edge_count = 4;

  RandomInstanceConfig pcfg;
  pcfg.cloud_count = 3;
  pcfg.slow_edges = 2;
  pcfg.fast_edges = 2;
  Instance base;
  base.platform = make_random_platform(pcfg);

  FaultConfig fault_cfg;
  fault_cfg.crash_rate = 0.0005;
  fault_cfg.mean_repair = 25.0;
  fault_cfg.loss_rate = 0.001;
  fault_cfg.horizon = 5000.0;
  Rng fault_rng(4321);

  EngineConfig config;
  config.record_schedule = false;
  config.record_completions = false;
  config.record_admission = false;
  config.faults = make_fault_plan(pcfg.cloud_count, fault_cfg, fault_rng);
  config.admission.max_live = 64;
  config.admission.rule = AdmissionRule::kRejectNewest;
  obs::InvariantWatchdog watchdog;
  config.watchdog = &watchdog;

  const auto arrivals = make_arrival_stream(acfg);
  const auto policy = make_policy("srpt");
  const SimResult result =
      simulate_stream(base, *arrivals, *policy, config);
  const SimStats& stats = result.stats;

  EXPECT_EQ(stats.admitted + stats.rejections, 1'000'000u);
  EXPECT_GT(stats.rejections, 0u);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_LE(stats.peak_live, 64u);
  EXPECT_GT(stats.peak_live, 0u);
  EXPECT_TRUE(watchdog.ok()) << watchdog.violation_count();
  // Nothing was recorded, so the result carriers must be empty.
  EXPECT_EQ(result.schedule.job_count(), 0);
  EXPECT_TRUE(result.completions.empty());
  EXPECT_TRUE(result.admission_log.empty());
}

}  // namespace
}  // namespace ecs
