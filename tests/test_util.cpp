// Tests for the utility layer (util/rng.hpp, util/stats.hpp, util/args.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ecs {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, ForkIndependence) {
  Rng base(42);
  Rng child1 = base.fork(1);
  Rng child2 = base.fork(2);
  EXPECT_NE(child1.seed(), child2.seed());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, DeriveSeedAvalanche) {
  // Adjacent tags must produce wildly different seeds.
  const std::uint64_t s1 = derive_seed(42, 0);
  const std::uint64_t s2 = derive_seed(42, 1);
  EXPECT_NE(s1, s2);
  EXPECT_GT(__builtin_popcountll(s1 ^ s2), 10);
}

TEST(RngTest, HashTagStable) {
  EXPECT_EQ(hash_tag("ccr=0.1"), hash_tag("ccr=0.1"));
  EXPECT_NE(hash_tag("ccr=0.1"), hash_tag("ccr=0.2"));
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, TruncatedNormalRespectsFloor) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.truncated_normal(1.0, 5.0, 0.25), 0.25);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(6.0, 1.5));
  EXPECT_NEAR(acc.mean(), 6.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.5, 0.05);
}

TEST(StatsTest, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);  // sample variance
}

TEST(StatsTest, AccumulatorMerge) {
  Accumulator a;
  Accumulator b;
  Accumulator all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(StatsTest, Percentiles) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(StatsTest, PercentileEmptyIsNaN) {
  // Release builds must not read out of bounds; empty in => NaN out.
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

TEST(StatsTest, PercentileRejectsBadQ) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 1.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, std::nan("")), std::invalid_argument);
}

TEST(StatsTest, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one = {7.0};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5, 4), "1.5");
  EXPECT_EQ(format_double(2.0, 4), "2");
  EXPECT_EQ(format_double(0.1251, 2), "0.13");
}

TEST(ArgsTest, ParsesKeyValueForms) {
  // Note: `--key value` is greedy, so a bare boolean flag followed by a
  // positional would consume it — positionals go first or flags use `=`.
  const char* argv[] = {"prog", "positional", "--n=100", "--load", "0.5",
                        "--flag"};
  const Args args = Args::parse(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("load", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgsTest, Fallbacks) {
  const char* argv[] = {"prog"};
  const Args args = Args::parse(1, argv);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_or("missing", "x"), "x");
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(ArgsTest, BooleanNegations) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=true"};
  const Args args = Args::parse(5, argv);
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

TEST(ArgsTest, Lists) {
  const char* argv[] = {"prog", "--ccr=0.1,1,10", "--n=100,200"};
  const Args args = Args::parse(3, argv);
  const auto ccrs = args.get_double_list("ccr", {});
  ASSERT_EQ(ccrs.size(), 3u);
  EXPECT_DOUBLE_EQ(ccrs[1], 1.0);
  const auto ns = args.get_int_list("n", {});
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[1], 200);
  const auto fallback = args.get_double_list("missing", {5.0});
  ASSERT_EQ(fallback.size(), 1u);
}

TEST(ArgsTest, RejectsMalformedNumbers) {
  // Every token here used to be silently read as 0 (or truncated): a typo'd
  // sweep flag would run the whole experiment with a bogus parameter.
  const char* argv[] = {"prog", "--n=abc", "--load=0.5x", "--m=10x"};
  const Args args = Args::parse(4, argv);
  EXPECT_THROW((void)args.get_int("n", 7), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("load", 1.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("m", 7), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("n", 1.0), std::invalid_argument);
}

TEST(ArgsTest, RejectsOutOfRangeNumbers) {
  const char* argv[] = {"prog", "--big=99999999999999999999", "--x=1e999"};
  const Args args = Args::parse(3, argv);
  EXPECT_THROW((void)args.get_int("big", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("x", 0.0), std::invalid_argument);
}

TEST(ArgsTest, BareFlagStillFallsBack) {
  // `--resume` followed by another flag parses as a valueless boolean; the
  // numeric accessors keep treating that as "not provided".
  const char* argv[] = {"prog", "--resume", "--n=3"};
  const Args args = Args::parse(3, argv);
  EXPECT_EQ(args.get_int("resume", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("resume", 1.5), 1.5);
}

TEST(ArgsTest, RejectsMalformedListSegments) {
  const char* argv[] = {"prog", "--ccr=0.1,oops,10", "--n=1,2x"};
  const Args args = Args::parse(3, argv);
  EXPECT_THROW((void)args.get_double_list("ccr", {}), std::invalid_argument);
  EXPECT_THROW((void)args.get_int_list("n", {}), std::invalid_argument);
}

TEST(ArgsTest, ListsSkipEmptySegments) {
  const char* argv[] = {"prog", "--ccr=0.1,,10,"};
  const Args args = Args::parse(2, argv);
  const auto ccrs = args.get_double_list("ccr", {});
  ASSERT_EQ(ccrs.size(), 2u);
  EXPECT_DOUBLE_EQ(ccrs[0], 0.1);
  EXPECT_DOUBLE_EQ(ccrs[1], 10.0);
}

TEST(ArgsTest, DoubleDashStopsParsing) {
  const char* argv[] = {"prog", "--a=1", "--", "--b=2"};
  const Args args = Args::parse(4, argv);
  EXPECT_TRUE(args.has("a"));
  EXPECT_FALSE(args.has("b"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "--b=2");
}

}  // namespace
}  // namespace ecs
