// Tests for the observability layer (obs/): the engine's
// zero-cost-when-disabled guarantee, the in-memory / JSONL / Perfetto trace
// sinks, and the metrics registry.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto_sink.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

Instance busy_instance() {
  RandomInstanceConfig cfg;
  cfg.n = 40;
  cfg.ccr = 1.0;
  cfg.load = 0.5;
  Rng rng(7);
  return make_random_instance(cfg, rng);
}

Instance one_cloud_job() {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 1.0, 1.5, 0.5}};
  return instance;
}

TEST(ObsEngine, TracedRunIsBitIdenticalToUntraced) {
  const Instance instance = busy_instance();
  const auto plain_policy = make_policy("srpt");
  const SimResult plain = simulate(instance, *plain_policy);

  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  EngineConfig config;
  config.trace = &sink;
  config.metrics = &registry;
  const auto traced_policy = make_policy("srpt");
  const SimResult traced = simulate(instance, *traced_policy, config);

  ASSERT_EQ(plain.completions.size(), traced.completions.size());
  for (std::size_t i = 0; i < plain.completions.size(); ++i) {
    // Exact equality on purpose: tracing must not perturb the arithmetic.
    EXPECT_EQ(plain.completions[i], traced.completions[i]) << "job " << i;
  }
  EXPECT_EQ(plain.stats.events, traced.stats.events);
  EXPECT_EQ(plain.stats.decisions, traced.stats.decisions);
  EXPECT_EQ(plain.stats.reassignments, traced.stats.reassignments);
  EXPECT_EQ(plain.stats.preemptions, traced.stats.preemptions);
  EXPECT_EQ(plain.stats.max_queue_depth, traced.stats.max_queue_depth);
  for (int i = 0; i < instance.job_count(); ++i) {
    EXPECT_EQ(plain.schedule.job(i).final_run.alloc,
              traced.schedule.job(i).final_run.alloc);
    EXPECT_EQ(plain.schedule.job(i).final_run.exec.measure(),
              traced.schedule.job(i).final_run.exec.measure());
  }
  EXPECT_TRUE(sink.ended());
  EXPECT_FALSE(sink.records().empty());
}

TEST(ObsEngine, SpansAndInstantsOfOneCloudJob) {
  const Instance instance = one_cloud_job();
  FixedPolicy policy({0}, {0.0});
  obs::MemoryTraceSink sink;
  EngineConfig config;
  config.trace = &sink;
  const SimResult result = simulate(instance, policy, config);
  // 1 (release) + 1.5 (up) + 2 (work at speed 1) + 0.5 (down).
  EXPECT_NEAR(result.completions[0], 5.0, 1e-9);

  EXPECT_EQ(sink.meta().policy, policy.name());
  EXPECT_EQ(sink.meta().edge_count, 1);
  EXPECT_EQ(sink.meta().cloud_count, 1);
  EXPECT_EQ(sink.meta().job_count, 1);
  ASSERT_TRUE(sink.ended());
  EXPECT_NEAR(sink.makespan(), 5.0, 1e-9);

  std::vector<obs::TraceRecord> spans;
  int releases = 0;
  int completions = 0;
  for (const obs::TraceRecord& rec : sink.records()) {
    if (rec.kind == obs::TraceKind::kSpan) spans.push_back(rec);
    if (rec.point == obs::TracePoint::kRelease) ++releases;
    if (rec.point == obs::TracePoint::kCompletion) {
      ++completions;
      // best time = min(edge 2/0.5, cloud 1.5+2+0.5) = 4; stretch = 4/4.
      EXPECT_NEAR(rec.value, 1.0, 1e-9);
    }
  }
  EXPECT_EQ(releases, 1);
  EXPECT_EQ(completions, 1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].point, obs::TracePoint::kUplink);
  EXPECT_NEAR(spans[0].begin, 1.0, 1e-9);
  EXPECT_NEAR(spans[0].end, 2.5, 1e-9);
  EXPECT_EQ(spans[1].point, obs::TracePoint::kExec);
  EXPECT_NEAR(spans[1].begin, 2.5, 1e-9);
  EXPECT_NEAR(spans[1].end, 4.5, 1e-9);
  EXPECT_EQ(spans[2].point, obs::TracePoint::kDownlink);
  EXPECT_NEAR(spans[2].begin, 4.5, 1e-9);
  EXPECT_NEAR(spans[2].end, 5.0, 1e-9);
  for (const obs::TraceRecord& span : spans) {
    EXPECT_EQ(span.job, 0);
    EXPECT_EQ(span.run, 0);
    EXPECT_EQ(span.alloc, 0);
    EXPECT_EQ(span.origin, 0);
  }
}

TEST(ObsJsonl, RoundTripsExactly) {
  const Instance instance = busy_instance();
  obs::MemoryTraceSink memory;
  std::ostringstream out;
  obs::JsonlTraceSink jsonl(out);
  obs::TeeTraceSink tee;
  tee.add(&memory);
  tee.add(&jsonl);
  EngineConfig config;
  config.trace = &tee;
  const auto policy = make_policy("ssf-edf");
  (void)simulate(instance, *policy, config);

  std::istringstream in(out.str());
  const obs::JsonlTrace parsed = obs::read_jsonl_trace(in);
  EXPECT_TRUE(parsed.complete);
  EXPECT_EQ(parsed.meta, memory.meta());
  EXPECT_EQ(parsed.makespan, memory.makespan());
  ASSERT_EQ(parsed.records.size(), memory.records().size());
  for (std::size_t i = 0; i < parsed.records.size(); ++i) {
    EXPECT_TRUE(parsed.records[i] == memory.records()[i]) << "record " << i;
  }
}

TEST(ObsJsonl, RejectsMalformedLines) {
  std::istringstream in("{\"type\":\"meta\",\"policy\":\"p\",\"edges\":1,"
                        "\"clouds\":1,\"jobs\":0}\nnot json\n");
  EXPECT_THROW((void)obs::read_jsonl_trace(in), std::runtime_error);
}

TEST(ObsPerfetto, ValidJsonMonotoneTracksAndFlowEvents) {
  const Instance instance = one_cloud_job();
  FixedPolicy policy({0}, {0.0});
  std::ostringstream out;
  obs::PerfettoTraceSink sink(out);
  EngineConfig config;
  config.trace = &sink;
  (void)simulate(instance, policy, config);

  const obs::json::Value root = obs::json::parse(out.str());
  const obs::json::Value& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::map<std::int64_t, double> last_start;  // per-track last "X" ts
  int slices = 0;
  int thread_names = 0;
  bool flow_start = false;
  bool flow_step = false;
  bool flow_end = false;
  for (const obs::json::Value& ev : events.array) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X") {
      ++slices;
      const std::int64_t tid = ev.at("tid").as_int();
      const double ts = ev.at("ts").as_number();
      const auto it = last_start.find(tid);
      if (it != last_start.end()) {
        EXPECT_GE(ts, it->second) << "track " << tid;
      }
      last_start[tid] = ts;
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
    } else if (ph == "M" &&
               ev.at("name").as_string() == "thread_name") {
      ++thread_names;
    } else if (ph == "s") {
      flow_start = true;
    } else if (ph == "t") {
      flow_step = true;
    } else if (ph == "f") {
      flow_end = true;
      EXPECT_EQ(ev.at("bp").as_string(), "e");
    }
  }
  // Comm spans appear on both ports: uplink x2 + exec + downlink x2.
  EXPECT_EQ(slices, 5);
  // "events" track + 3 tracks per edge + 3 per cloud.
  EXPECT_EQ(thread_names, 1 + 3 * 1 + 3 * 1);
  // The job's single cloud run chains uplink -> exec -> downlink.
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_step);
  EXPECT_TRUE(flow_end);
}

TEST(ObsMetrics, HistogramBucketMath) {
  obs::MetricsRegistry registry;
  const obs::MetricsRegistry::Id id = registry.histogram("h", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 8.0}) {
    registry.observe(id, v);
  }
  const obs::HistogramSnapshot snap = registry.histogram_value("h");
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite buckets + overflow
  EXPECT_EQ(snap.counts[0], 2u);      // v <= 1       : 0.5, 1.0
  EXPECT_EQ(snap.counts[1], 2u);      // 1 < v <= 2   : 1.5, 2.0
  EXPECT_EQ(snap.counts[2], 1u);      // 2 < v <= 4   : 3.0
  EXPECT_EQ(snap.counts[3], 1u);      // v > 4        : 8.0
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 16.0, 1e-12);
  // Re-registration returns the same instrument; malformed bounds throw.
  EXPECT_EQ(registry.histogram("h", {9.0}), id);
  EXPECT_THROW((void)registry.histogram("bad", {}), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("bad", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(ObsMetrics, CountersGaugesTimersAndJson) {
  obs::MetricsRegistry registry;
  registry.add(registry.counter("c"), 5);
  registry.add(registry.counter("c"), 2);
  const obs::MetricsRegistry::Id g = registry.gauge("g");
  registry.gauge_set(g, 2.5);
  registry.gauge_set(g, 1.5);
  registry.add_nanos(registry.timer("t"), 1'500'000'000ULL);
  registry.observe(registry.histogram("h", {1.0}), 0.5);

  EXPECT_EQ(registry.counter_value("c"), 7u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g").last, 1.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g").max, 2.5);
  EXPECT_DOUBLE_EQ(registry.timer_value("t").seconds, 1.5);
  EXPECT_EQ(registry.timer_value("t").count, 1u);
  EXPECT_THROW((void)registry.counter_value("missing"), std::out_of_range);

  std::ostringstream out;
  registry.write_json(out);
  const obs::json::Value root = obs::json::parse(out.str());
  EXPECT_EQ(root.at("counters").at("c").as_int(), 7);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("g").at("last").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("g").at("max").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(root.at("timers").at("t").at("seconds").as_number(), 1.5);
  EXPECT_EQ(root.at("histograms").at("h").at("count").as_int(), 1);
  ASSERT_TRUE(root.at("histograms").at("h").at("counts").is_array());
  EXPECT_EQ(root.at("histograms").at("h").at("counts").array.size(), 2u);
}

TEST(ObsMetrics, ScopeTimerIsNoopOnNullRegistry) {
  obs::MetricsRegistry registry;
  const obs::MetricsRegistry::Id id = registry.timer("t");
  { const obs::ScopeTimer timer(&registry, id); }
  EXPECT_EQ(registry.timer_value("t").count, 1u);
  { const obs::ScopeTimer none(nullptr, id); }
  EXPECT_EQ(registry.timer_value("t").count, 1u);
}

TEST(ObsJson, NonFiniteNumbersRoundTrip) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Lossless string policy (the default for our own formats).
  EXPECT_EQ(obs::json::number(nan), "null");
  EXPECT_EQ(obs::json::number(inf), "\"Infinity\"");
  EXPECT_EQ(obs::json::number(-inf), "\"-Infinity\"");
  // Clamp policy for plain-number consumers: saturated, never silently 0.
  EXPECT_EQ(obs::json::number(inf, obs::json::NonFinitePolicy::kClamp),
            "1e308");
  EXPECT_EQ(obs::json::number(-inf, obs::json::NonFinitePolicy::kClamp),
            "-1e308");
  EXPECT_EQ(obs::json::number(nan, obs::json::NonFinitePolicy::kClamp),
            "null");
  // number() -> parse -> to_double round-trips every class of value.
  for (const double v : {0.0, -1.5, 1e-300, 3.14159, inf, -inf}) {
    const obs::json::Value parsed = obs::json::parse(obs::json::number(v));
    EXPECT_EQ(obs::json::to_double(parsed), v);
  }
  EXPECT_TRUE(std::isnan(
      obs::json::to_double(obs::json::parse(obs::json::number(nan)))));
  EXPECT_THROW((void)obs::json::to_double(obs::json::parse("\"abc\"")),
               std::runtime_error);
}

TEST(ObsMetrics, SketchFamilyAndJson) {
  obs::MetricsRegistry registry;
  const obs::MetricsRegistry::Id id = registry.sketch("job.stretch.sketch");
  for (int i = 1; i <= 100; ++i) {
    registry.sketch_observe(id, static_cast<double>(i));
  }
  // Merging a worker-private sketch accumulates exactly.
  obs::QuantileSketch worker;
  for (int i = 101; i <= 200; ++i) worker.observe(static_cast<double>(i));
  registry.sketch_merge(id, worker);

  const obs::QuantileSketch snap = registry.sketch_value("job.stretch.sketch");
  EXPECT_EQ(snap.count(), 200u);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 200.0);
  EXPECT_NEAR(snap.quantile(0.5), 100.0, 100.0 * 2.0 * snap.alpha() + 1.0);
  // Re-registration returns the same instrument; alpha mismatch throws.
  EXPECT_EQ(registry.sketch("job.stretch.sketch"), id);
  EXPECT_THROW((void)registry.sketch_value("missing"), std::out_of_range);

  std::ostringstream out;
  registry.write_json(out);
  const obs::json::Value root = obs::json::parse(out.str());
  const obs::json::Value& s =
      root.at("sketches").at("job.stretch.sketch");
  EXPECT_EQ(s.at("count").as_int(), 200);
  EXPECT_DOUBLE_EQ(s.at("min").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(s.at("max").as_number(), 200.0);
  EXPECT_GT(s.at("p99").as_number(), s.at("p50").as_number());
}

TEST(ObsMetrics, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.add(registry.counter("engine.events"), 42);
  registry.gauge_set(registry.gauge("queue.depth"), 3.0);
  registry.add_nanos(registry.timer("decide"), 2'000'000'000ULL);
  const auto h = registry.histogram("job.stretch", {1.0, 2.0});
  registry.observe(h, 0.5);
  registry.observe(h, 1.5);
  registry.observe(h, 9.0);
  const auto sk = registry.sketch("stretch.sketch");
  for (int i = 1; i <= 10; ++i) {
    registry.sketch_observe(sk, static_cast<double>(i));
  }

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  // Names sanitized to the Prometheus charset, one TYPE line per family.
  EXPECT_NE(text.find("# TYPE engine_events counter"), std::string::npos);
  EXPECT_NE(text.find("engine_events 42"), std::string::npos);
  EXPECT_NE(text.find("queue_depth_last gauge"), std::string::npos);
  EXPECT_NE(text.find("decide_seconds_total 2"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == count.
  EXPECT_NE(text.find("job_stretch_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("job_stretch_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("job_stretch_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("job_stretch_count 3"), std::string::npos);
  // Sketches export as quantile summaries.
  EXPECT_NE(text.find("stretch_sketch{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stretch_sketch{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stretch_sketch_count 10"), std::string::npos);
}

TEST(ObsTrace, PointNamesRoundTrip) {
  for (int p = 0; p <= static_cast<int>(obs::TracePoint::kCloudUtilization);
       ++p) {
    const auto point = static_cast<obs::TracePoint>(p);
    EXPECT_EQ(obs::parse_trace_point(to_string(point)), point);
  }
  EXPECT_THROW((void)obs::parse_trace_point("nope"), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_trace_kind("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace ecs
