// Randomized differential tests for IntervalSet against a slow reference
// implementation (a boolean timeline at fine resolution). The IntervalSet
// is the foundation of schedule recording and validation, so its merge
// logic must be watertight.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/interval.hpp"
#include "util/rng.hpp"

namespace ecs {
namespace {

/// Slow reference: a bitmap over [0, kSpan) at kResolution cells per unit.
class ReferenceSet {
 public:
  static constexpr double kSpan = 100.0;
  static constexpr int kResolution = 10;  // cells per time unit

  void add(double begin, double end) {
    const int from = cell(begin);
    const int to = cell(end);
    for (int c = from; c < to; ++c) cells_[c] = true;
  }

  [[nodiscard]] double measure() const {
    int on = 0;
    for (bool c : cells_) on += c;
    return static_cast<double>(on) / kResolution;
  }

  [[nodiscard]] int component_count() const {
    int components = 0;
    bool prev = false;
    for (bool c : cells_) {
      if (c && !prev) ++components;
      prev = c;
    }
    return components;
  }

  [[nodiscard]] bool contains_cell(double t) const {
    // Point query: floor to the containing cell (cell() rounds, which is
    // only right for grid-aligned boundaries).
    const int c = static_cast<int>(t * kResolution);
    if (c < 0 || c >= static_cast<int>(cells_.size())) return false;
    return cells_[c];
  }

 private:
  [[nodiscard]] static int cell(double t) {
    return static_cast<int>(t * kResolution + 0.5);
  }
  std::array<bool, static_cast<int>(kSpan)* kResolution> cells_{};
};

class IntervalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalFuzz, MatchesReference) {
  Rng rng(GetParam());
  IntervalSet set;
  ReferenceSet ref;
  // Random grid-aligned insertions so the reference is exact.
  for (int step = 0; step < 200; ++step) {
    const double begin =
        static_cast<double>(rng.uniform_int(0, 980)) / 10.0;
    const double length =
        static_cast<double>(rng.uniform_int(0, 15)) / 10.0;
    set.add(begin, begin + length);
    ref.add(begin, begin + length);

    ASSERT_NEAR(set.measure(), ref.measure(), 1e-9) << "step " << step;
    ASSERT_EQ(static_cast<int>(set.size()), ref.component_count())
        << "step " << step;
  }
  // Point membership sampled over the grid.
  for (int probe = 0; probe < 500; ++probe) {
    const double t =
        static_cast<double>(rng.uniform_int(0, 999)) / 10.0 + 0.05;
    ASSERT_EQ(set.contains(t), ref.contains_cell(t)) << "t=" << t;
  }
  // Structural invariants: sorted, disjoint, non-empty members.
  for (std::size_t i = 0; i < set.intervals().size(); ++i) {
    const Interval& iv = set.intervals()[i];
    ASSERT_LT(iv.begin, iv.end);
    if (i > 0) {
      ASSERT_LT(set.intervals()[i - 1].end, iv.begin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(IntervalFuzzCross, UnionMatchesSequentialAdds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    IntervalSet a;
    IntervalSet b;
    IntervalSet sequential;
    for (int i = 0; i < 60; ++i) {
      const double begin = rng.uniform(0.0, 90.0);
      const double end = begin + rng.uniform(0.01, 5.0);
      if (i % 2 == 0) {
        a.add(begin, end);
      } else {
        b.add(begin, end);
      }
      sequential.add(begin, end);
    }
    IntervalSet merged = a;
    merged.add(b);
    EXPECT_NEAR(merged.measure(), sequential.measure(), 1e-9);
    EXPECT_EQ(merged.size(), sequential.size());
  }
}

}  // namespace
}  // namespace ecs
