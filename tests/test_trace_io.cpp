// Tests for instance (de)serialization (workloads/trace_io.hpp).
#include "workloads/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

Instance sample_instance() {
  RandomInstanceConfig cfg;
  cfg.n = 25;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 1;
  Rng rng(13);
  return make_random_instance(cfg, rng);
}

TEST(TraceIo, RoundTripExact) {
  const Instance original = sample_instance();
  std::stringstream buffer;
  save_instance(buffer, original);
  const Instance loaded = load_instance(buffer);
  EXPECT_EQ(loaded.platform, original.platform);
  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i], original.jobs[i]) << "job " << i;
  }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  buffer << "# a comment\n\nedges,0.5\n# another\nclouds,1\n"
         << "job,0,0,2.5,0,1,1\n";
  const Instance instance = load_instance(buffer);
  EXPECT_EQ(instance.platform.edge_count(), 1);
  EXPECT_EQ(instance.platform.cloud_count(), 1);
  ASSERT_EQ(instance.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(instance.jobs[0].work, 2.5);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream buffer;  // missing headers
    buffer << "job,0,0,1,0,0,0\n";
    EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer;
    buffer << "edges,0.5\nclouds,1\njob,0,0,not_a_number,0,0,0\n";
    EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer;
    buffer << "edges,0.5\nclouds,1\njob,0,0,1,0\n";  // too few fields
    EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer;
    buffer << "edges,0.5\nclouds,1\nmystery,1\n";
    EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer;  // invalid instance (origin out of range)
    buffer << "edges,0.5\nclouds,1\njob,0,7,1,0,0,0\n";
    EXPECT_THROW((void)load_instance(buffer), std::invalid_argument);
  }
}

TEST(TraceIo, ParseErrorsCarryLineContext) {
  {
    std::stringstream buffer;  // the corrupt record is on line 3
    buffer << "edges,0.5\nclouds,1\njob,0,0,not_a_number,0,0,0\n";
    try {
      (void)load_instance(buffer);
      FAIL() << "expected a parse failure";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 3"), std::string::npos) << what;
      EXPECT_NE(what.find("bad work"), std::string::npos) << what;
    }
  }
  {
    std::stringstream buffer;  // comments still count toward line numbers
    buffer << "# header\nedges,0.5\nclouds,1\nmystery,1\n";
    try {
      (void)load_instance(buffer);
      FAIL() << "expected a parse failure";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
          << e.what();
    }
  }
  {
    std::stringstream buffer;  // fault-plan loader gets the same context
    buffer << "fault,crash,0,1,2\nnot_a_fault,1\n";
    try {
      (void)load_fault_plan(buffer);
      FAIL() << "expected a parse failure";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
    }
  }
}

TEST(TraceIo, TruncatedStreamFailsLoudly) {
  // A stream that dies mid-read (badbit) must not parse as a clean EOF:
  // silently dropping the tail of an instance would corrupt experiments.
  bool threw = false;
  try {
    std::stringstream bad;
    bad << "edges,0.5\nclouds,1\n";
    bad.setstate(std::ios::badbit);  // simulated I/O error
    (void)load_instance(bad);
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("read error"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(threw);
}

TEST(TraceIo, FileRoundTrip) {
  const Instance original = sample_instance();
  const std::string path = "/tmp/ecs_trace_io_test.csv";
  save_instance_file(path, original);
  const Instance loaded = load_instance_file(path);
  EXPECT_EQ(loaded.platform, original.platform);
  EXPECT_EQ(loaded.jobs.size(), original.jobs.size());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_instance_file("/nonexistent/nope.csv"),
               std::runtime_error);
}

TEST(TraceIo, MetricsCsvHasOneRowPerJob) {
  const Instance instance = sample_instance();
  RunOptions options;
  options.validate = true;
  // run_policy with validation keeps the schedule internal; re-simulate
  // through the engine to get both schedule and metrics here.
  auto policy = make_policy("srpt");
  const SimResult sim = simulate(instance, *policy);
  const ScheduleMetrics metrics = compute_metrics(instance, sim.schedule);
  std::stringstream out;
  save_metrics_csv(out, instance, sim.schedule, metrics);
  std::string line;
  int lines = 0;
  while (std::getline(out, line)) ++lines;
  EXPECT_EQ(lines, 1 + instance.job_count());  // header + rows
}

}  // namespace
}  // namespace ecs
