// Mutation-fuzz tests for the schedule validator.
//
// The validator is the project's ground truth: benches trust it to reject
// anything that breaks the paper's model. These tests take *valid*
// engine-produced schedules and apply small corrupting mutations — each
// targeting one constraint family — and assert that the validator flags
// every mutant. A validator that silently accepts a corrupted schedule
// would let a buggy policy contribute garbage to a reported figure.
#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

struct Fixture {
  Instance instance;
  Schedule schedule;
};

Fixture make_valid_fixture(std::uint64_t seed) {
  RandomInstanceConfig cfg;
  cfg.n = 40;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = 0.4;  // enough contention for interesting structure
  Rng rng(seed);
  Fixture fx;
  fx.instance = make_random_instance(cfg, rng);
  const auto policy = make_policy("ssf-edf");
  fx.schedule = simulate(fx.instance, *policy).schedule;
  return fx;
}

/// Finds a job whose final run is on a cloud processor (with a real uplink)
/// or returns -1.
JobId find_cloud_job(const Fixture& fx) {
  for (int i = 0; i < fx.schedule.job_count(); ++i) {
    const RunRecord& run = fx.schedule.job(i).final_run;
    if (is_cloud_alloc(run.alloc) && !run.uplink.empty() &&
        !run.downlink.empty()) {
      return i;
    }
  }
  return -1;
}

JobId find_edge_job(const Fixture& fx) {
  for (int i = 0; i < fx.schedule.job_count(); ++i) {
    if (fx.schedule.job(i).final_run.alloc == kAllocEdge) return i;
  }
  return -1;
}

class ValidatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidatorFuzz, BaselineIsValid) {
  const Fixture fx = make_valid_fixture(GetParam());
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST_P(ValidatorFuzz, ShrinkingExecutionIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  const JobId victim = find_edge_job(fx);
  ASSERT_GE(victim, 0);
  RunRecord& run = fx.schedule.job(victim).final_run;
  // Remove a visible chunk from the execution.
  const Interval first = run.exec.intervals().front();
  IntervalSet shrunk;
  const double cut = 0.25 * (first.end - first.begin);
  shrunk.add(first.begin + cut, first.end);
  for (std::size_t i = 1; i < run.exec.intervals().size(); ++i) {
    shrunk.add(run.exec.intervals()[i]);
  }
  run.exec = shrunk;
  EXPECT_FALSE(is_valid_schedule(fx.instance, fx.schedule));
}

TEST_P(ValidatorFuzz, MovingUplinkAfterExecIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  const JobId victim = find_cloud_job(fx);
  if (victim < 0) GTEST_SKIP() << "no cloud job in this fixture";
  RunRecord& run = fx.schedule.job(victim).final_run;
  const double up_len = run.uplink.measure();
  const Time exec_end = *run.exec.max();
  run.uplink = IntervalSet{};
  run.uplink.add(exec_end + 1.0, exec_end + 1.0 + up_len);
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  bool precedence = false;
  for (const Violation& v : violations) {
    precedence |= v.kind == ViolationKind::kPrecedence;
  }
  EXPECT_TRUE(precedence);
}

TEST_P(ValidatorFuzz, DuplicatingExecOntoBusyProcessorIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  // Find two different jobs on the same cloud processor and shift one of
  // them onto the other's time.
  JobId a = -1;
  JobId b = -1;
  for (int i = 0; i < fx.schedule.job_count() && b < 0; ++i) {
    const RunRecord& run_i = fx.schedule.job(i).final_run;
    if (!is_cloud_alloc(run_i.alloc)) continue;
    for (int j = i + 1; j < fx.schedule.job_count(); ++j) {
      const RunRecord& run_j = fx.schedule.job(j).final_run;
      if (run_j.alloc == run_i.alloc) {
        a = i;
        b = j;
        break;
      }
    }
  }
  if (b < 0) GTEST_SKIP() << "no shared cloud processor in this fixture";
  RunRecord& run_a = fx.schedule.job(a).final_run;
  const RunRecord& run_b = fx.schedule.job(b).final_run;
  // Make a's execution overlap b's first execution interval.
  run_a.exec.add(run_b.exec.intervals().front());
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  bool conflict = false;
  for (const Violation& v : violations) {
    conflict |= v.kind == ViolationKind::kProcessorConflict ||
                v.kind == ViolationKind::kSelfOverlap ||
                v.kind == ViolationKind::kPrecedence;
  }
  EXPECT_TRUE(conflict);
}

TEST_P(ValidatorFuzz, ShiftingBeforeReleaseIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  // Pick the job with the latest release; shift its first activity to 0.
  JobId victim = 0;
  for (int i = 1; i < fx.instance.job_count(); ++i) {
    if (fx.instance.jobs[i].release >
        fx.instance.jobs[victim].release) {
      victim = i;
    }
  }
  if (fx.instance.jobs[victim].release <= 1.0) {
    GTEST_SKIP() << "no late-released job";
  }
  RunRecord& run = fx.schedule.job(victim).final_run;
  IntervalSet* first_set = !run.uplink.empty() ? &run.uplink : &run.exec;
  const Interval head = first_set->intervals().front();
  IntervalSet moved;
  moved.add(0.0, head.length());
  for (std::size_t i = 1; i < first_set->intervals().size(); ++i) {
    moved.add(first_set->intervals()[i]);
  }
  *first_set = moved;
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  bool before_release = false;
  for (const Violation& v : violations) {
    before_release |= v.kind == ViolationKind::kBeforeRelease;
  }
  EXPECT_TRUE(before_release);
}

TEST_P(ValidatorFuzz, RetargetingCloudIndexIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  const JobId victim = find_cloud_job(fx);
  if (victim < 0) GTEST_SKIP() << "no cloud job in this fixture";
  fx.schedule.job(victim).final_run.alloc =
      fx.instance.platform.cloud_count() + 3;
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  bool bad_alloc = false;
  for (const Violation& v : violations) {
    bad_alloc |= v.kind == ViolationKind::kBadAllocation;
  }
  EXPECT_TRUE(bad_alloc);
}

TEST_P(ValidatorFuzz, ErasingJobEntirelyIsCaught) {
  Fixture fx = make_valid_fixture(GetParam());
  fx.schedule.job(0).final_run = RunRecord{};
  fx.schedule.job(0).abandoned.clear();
  const auto violations = validate_schedule(fx.instance, fx.schedule);
  bool unallocated = false;
  for (const Violation& v : violations) {
    unallocated |= v.kind == ViolationKind::kUnallocated;
  }
  EXPECT_TRUE(unallocated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace ecs
