// Tests for the SoA state-pool building blocks (sim/soa.hpp). The IdMap is
// the streaming engine's O(peak_live) memory claim made concrete: its
// capacity must track the number of SIMULTANEOUSLY live ids, never their
// numeric span — the old dense window map grew with (max id - min live id),
// which a single long-running job under churn blows up to O(n). The fuzz
// suites drive insert/erase/find against std::unordered_map as the oracle.
#include "sim/soa.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace ecs {
namespace {

TEST(IdMap, FindOnEmptyAndAfterClear) {
  soa::IdMap map;
  EXPECT_EQ(map.find(0), soa::IdMap::kAbsent);
  EXPECT_EQ(map.size(), 0u);
  map.insert(7, 3);
  EXPECT_EQ(map.find(7), 3);
  map.clear();
  EXPECT_EQ(map.find(7), soa::IdMap::kAbsent);
  EXPECT_EQ(map.size(), 0u);
}

TEST(IdMap, FuzzAgainstUnorderedMapOracle) {
  soa::IdMap map;
  std::unordered_map<JobId, std::int32_t> oracle;
  Rng rng(2024);
  JobId next_id = 0;
  std::vector<JobId> live;
  for (int step = 0; step < 200'000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (live.empty() || roll < 0.5) {
      const JobId id = next_id++;
      const auto slot = static_cast<std::int32_t>(id % 97);
      map.insert(id, slot);
      oracle.emplace(id, slot);
      live.push_back(id);
    } else {
      // Erase a uniformly random live id — NOT fifo order, so the probe
      // chains see holes in arbitrary positions (the backward-shift
      // deletion's hard case).
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(live.size()) - 0.001));
      const JobId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      map.erase(id);
      oracle.erase(id);
    }
    ASSERT_EQ(map.size(), oracle.size()) << "step " << step;
    // Point probes: a handful of present and absent keys every step.
    for (int probe = 0; probe < 4; ++probe) {
      const JobId id = static_cast<JobId>(
          rng.uniform(0.0, static_cast<double>(next_id) + 10.0));
      const auto it = oracle.find(id);
      ASSERT_EQ(map.find(id),
                it == oracle.end() ? soa::IdMap::kAbsent : it->second)
          << "step " << step << " id " << id;
    }
  }
}

TEST(IdMap, CapacityTracksLiveCountNotIdSpan) {
  // Sliding-window churn: one insert + one erase per step keeps exactly
  // kWindow ids live while their numeric values march to 1e6. The dense
  // window map this replaced would hold ~span entries whenever any old id
  // stayed live; the hash map must stay at the capacity a kWindow-sized
  // set needs, forever.
  constexpr int kWindow = 48;
  soa::IdMap map;
  for (JobId id = 0; id < kWindow; ++id) {
    map.insert(id, static_cast<std::int32_t>(id));
  }
  // Warm up past the first few churn steps (insert-before-erase peaks at
  // kWindow + 1 occupancy, which may cross the load factor exactly once),
  // then the capacity must hold for the remaining ~1M steps.
  for (JobId id = kWindow; id < kWindow + 256; ++id) {
    map.insert(id, static_cast<std::int32_t>(id % kWindow));
    map.erase(id - kWindow);
  }
  const std::size_t settled = map.capacity();
  EXPECT_LE(settled, 256u);  // O(window), nowhere near the id span
  for (JobId id = kWindow + 256; id < 1'000'000; ++id) {
    map.insert(id, static_cast<std::int32_t>(id % kWindow));
    map.erase(id - kWindow);
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kWindow));
  EXPECT_EQ(map.capacity(), settled);
  // And the survivors are all still findable at their latest slots.
  for (JobId id = 1'000'000 - kWindow; id < 1'000'000; ++id) {
    EXPECT_EQ(map.find(id), static_cast<std::int32_t>(id % kWindow));
  }
}

TEST(IdMap, AdversarialColliderIdsStillBehave) {
  // Ids a power-of-two stride apart defeat a masked identity hash; the
  // SplitMix64 mix must spread them. Correctness (not speed) is what the
  // oracle checks here — every probe chain with collisions still resolves.
  soa::IdMap map;
  std::unordered_map<JobId, std::int32_t> oracle;
  std::vector<JobId> ids;
  for (JobId i = 0; i < 512; ++i) ids.push_back(i * 4096);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    map.insert(ids[i], static_cast<std::int32_t>(i));
    oracle.emplace(ids[i], static_cast<std::int32_t>(i));
  }
  // Erase every third, then re-probe everything.
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    map.erase(ids[i]);
    oracle.erase(ids[i]);
  }
  for (const JobId id : ids) {
    const auto it = oracle.find(id);
    EXPECT_EQ(map.find(id),
              it == oracle.end() ? soa::IdMap::kAbsent : it->second);
  }
  EXPECT_EQ(map.size(), oracle.size());
}

TEST(LiveIndex, SwapEraseKeepsDenseIterationConsistent) {
  soa::LiveIndex live;
  live.reset(8);
  live.insert(10, 0);
  live.insert(11, 3);
  live.insert(12, 5);
  ASSERT_EQ(live.size(), 3u);

  // Erase the middle slot: the last entry swaps into its place.
  live.erase(3);
  std::set<JobId> seen;
  for (const soa::LiveIndex::Entry& e : live) {
    seen.insert(e.id);
    EXPECT_TRUE(e.slot == 0 || e.slot == 5);
  }
  EXPECT_EQ(seen, (std::set<JobId>{10, 12}));

  // Slot 3 can be reused for a new id after the erase.
  live.insert(13, 3);
  EXPECT_EQ(live.size(), 3u);
  seen.clear();
  for (const soa::LiveIndex::Entry& e : live) seen.insert(e.id);
  EXPECT_EQ(seen, (std::set<JobId>{10, 12, 13}));

  live.erase(0);
  live.erase(5);
  live.erase(3);
  EXPECT_TRUE(live.empty());
}

TEST(LiveIndex, GrowExtendsSlotRange) {
  soa::LiveIndex live;
  live.reset(1);
  live.insert(0, 0);
  live.grow();  // streaming pool grew a slot
  live.insert(1, 1);
  EXPECT_EQ(live.size(), 2u);
  live.erase(0);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live.begin()->id, 1);
  EXPECT_EQ(live.begin()->slot, 1);
}

}  // namespace
}  // namespace ecs
