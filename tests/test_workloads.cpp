// Tests for the workload generators (workloads/random_instances.hpp,
// workloads/kang_instances.hpp, workloads/load.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/platform.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/kang_instances.hpp"
#include "workloads/load.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

TEST(Load, HorizonFormula) {
  // H = total work / (load * aggregate speed).
  EXPECT_DOUBLE_EQ(release_horizon(100.0, 26.0, 0.05), 100.0 / 1.3);
  EXPECT_DOUBLE_EQ(release_horizon(100.0, 26.0, 2.0), 100.0 / 52.0);
  EXPECT_THROW((void)release_horizon(100.0, 26.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)release_horizon(100.0, 0.0, 0.5),
               std::invalid_argument);
}

TEST(Load, ReleaseDatesWithinHorizon) {
  Rng rng(5);
  std::vector<Job> jobs(200);
  for (int i = 0; i < 200; ++i) jobs[i] = Job{i, 0, 1.0, 0.0, 0.0, 0.0};
  assign_release_dates(jobs, 50.0, rng);
  for (const Job& job : jobs) {
    EXPECT_GE(job.release, 0.0);
    EXPECT_LE(job.release, 50.0);
  }
}

TEST(RandomInstances, PaperPlatformShape) {
  const RandomInstanceConfig cfg;
  const Platform platform = make_random_platform(cfg);
  EXPECT_EQ(platform.edge_count(), 20);
  EXPECT_EQ(platform.cloud_count(), 20);
  int slow = 0;
  int fast = 0;
  for (double s : platform.edge_speeds()) {
    if (s == 0.1) ++slow;
    if (s == 0.5) ++fast;
  }
  EXPECT_EQ(slow, 10);
  EXPECT_EQ(fast, 10);
  EXPECT_DOUBLE_EQ(platform.total_speed(), 26.0);
}

TEST(RandomInstances, DeterministicGivenSeed) {
  RandomInstanceConfig cfg;
  cfg.n = 50;
  Rng a(123);
  Rng b(123);
  const Instance ia = make_random_instance(cfg, a);
  const Instance ib = make_random_instance(cfg, b);
  ASSERT_EQ(ia.jobs.size(), ib.jobs.size());
  for (std::size_t i = 0; i < ia.jobs.size(); ++i) {
    EXPECT_EQ(ia.jobs[i], ib.jobs[i]);
  }
}

TEST(RandomInstances, DifferentSeedsDiffer) {
  RandomInstanceConfig cfg;
  cfg.n = 50;
  Rng a(1);
  Rng b(2);
  const Instance ia = make_random_instance(cfg, a);
  const Instance ib = make_random_instance(cfg, b);
  bool any_different = false;
  for (std::size_t i = 0; i < ia.jobs.size(); ++i) {
    any_different |= !(ia.jobs[i] == ib.jobs[i]);
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomInstances, CcrControlsCommunicationRatio) {
  for (double ccr : {0.1, 1.0, 10.0}) {
    RandomInstanceConfig cfg;
    cfg.n = 4000;
    cfg.ccr = ccr;
    Rng rng(7);
    const Instance instance = make_random_instance(cfg, rng);
    double total_work = 0.0;
    double total_up = 0.0;
    double total_down = 0.0;
    for (const Job& job : instance.jobs) {
      total_work += job.work;
      total_up += job.up;
      total_down += job.down;
      EXPECT_GE(job.work, cfg.work_min);
      EXPECT_LE(job.work, cfg.work_max);
    }
    // E[up]/E[w] == E[dn]/E[w] == CCR, within sampling noise.
    EXPECT_NEAR(total_up / total_work, ccr, 0.05 * ccr);
    EXPECT_NEAR(total_down / total_work, ccr, 0.05 * ccr);
  }
}

TEST(RandomInstances, LoadShiftsHorizon) {
  RandomInstanceConfig cfg;
  cfg.n = 2000;
  cfg.load = 0.05;
  Rng a(3);
  const Instance light = make_random_instance(cfg, a);
  cfg.load = 0.5;
  Rng b(3);
  const Instance heavy = make_random_instance(cfg, b);
  const auto max_release = [](const Instance& instance) {
    double latest = 0.0;
    for (const Job& job : instance.jobs) {
      latest = std::max(latest, job.release);
    }
    return latest;
  };
  // Ten times the load compresses the horizon roughly tenfold.
  EXPECT_NEAR(max_release(light) / max_release(heavy), 10.0, 1.0);
}

TEST(RandomInstances, ValidatesAgainstModel) {
  RandomInstanceConfig cfg;
  cfg.n = 100;
  Rng rng(9);
  const Instance instance = make_random_instance(cfg, rng);
  EXPECT_TRUE(validate_instance(instance).empty());
}

TEST(RandomInstances, RejectsBadConfig) {
  Rng rng(1);
  RandomInstanceConfig bad;
  bad.n = 0;
  EXPECT_THROW((void)make_random_instance(bad, rng), std::invalid_argument);
  RandomInstanceConfig bad_ccr;
  bad_ccr.ccr = 0.0;
  EXPECT_THROW((void)make_random_instance(bad_ccr, rng),
               std::invalid_argument);
  RandomInstanceConfig bad_work;
  bad_work.work_min = 5.0;
  bad_work.work_max = 1.0;
  EXPECT_THROW((void)make_random_instance(bad_work, rng),
               std::invalid_argument);
}

TEST(KangInstances, ProfileParameters) {
  const KangInstanceConfig cfg;
  EXPECT_DOUBLE_EQ(channel_up_mean(cfg, ChannelType::kWifi), 95.0);
  EXPECT_DOUBLE_EQ(channel_up_mean(cfg, ChannelType::kLte), 180.0);
  EXPECT_DOUBLE_EQ(channel_up_mean(cfg, ChannelType::k3g), 870.0);
  EXPECT_DOUBLE_EQ(compute_speed(cfg, ComputeType::kGpu), 6.0 / 11.0);
  EXPECT_DOUBLE_EQ(compute_speed(cfg, ComputeType::kCpu), 6.0 / 37.0);
}

TEST(KangInstances, CyclingProfilesAreBalanced) {
  KangInstanceConfig cfg;
  cfg.edge_count = 12;  // two full cycles of 6 combinations
  Rng rng(1);
  const auto profiles = make_kang_profiles(cfg, rng);
  int gpu = 0;
  int wifi = 0;
  for (const KangEdgeProfile& p : profiles) {
    gpu += p.compute == ComputeType::kGpu;
    wifi += p.channel == ChannelType::kWifi;
  }
  EXPECT_EQ(gpu, 6);
  EXPECT_EQ(wifi, 4);
}

TEST(KangInstances, DownlinkIsZeroAndUplinkMatchesChannel) {
  KangInstanceConfig cfg;
  cfg.n = 3000;
  cfg.edge_count = 6;
  Rng rng(4);
  const Instance instance = make_kang_instance(cfg, rng);
  Rng rng2(4);
  const auto profiles = make_kang_profiles(cfg, rng2);
  std::vector<Accumulator> up_by_edge(cfg.edge_count);
  Accumulator work;
  for (const Job& job : instance.jobs) {
    EXPECT_DOUBLE_EQ(job.down, 0.0);
    EXPECT_GT(job.work, 0.0);
    EXPECT_GT(job.up, 0.0);
    up_by_edge[job.origin].add(job.up);
    work.add(job.work);
  }
  EXPECT_NEAR(work.mean(), cfg.exec_mean, 0.15);
  for (EdgeId j = 0; j < cfg.edge_count; ++j) {
    if (up_by_edge[j].count() < 100) continue;  // not enough samples
    const double expected = channel_up_mean(cfg, profiles[j].channel);
    EXPECT_NEAR(up_by_edge[j].mean() / expected, 1.0, 0.15) << "edge " << j;
  }
}

TEST(KangInstances, SpeedsMatchComputeType) {
  KangInstanceConfig cfg;
  cfg.edge_count = 6;
  Rng rng(4);
  const Instance instance = make_kang_instance(cfg, rng);
  Rng rng2(4);
  const auto profiles = make_kang_profiles(cfg, rng2);
  for (EdgeId j = 0; j < cfg.edge_count; ++j) {
    EXPECT_DOUBLE_EQ(instance.platform.edge_speed(j),
                     compute_speed(cfg, profiles[j].compute));
  }
}

TEST(KangInstances, RandomizedProfilesStillDeterministic) {
  KangInstanceConfig cfg;
  cfg.edge_count = 30;
  cfg.randomize_profiles = true;
  Rng a(8);
  Rng b(8);
  const auto pa = make_kang_profiles(cfg, a);
  const auto pb = make_kang_profiles(cfg, b);
  for (int j = 0; j < cfg.edge_count; ++j) {
    EXPECT_EQ(static_cast<int>(pa[j].compute),
              static_cast<int>(pb[j].compute));
    EXPECT_EQ(static_cast<int>(pa[j].channel),
              static_cast<int>(pb[j].channel));
  }
}

TEST(Load, PoissonKeepsMeanRate) {
  Rng rng(6);
  std::vector<Job> jobs(4000);
  for (int i = 0; i < 4000; ++i) jobs[i] = Job{i, 0, 1.0, 0.0, 0.0, 0.0};
  assign_release_dates(jobs, 1000.0, ReleaseProcess::kPoisson, rng);
  // Arrivals are sorted and the last lands near the horizon.
  double prev = 0.0;
  for (const Job& job : jobs) {
    EXPECT_GE(job.release, prev);
    prev = job.release;
  }
  EXPECT_NEAR(prev, 1000.0, 120.0);  // ~3 sigma of the Poisson sum
}

TEST(Load, BurstyProducesClusters) {
  Rng rng(6);
  std::vector<Job> jobs(400);
  for (int i = 0; i < 400; ++i) jobs[i] = Job{i, 0, 1.0, 0.0, 0.0, 0.0};
  assign_release_dates(jobs, 2000.0, ReleaseProcess::kBursty, rng);
  // Many consecutive pairs land within one time unit (intra-burst), and
  // some gaps are large (inter-burst).
  int tight = 0;
  int wide = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = std::abs(jobs[i].release - jobs[i - 1].release);
    tight += gap <= 1.0;
    wide += gap > 10.0;
  }
  EXPECT_GT(tight, 300);
  EXPECT_GT(wide, 20);
}

TEST(Load, ProcessesShareMeanHorizon) {
  // All three processes target the same mean arrival rate: the mean
  // release dates agree within sampling noise.
  for (const ReleaseProcess process :
       {ReleaseProcess::kUniform, ReleaseProcess::kPoisson,
        ReleaseProcess::kBursty}) {
    Rng rng(9);
    std::vector<Job> jobs(5000);
    for (int i = 0; i < 5000; ++i) jobs[i] = Job{i, 0, 1.0, 0.0, 0.0, 0.0};
    assign_release_dates(jobs, 1000.0, process, rng);
    double total = 0.0;
    for (const Job& job : jobs) total += job.release;
    EXPECT_NEAR(total / 5000.0, 500.0, 60.0)
        << static_cast<int>(process);
  }
}

TEST(KangInstances, ValidatesAgainstModel) {
  KangInstanceConfig cfg;
  cfg.n = 100;
  Rng rng(2);
  const Instance instance = make_kang_instance(cfg, rng);
  EXPECT_TRUE(validate_instance(instance).empty());
}

}  // namespace
}  // namespace ecs
