// Tests for schedule rendering and JSON export (exp/gantt.hpp).
#include "exp/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

Instance small_instance() {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0},   // edge
                   {1, 0, 2.0, 0.0, 1.0, 1.0}};  // cloud
  return instance;
}

SimResult run(const Instance& instance) {
  FixedPolicy policy({kAllocEdge, 0}, {0.0, 1.0});
  return simulate(instance, policy);
}

TEST(Gantt, ContainsLanesAndGlyphs) {
  const Instance instance = small_instance();
  const SimResult sim = run(instance);
  const std::string chart = render_gantt(instance, sim.schedule);
  EXPECT_NE(chart.find("edge 0 cpu"), std::string::npos);
  EXPECT_NE(chart.find("edge 0 send"), std::string::npos);
  EXPECT_NE(chart.find("cloud 0 cpu"), std::string::npos);
  EXPECT_NE(chart.find('0'), std::string::npos);  // J0 glyph
  EXPECT_NE(chart.find('1'), std::string::npos);  // J1 glyph
}

TEST(Gantt, CommLanesOptional) {
  const Instance instance = small_instance();
  const SimResult sim = run(instance);
  GanttOptions options;
  options.show_comm = false;
  const std::string chart = render_gantt(instance, sim.schedule, options);
  EXPECT_EQ(chart.find("edge 0 send"), std::string::npos);
}

TEST(Gantt, WidthControlsLineLength) {
  const Instance instance = small_instance();
  const SimResult sim = run(instance);
  GanttOptions options;
  options.width = 40;
  const std::string chart = render_gantt(instance, sim.schedule, options);
  std::stringstream ss(chart);
  std::string line;
  std::getline(ss, line);  // header
  std::getline(ss, line);  // first lane
  // label(12) + " |" + cells(40) + "|"
  EXPECT_EQ(line.size(), 12u + 2u + 40u + 1u);
}

TEST(Gantt, OutagesRenderedAsHash) {
  Instance instance = small_instance();
  instance.cloud_outages.resize(1);
  instance.cloud_outages[0].add(100.0, 200.0);  // after the schedule: keeps
                                                // the run itself legal
  const SimResult sim = run(instance);
  // Extend horizon by painting: outage beyond makespan is clipped into the
  // last column; just check rendering does not crash and includes '#'
  // when the outage overlaps the horizon.
  Instance overlapping = small_instance();
  overlapping.cloud_outages.resize(1);
  overlapping.cloud_outages[0].add(4.5, 5.0);
  FixedPolicy policy({kAllocEdge, 0}, {0.0, 1.0});
  const SimResult sim2 = simulate(overlapping, policy);
  require_valid_schedule(overlapping, sim2.schedule);
  const std::string chart = render_gantt(overlapping, sim2.schedule);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Gantt, AbandonedRunsLowercase) {
  // Job 10 maps to glyph 'A' (id 10); abandoned activity uses 'a'.
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs.reserve(11);
  for (int i = 0; i < 11; ++i) {
    instance.jobs.push_back(Job{i, 0, 0.5, 0.0, 0.0, 0.0});
  }
  instance.jobs[10] = Job{10, 0, 4.0, 0.0, 1.0, 1.0};

  class MoveJob10 final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "Move10"; }
    void decide(const SimView& view, const std::vector<Event>& events,
                std::vector<Directive>& out) override {
      (void)events;
      for (const JobState& s : view.states()) {
        if (!s.live()) continue;
        if (s.job.id == 10) {
          // Start on the cloud, flee to the edge after t = 2.
          out.push_back(Directive{10, view.now() >= 2.0 ? kAllocEdge : 0,
                                  0.0});
        } else {
          out.push_back(Directive{s.job.id, kAllocEdge,
                                  1.0 + s.job.id});
        }
      }
    }
  };
  MoveJob10 policy;
  const SimResult sim = simulate(instance, policy);
  ASSERT_FALSE(sim.schedule.job(10).abandoned.empty());
  const std::string chart = render_gantt(instance, sim.schedule);
  EXPECT_NE(chart.find('a'), std::string::npos);  // abandoned cloud run
  EXPECT_NE(chart.find('A'), std::string::npos);  // final edge run
}

TEST(GanttJson, WellFormedAndComplete) {
  const Instance instance = small_instance();
  const SimResult sim = run(instance);
  const ScheduleMetrics metrics = compute_metrics(instance, sim.schedule);
  std::stringstream out;
  write_schedule_json(out, instance, sim.schedule, metrics);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"max_stretch\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc\":\"edge\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc\":0"), std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace ecs
