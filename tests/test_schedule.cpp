// Tests for the schedule representation (core/schedule.hpp).
#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

TEST(RunRecord, CompletionEdge) {
  RunRecord run;
  run.alloc = kAllocEdge;
  EXPECT_FALSE(run.completion().has_value());
  run.exec.add(0.0, 2.0);
  run.exec.add(3.0, 4.0);
  ASSERT_TRUE(run.completion().has_value());
  EXPECT_DOUBLE_EQ(*run.completion(), 4.0);
}

TEST(RunRecord, CompletionCloudWithDownlink) {
  RunRecord run;
  run.alloc = 0;
  run.uplink.add(0.0, 1.0);
  run.exec.add(1.0, 3.0);
  run.downlink.add(3.0, 4.0);
  ASSERT_TRUE(run.completion().has_value());
  EXPECT_DOUBLE_EQ(*run.completion(), 4.0);
}

TEST(RunRecord, CompletionCloudZeroDownlink) {
  RunRecord run;
  run.alloc = 2;
  run.uplink.add(0.0, 1.0);
  run.exec.add(1.0, 3.0);
  ASSERT_TRUE(run.completion().has_value());
  EXPECT_DOUBLE_EQ(*run.completion(), 3.0);
}

TEST(RunRecord, UnassignedHasNoCompletion) {
  EXPECT_FALSE(RunRecord{}.completion().has_value());
}

TEST(Schedule, MakespanRequiresAllComplete) {
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 2.0);
  EXPECT_FALSE(schedule.makespan().has_value());  // job 1 incomplete
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(1.0, 5.0);
  ASSERT_TRUE(schedule.makespan().has_value());
  EXPECT_DOUBLE_EQ(*schedule.makespan(), 5.0);
}

TEST(Schedule, AllocPredicates) {
  EXPECT_TRUE(is_cloud_alloc(0));
  EXPECT_TRUE(is_cloud_alloc(7));
  EXPECT_FALSE(is_cloud_alloc(kAllocEdge));
  EXPECT_FALSE(is_cloud_alloc(kAllocUnassigned));
}

TEST(Schedule, ToStringMentionsAbandonedRuns) {
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 1.0);
  RunRecord abandoned;
  abandoned.alloc = 0;
  abandoned.uplink.add(0.0, 0.5);
  schedule.job(0).abandoned.push_back(abandoned);
  const std::string dump = to_string(schedule);
  EXPECT_NE(dump.find("abandoned"), std::string::npos);
}

}  // namespace
}  // namespace ecs
