// Tests for the NP-hardness gadget builders (workloads/reductions.hpp,
// paper section IV). The reductions are verified in both directions on
// small instances: YES-instances achieve the target stretch (checked with
// the exact MMSH solver), NO-instances cannot.
#include "workloads/reductions.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "sched/offline/brute_force.hpp"

namespace ecs {
namespace {

TEST(TwoPartitionEq, SolverOnTinyInstances) {
  EXPECT_TRUE(has_two_partition_eq({1, 1}));
  EXPECT_TRUE(has_two_partition_eq({1, 2, 2, 1}));
  EXPECT_TRUE(has_two_partition_eq({3, 1, 2, 2}));
  EXPECT_FALSE(has_two_partition_eq({1, 3}));      // unequal halves
  EXPECT_FALSE(has_two_partition_eq({1, 1, 1}));   // odd size
  EXPECT_FALSE(has_two_partition_eq({5, 1, 1, 1}));  // sum balances nowhere
}

TEST(TwoPartitionEq, GadgetOnYesInstance) {
  // a = {1, 2, 2, 1}: n = 2, S = 3. The gadget has 2n + 2 = 6 jobs; a
  // balanced partition exists, so MMSH on 2 machines achieves exactly
  // (n^2 + n + 2)/(n + 1) = 8/3.
  const std::vector<std::int64_t> a = {1, 2, 2, 1};
  ASSERT_TRUE(has_two_partition_eq(a));
  const MmshGadget gadget = mmsh_from_two_partition_eq(a);
  EXPECT_EQ(gadget.machines, 2);
  ASSERT_EQ(gadget.works.size(), 6u);
  EXPECT_NEAR(gadget.target_stretch, 8.0 / 3.0, 1e-12);
  const MmshResult opt = exact_mmsh(gadget.works, gadget.machines);
  EXPECT_NEAR(opt.max_stretch, gadget.target_stretch, 1e-9);
}

TEST(TwoPartitionEq, GadgetOnNoInstance) {
  // a = {2, 2, 3, 5}: sum 12, S = 6, every a_i < S (the gadget's
  // precondition), but no equal-cardinality split sums to 6
  // (pairs: 4, 5, 7, 8). The optimum must exceed the target.
  const std::vector<std::int64_t> a = {2, 2, 3, 5};
  ASSERT_FALSE(has_two_partition_eq(a));
  const MmshGadget gadget = mmsh_from_two_partition_eq(a);
  const MmshResult opt = exact_mmsh(gadget.works, gadget.machines);
  EXPECT_GT(opt.max_stretch, gadget.target_stretch + 1e-9);
}

TEST(TwoPartitionEq, RejectsMalformedInput) {
  EXPECT_THROW((void)mmsh_from_two_partition_eq({}), std::invalid_argument);
  EXPECT_THROW((void)mmsh_from_two_partition_eq({1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)mmsh_from_two_partition_eq({1, 2}),  // odd sum
               std::invalid_argument);
  EXPECT_THROW((void)mmsh_from_two_partition_eq({0, 2}),
               std::invalid_argument);
}

TEST(ThreePartition, SolverOnTinyInstances) {
  // B = 12, triples (5,4,3) twice.
  EXPECT_TRUE(has_three_partition({5, 4, 3, 5, 4, 3}));
  // Same multiset but one value changed: 24 not divisible into two 12s.
  EXPECT_FALSE(has_three_partition({5, 4, 4, 5, 4, 3}));
  EXPECT_FALSE(has_three_partition({1, 2}));  // size not divisible by 3
}

TEST(ThreePartition, GadgetOnYesInstance) {
  // n = 2, B = 12, entries in (3, 6) strictly: {5, 4, 3, ...} -- wait,
  // 3 is not > B/4 = 3; use {5, 4, 3}? 3 == B/4 violates the bound, so
  // take B = 12 with {5, 4, 3} replaced by {4, 4, 4} and {5, 4, 3} is
  // invalid. Entries: {4, 4, 4, 5, 4, 3}? 3 again. Use B = 20:
  // triples (6, 7, 7) and (6, 6, 8), all in (5, 10).
  const std::vector<std::int64_t> a = {6, 7, 7, 6, 6, 8};
  ASSERT_TRUE(has_three_partition(a));
  const MmshGadget gadget = mmsh_from_three_partition(a);
  EXPECT_EQ(gadget.machines, 2);
  ASSERT_EQ(gadget.works.size(), 8u);  // 3n + n
  EXPECT_DOUBLE_EQ(gadget.target_stretch, 3.0);
  const MmshResult opt = exact_mmsh(gadget.works, gadget.machines);
  EXPECT_LE(opt.max_stretch, gadget.target_stretch + 1e-9);
}

TEST(ThreePartition, GadgetOnNoInstance) {
  // B = 20 but no valid triple split: {6, 6, 6, 6, 8, 8} -> triples must
  // sum 20; options: 6+6+8 = 20 twice — that works! Pick truly
  // unbalanced: {6, 6, 6, 7, 7, 8}: sum 40, B = 20; triples summing 20
  // from {6,6,6,7,7,8}: 6+6+8 = 20 leaves {6,7,7} = 20 — works too.
  // {6,6,7,7,7,7}: sum 40; 6+7+7 = 20 leaves 6+7+7 = 20 — works.
  // Hard NO at n = 2 with strict bounds: {6,6,6,6,7,9}: sum 40;
  // 6+6+9 = 21, 6+7+9 = 22, 6+6+7 = 19 -> no triple sums to 20.
  const std::vector<std::int64_t> a = {6, 6, 6, 6, 7, 9};
  ASSERT_FALSE(has_three_partition(a));
  const MmshGadget gadget = mmsh_from_three_partition(a);
  const MmshResult opt = exact_mmsh(gadget.works, gadget.machines);
  EXPECT_GT(opt.max_stretch, gadget.target_stretch + 1e-9);
}

TEST(ThreePartition, RejectsOutOfRangeEntries) {
  // Entries must satisfy B/4 < a_i < B/2.
  EXPECT_THROW((void)mmsh_from_three_partition({10, 5, 5, 10, 5, 5}),
               std::invalid_argument);  // 10 = B/2 violates the strict bound
  EXPECT_THROW((void)mmsh_from_three_partition({1, 2, 3}),
               std::invalid_argument);
}

TEST(EdgeCloudEmbedding, MatchesTheorem3) {
  // The embedding has one unit-speed edge, p-1 clouds, zero comms.
  const std::vector<double> works = {2.0, 3.0, 4.0};
  const Instance instance = edge_cloud_from_mmsh(works, 3);
  EXPECT_EQ(instance.platform.edge_count(), 1);
  EXPECT_DOUBLE_EQ(instance.platform.edge_speed(0), 1.0);
  EXPECT_EQ(instance.platform.cloud_count(), 2);
  EXPECT_TRUE(validate_instance(instance).empty());
  for (const Job& job : instance.jobs) {
    EXPECT_DOUBLE_EQ(job.up, 0.0);
    EXPECT_DOUBLE_EQ(job.down, 0.0);
    EXPECT_DOUBLE_EQ(job.release, 0.0);
    // In the embedding, edge and cloud execution times coincide.
    EXPECT_DOUBLE_EQ(instance.platform.edge_time(job),
                     instance.platform.cloud_time(job));
  }
}

TEST(EdgeCloudEmbedding, GadgetRoundTrip) {
  // Full Theorem 1 -> Theorem 3 pipeline: the 2-partition gadget embedded
  // as an edge-cloud instance is solved to the same optimum by the
  // edge-cloud brute force as by the MMSH solver.
  const std::vector<std::int64_t> a = {1, 1};  // n = 1, S = 1
  const MmshGadget gadget = mmsh_from_two_partition_eq(a);
  ASSERT_EQ(gadget.works.size(), 4u);
  const MmshResult mmsh = exact_mmsh(gadget.works, gadget.machines);
  const Instance instance =
      edge_cloud_from_mmsh(gadget.works, gadget.machines);
  const BruteForceResult bf = brute_force_edge_cloud(instance);
  EXPECT_NEAR(bf.max_stretch, mmsh.max_stretch, 1e-6);
  EXPECT_NEAR(bf.max_stretch, gadget.target_stretch, 1e-6);
}

}  // namespace
}  // namespace ecs
