// Tests for the experiment harness (exp/runner.hpp, exp/sweep.hpp,
// exp/parallel.hpp, exp/report.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/parallel.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

Instance tiny_instance(std::uint64_t seed) {
  RandomInstanceConfig cfg;
  cfg.n = 30;
  cfg.cloud_count = 2;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  Rng rng(seed);
  return make_random_instance(cfg, rng);
}

TEST(Parallel, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SerialFallback) {
  int count = 0;
  parallel_for(10, [&](std::size_t) { ++count; }, 1);
  EXPECT_EQ(count, 10);
}

TEST(Parallel, EmptyIsNoop) {
  parallel_for(0, [&](std::size_t) { FAIL(); }, 4);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(parallel_for(
                   8,
                   [&](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(Parallel, AbortsRemainingWorkOnFirstException) {
  // With every body throwing, the abort flag must stop workers from
  // claiming new indices: out of 100000 only a handful (at most one
  // in-flight per worker, plus the raciness of the relaxed flag) may run.
  std::atomic<int> invocations{0};
  EXPECT_THROW(parallel_for(
                   100000,
                   [&](std::size_t) {
                     invocations.fetch_add(1);
                     throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  EXPECT_LE(invocations.load(), 64);  // far below 100000 => short-circuited
}

TEST(Runner, ValidatedRunProducesMetrics) {
  const Instance instance = tiny_instance(1);
  RunOptions options;
  options.validate = true;
  const RunOutcome outcome = run_policy(instance, "srpt", options);
  EXPECT_TRUE(outcome.validated);
  EXPECT_EQ(outcome.policy, "SRPT");
  EXPECT_GE(outcome.metrics.max_stretch, 1.0);
  EXPECT_GT(outcome.wall_seconds, 0.0);
  EXPECT_EQ(outcome.metrics.per_job.size(), instance.jobs.size());
}

TEST(Runner, UnvalidatedRunMatchesValidated) {
  const Instance instance = tiny_instance(2);
  RunOptions with;
  with.validate = true;
  RunOptions without;
  without.validate = false;
  const RunOutcome a = run_policy(instance, "ssf-edf", with);
  const RunOutcome b = run_policy(instance, "ssf-edf", without);
  EXPECT_NEAR(a.metrics.max_stretch, b.metrics.max_stretch, 1e-9);
  EXPECT_NEAR(a.metrics.mean_stretch, b.metrics.mean_stretch, 1e-9);
}

TEST(Runner, UnknownPolicyThrows) {
  const Instance instance = tiny_instance(3);
  EXPECT_THROW((void)run_policy(instance, "does-not-exist", RunOptions{}),
               std::invalid_argument);
}

TEST(Sweep, ReplicationSeedsAreDistinct) {
  const std::uint64_t a = replication_seed(42, "x", 0);
  const std::uint64_t b = replication_seed(42, "x", 1);
  const std::uint64_t c = replication_seed(42, "y", 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, replication_seed(42, "x", 0));
}

TEST(Sweep, AggregatesAllReplications) {
  SweepOptions options;
  options.replications = 4;
  options.threads = 2;
  const SweepPointResult result = run_sweep_point(
      "point", [](std::uint64_t seed) { return tiny_instance(seed); },
      {"srpt", "greedy"}, options);
  ASSERT_EQ(result.per_policy.size(), 2u);
  EXPECT_EQ(result.policy("srpt").max_stretch.count(), 4u);
  EXPECT_EQ(result.policy("greedy").max_stretch.count(), 4u);
  EXPECT_GE(result.policy("srpt").max_stretch.mean(), 1.0);
  EXPECT_THROW((void)result.policy("nope"), std::out_of_range);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions serial;
  serial.replications = 3;
  serial.threads = 1;
  SweepOptions parallel_opts;
  parallel_opts.replications = 3;
  parallel_opts.threads = 3;
  const auto factory = [](std::uint64_t seed) { return tiny_instance(seed); };
  const SweepPointResult a =
      run_sweep_point("p", factory, {"srpt"}, serial);
  const SweepPointResult b =
      run_sweep_point("p", factory, {"srpt"}, parallel_opts);
  EXPECT_DOUBLE_EQ(a.policy("srpt").max_stretch.mean(),
                   b.policy("srpt").max_stretch.mean());
  EXPECT_DOUBLE_EQ(a.policy("srpt").max_stretch.stddev(),
                   b.policy("srpt").max_stretch.stddev());
}

TEST(Sweep, SweepSeedMixesThePointIndex) {
  // Backward compatibility: index -1 IS the historical derivation.
  EXPECT_EQ(sweep_seed(42, -1, "x", 3), replication_seed(42, "x", 3));
  // Same label at different sweep points must draw distinct seed streams —
  // the collision two points whose values format identically used to hit.
  const std::uint64_t p0 = sweep_seed(42, 0, "0.50", 0);
  const std::uint64_t p1 = sweep_seed(42, 1, "0.50", 0);
  const std::uint64_t no_index = sweep_seed(42, -1, "0.50", 0);
  EXPECT_NE(p0, p1);
  EXPECT_NE(p0, no_index);
  EXPECT_NE(p1, no_index);
  // Deterministic, and still distinct across replications and bases.
  EXPECT_EQ(p0, sweep_seed(42, 0, "0.50", 0));
  EXPECT_NE(p0, sweep_seed(42, 0, "0.50", 1));
  EXPECT_NE(p0, sweep_seed(43, 0, "0.50", 0));
}

TEST(Sweep, BatchAndTaskDriversAgreeBitForBit) {
  // The contract documented on SweepDriver: identical aggregates from both
  // drivers, wall_seconds excepted (it is wall time). Compare every
  // deterministic accumulator and the merged sketches on a multi-policy,
  // multi-replication point, with validation on (rep 0 takes the
  // record+validate path in both drivers).
  const auto factory = [](std::uint64_t seed) { return tiny_instance(seed); };
  const std::vector<std::string> policies = {"srpt", "greedy", "ssf-edf"};
  SweepOptions batch;
  batch.replications = 6;
  batch.threads = 3;
  batch.driver = SweepDriver::kBatch;
  batch.point_index = 2;
  SweepOptions tasks = batch;
  tasks.driver = SweepDriver::kTasks;

  const SweepPointResult a = run_sweep_point("p", factory, policies, batch);
  const SweepPointResult b = run_sweep_point("p", factory, policies, tasks);
  for (const std::string& name : policies) {
    SCOPED_TRACE(name);
    const PolicyAggregate& pa = a.policy(name);
    const PolicyAggregate& pb = b.policy(name);
    EXPECT_DOUBLE_EQ(pa.max_stretch.mean(), pb.max_stretch.mean());
    EXPECT_DOUBLE_EQ(pa.max_stretch.stddev(), pb.max_stretch.stddev());
    EXPECT_DOUBLE_EQ(pa.mean_stretch.mean(), pb.mean_stretch.mean());
    EXPECT_DOUBLE_EQ(pa.reassignments.mean(), pb.reassignments.mean());
    EXPECT_DOUBLE_EQ(pa.events.mean(), pb.events.mean());
    EXPECT_EQ(pa.stretch_sketch.count(), pb.stretch_sketch.count());
    EXPECT_DOUBLE_EQ(pa.stretch_sketch.sum(), pb.stretch_sketch.sum());
    EXPECT_DOUBLE_EQ(pa.stretch_sketch.quantile(0.99),
                     pb.stretch_sketch.quantile(0.99));
    EXPECT_DOUBLE_EQ(pa.flow_sketch.quantile(0.5),
                     pb.flow_sketch.quantile(0.5));
    EXPECT_DOUBLE_EQ(pa.queue_depth_sketch.max(),
                     pb.queue_depth_sketch.max());
  }
}

TEST(Report, TableAlignmentAndCsv) {
  Table table({"x", "value"});
  table.add_row({"1", "10.5"});
  table.add_row({"2", "3"});
  std::ostringstream text;
  table.print(text);
  EXPECT_NE(text.str().find("x"), std::string::npos);
  EXPECT_NE(text.str().find("10.5"), std::string::npos);
  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(), "x,value\n1,10.5\n2,3\n");
  EXPECT_THROW(table.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Report, CsvQuotesSpecialCells) {
  Table table({"name", "note"});
  table.add_row({"a,b", "plain"});
  table.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "name,note\n\"a,b\",plain\n\"quote\"\"inside\",\"line\nbreak\"\n");
}

TEST(Report, MakeReportBuildsOneRowPerPoint) {
  SweepOptions options;
  options.replications = 2;
  options.validate_first = false;
  std::vector<SweepPointResult> points;
  points.push_back(run_sweep_point(
      "a", [](std::uint64_t seed) { return tiny_instance(seed); }, {"srpt"},
      options));
  points.push_back(run_sweep_point(
      "b", [](std::uint64_t seed) { return tiny_instance(seed + 50); },
      {"srpt"}, options));
  ReportOptions report_options;
  report_options.x_label = "scenario";
  const Table table = make_report(points, {"srpt"}, report_options);
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace ecs
