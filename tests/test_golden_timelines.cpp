// Golden-timeline regression tests.
//
// Every policy's exact completion vector on one fixed, contended instance
// (two edges of different speeds, one cloud, eight jobs with staggered
// releases). The values were produced by the current implementation,
// validated against the section III-B checker, and hand-sanity-checked;
// their purpose is to catch *unintended* behavioral drift during
// refactors. If you change a policy's decision rule deliberately, re-run,
// re-validate, and update the constants — the git history then documents
// the behavioral change explicitly.
#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

Instance golden_instance() {
  Instance instance;
  instance.platform = Platform({0.5, 0.25}, 1);
  instance.jobs = {
      {0, 0, 3.0, 0.0, 1.0, 0.5},
      {1, 1, 2.0, 0.0, 1.0, 1.0},
      {2, 0, 0.5, 0.5, 0.1, 0.1},
      {3, 1, 5.0, 1.0, 0.5, 0.5},
      {4, 0, 1.0, 1.0, 2.0, 2.0},
      {5, 1, 0.25, 1.5, 0.25, 0.25},
      {6, 0, 4.0, 2.0, 0.5, 0.5},
      {7, 1, 1.5, 2.0, 1.0, 1.0},
  };
  return instance;
}

struct Golden {
  const char* policy;
  std::vector<double> completions;
  std::uint64_t reexecutions;
};

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> kGoldens = {
      {"edge-only", {9, 15, 1.5, 35, 3.5, 2.5, 17, 8.5}, 0},
      {"greedy", {9.75, 6.75, 1.5, 14.25, 4.25, 2.75, 11.5, 9.25}, 3},
      {"srpt", {8, 4.35, 1.2, 18.85, 3, 2.25, 12.85, 7.85}, 2},
      {"ssf-edf", {8.35, 4.35, 1.2, 13.35, 3, 2.25, 11, 5.85}, 1},
      {"fcfs", {4.5, 7, 1.5, 11.5, 3.5, 2.5, 11.5, 8.5}, 0},
  };
  return kGoldens;
}

class GoldenTimelines : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenTimelines, CompletionVectorStable) {
  const Golden& golden = goldens().at(GetParam());
  const Instance instance = golden_instance();
  const auto policy = make_policy(golden.policy);
  const SimResult result = simulate(instance, *policy);
  require_valid_schedule(instance, result.schedule);
  ASSERT_EQ(result.completions.size(), golden.completions.size());
  for (std::size_t i = 0; i < golden.completions.size(); ++i) {
    EXPECT_NEAR(result.completions[i], golden.completions[i], 1e-6)
        << golden.policy << " J" << i;
  }
  EXPECT_EQ(result.stats.reassignments, golden.reexecutions)
      << golden.policy;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GoldenTimelines,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& info) {
                           std::string name =
                               goldens().at(info.param).policy;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// A few hand-verifiable facts about the golden instance, independent of
// any policy's internals: J2 (tiny, cheap cloud) can reach its best time
// 1.2 - 0.5 = 0.7 under the smarter policies.
TEST(GoldenTimelines, SanityOfGoldenValues) {
  const Instance instance = golden_instance();
  // J2: edge time 1.0, cloud 0.7; SRPT and SSF-EDF finish it at 1.2 =
  // release 0.5 + cloud 0.7 (stretch 1) — the certified optimum for it.
  EXPECT_DOUBLE_EQ(instance.platform.best_time(instance.jobs[2]), 0.7);
  // J3 is the heavyweight: work 5 on the slow edge (speed 0.25) takes 20,
  // the cloud takes 6; every cloud-using policy beats Edge-Only's 34 by
  // at least 40% on its completion (see the golden table).
  EXPECT_DOUBLE_EQ(instance.platform.edge_time(instance.jobs[3]), 20.0);
  EXPECT_DOUBLE_EQ(instance.platform.cloud_time(instance.jobs[3]), 6.0);
}

}  // namespace
}  // namespace ecs
