// Tests for the Greedy heuristic (sched/greedy.hpp, paper section V-B).
#include "sched/greedy.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

SimResult run_greedy(const Instance& instance) {
  GreedyPolicy policy;
  return simulate(instance, policy);
}

TEST(Greedy, SingleJobPicksBestResource) {
  // Cheap communications: the cloud (1+2+1 = 4) beats the edge (2/0.2 = 10).
  Instance instance;
  instance.platform = Platform({0.2}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0}};
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, 0);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
}

TEST(Greedy, SingleJobStaysLocalWhenCommsCostly) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 10.0, 10.0}};
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, kAllocEdge);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
}

TEST(Greedy, PrioritizesJobWithHighestThreatenedStretch) {
  // Two jobs released together on one edge, no useful cloud. The shorter
  // job would suffer the larger stretch if delayed, so Greedy runs it
  // first (its achievable-stretch is higher as the ratio grows faster).
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 10.0, 0.0, 0.0, 0.0}, {1, 0, 1.0, 0.0, 0.0, 0.0}};
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  // Short job first: stretches 1 and 1.1; long first would be 11 and 1.
  EXPECT_NEAR(m.max_stretch, 1.1, 1e-6);
}

TEST(Greedy, SpreadsJobsOverCloudProcessors) {
  // Four identical jobs, tiny comms, two clouds + one fast edge: Greedy
  // must use several resources in parallel instead of queueing everything.
  Instance instance;
  instance.platform = Platform({1.0}, 2);
  instance.jobs = {{0, 0, 4.0, 0.0, 0.1, 0.1},
                   {1, 0, 4.0, 0.0, 0.1, 0.1},
                   {2, 0, 4.0, 0.0, 0.1, 0.1}};
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  int edge_jobs = 0;
  int cloud_jobs = 0;
  for (int i = 0; i < 3; ++i) {
    if (result.schedule.job(i).final_run.alloc == kAllocEdge) {
      ++edge_jobs;
    } else {
      ++cloud_jobs;
    }
  }
  EXPECT_EQ(edge_jobs, 1);
  EXPECT_EQ(cloud_jobs, 2);
}

TEST(Greedy, PreemptsButNeverDiscardsProgressWithoutBenefit) {
  // A long job is computing on the edge with most of its work done when a
  // newcomer arrives whose own best option is that edge (stretch 1.0 vs
  // 1.1 on the cloud). Greedy is myopic: the newcomer preempts. The
  // invariant is that the long job's progress survives the preemption (it
  // resumes on the same edge; no run is ever abandoned) — re-execution
  // only happens when it strictly helps the moved job.
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 10.0, 0.0, 20.0, 20.0},
                   {1, 0, 2.0, 9.0, 0.1, 0.1}};
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  EXPECT_TRUE(result.schedule.job(0).abandoned.empty());
  EXPECT_TRUE(result.schedule.job(1).abandoned.empty());
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, kAllocEdge);
  // Newcomer runs [9, 11); the preempted job resumes and finishes at 12.
  EXPECT_NEAR(result.completions[1], 11.0, 1e-6);
  EXPECT_NEAR(result.completions[0], 12.0, 1e-6);
}

TEST(Greedy, ValidOnBurstyContention) {
  // Stress: 30 jobs released in one burst from 3 edges onto 2 clouds.
  Instance instance;
  instance.platform = Platform({0.3, 0.3, 0.3}, 2);
  for (int i = 0; i < 30; ++i) {
    instance.jobs.push_back(Job{i, static_cast<EdgeId>(i % 3),
                                1.0 + (i % 7), 0.0, 0.5 + (i % 3) * 0.5,
                                0.5});
  }
  const SimResult result = run_greedy(instance);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_GE(m.max_stretch, 1.0);
}

}  // namespace
}  // namespace ecs
