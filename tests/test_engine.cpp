// Tests for the event-driven simulation engine (sim/engine.hpp).
//
// The engine is exercised with FixedPolicy (deterministic allocations and
// priorities) and small custom policies, and every produced schedule is
// cross-checked by the independent section III-B validator.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "sched/fixed.hpp"

namespace ecs {
namespace {

Instance one_edge_one_cloud(std::vector<Job> jobs, double speed = 0.5) {
  Instance instance;
  instance.platform = Platform({speed}, 1);
  instance.jobs = std::move(jobs);
  return instance;
}

TEST(Engine, SingleJobOnEdge) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 1.0, 1.0, 1.0}});
  FixedPolicy policy({kAllocEdge}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // Released at 1, runs 2 / 0.5 = 4 time units.
  EXPECT_NEAR(result.completions[0], 5.0, 1e-9);
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, kAllocEdge);
}

TEST(Engine, SingleJobOnCloud) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 1.0, 1.5, 0.5}});
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // 1 (release) + 1.5 (up) + 2 (work at speed 1) + 0.5 (down).
  EXPECT_NEAR(result.completions[0], 5.0, 1e-9);
  const RunRecord& run = result.schedule.job(0).final_run;
  EXPECT_NEAR(run.uplink.measure(), 1.5, 1e-9);
  EXPECT_NEAR(run.exec.measure(), 2.0, 1e-9);
  EXPECT_NEAR(run.downlink.measure(), 0.5, 1e-9);
}

TEST(Engine, CloudJobWithZeroCommunications) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 0.0, 0.0, 0.0}});
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 2.0, 1e-9);
  EXPECT_TRUE(result.schedule.job(0).final_run.uplink.empty());
  EXPECT_TRUE(result.schedule.job(0).final_run.downlink.empty());
}

TEST(Engine, PreemptionByHigherPriorityRelease) {
  // Long job starts at 0; short job released at 2 with a smaller priority
  // value preempts it; the long job resumes after.
  const Instance instance = one_edge_one_cloud(
      {{0, 0, 4.0, 0.0, 100.0, 100.0}, {1, 0, 0.5, 2.0, 100.0, 100.0}},
      /*speed=*/1.0);
  FixedPolicy policy({kAllocEdge, kAllocEdge}, {1.0, 0.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[1], 2.5, 1e-9);  // preempts immediately
  EXPECT_NEAR(result.completions[0], 4.5, 1e-9);  // 4 work + 0.5 pause
  // The preempted job's execution is split into two intervals.
  EXPECT_EQ(result.schedule.job(0).final_run.exec.size(), 2u);
}

TEST(Engine, UplinksFromSameEdgeSerialize) {
  // Two jobs from the same edge to two different clouds: the edge send
  // port forces the uplinks one after the other.
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.jobs = {{0, 0, 1.0, 0.0, 2.0, 0.0}, {1, 0, 1.0, 0.0, 2.0, 0.0}};
  FixedPolicy policy({0, 1}, {0.0, 1.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // J0: up [0,2), exec [2,3). J1: up [2,4), exec [4,5).
  EXPECT_NEAR(result.completions[0], 3.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 5.0, 1e-9);
}

TEST(Engine, UplinksToSameCloudSerialize) {
  // Two jobs from different edges to the same cloud: its receive port
  // serializes the uplinks.
  Instance instance;
  instance.platform = Platform({0.5, 0.5}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 2.0, 0.0}, {1, 1, 1.0, 0.0, 2.0, 0.0}};
  FixedPolicy policy({0, 0}, {0.0, 1.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 3.0, 1e-9);
  // J1 uplink [2,4), exec [4,5).
  EXPECT_NEAR(result.completions[1], 5.0, 1e-9);
}

TEST(Engine, FullDuplexUplinkOverlapsDownlink) {
  // J0's downlink and J1's uplink share the edge-cloud pair and overlap.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 1.0, 5.0}, {1, 0, 1.0, 0.0, 5.0, 0.0}};
  FixedPolicy policy({0, 0}, {0.0, 1.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // J0: up [0,1), exec [1,2), down [2,7).
  // J1: up [1,6) — overlaps J0's downlink (full duplex) — exec [6,7).
  EXPECT_NEAR(result.completions[0], 7.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 7.0, 1e-9);
}

TEST(Engine, ComputeOverlapsCommunication) {
  // While J0 computes on the cloud, J1's uplink proceeds.
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 0.0}, {1, 0, 1.0, 0.0, 3.0, 0.0}};
  FixedPolicy policy({0, 1}, {0.0, 1.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // J0: up [0,1), exec [1,5). J1: up [1,4), exec on cloud 1 [4,5).
  EXPECT_NEAR(result.completions[0], 5.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 5.0, 1e-9);
}

// Policy that moves its single job from the edge to the cloud at t >= 2
// (first event after), exercising the re-execution rule.
class SwitchPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Switch"; }
  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    (void)events;
    if (!view.state(0).live()) return;
    const int target = view.now() >= 2.0 ? 0 : kAllocEdge;
    out.push_back(Directive{0, target, 0.0});
  }
};

TEST(Engine, ReexecutionDiscardsProgress) {
  // Job: work 4, release 0, up = dn = 1. A second job triggers an event at
  // t = 2, at which the switch policy moves job 0 to the cloud.
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}, {1, 0, 2.0, 2.0, 1.0, 1.0}};

  class TwoJobSwitch final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "Switch2"; }
    void decide(const SimView& view, const std::vector<Event>& events,
                std::vector<Directive>& out) override {
      (void)events;
      if (view.state(0).live()) {
        out.push_back(
            Directive{0, view.now() >= 2.0 ? 0 : kAllocEdge, 0.0});
      }
      if (view.state(1).live()) {
        out.push_back(Directive{1, kAllocEdge, 1.0});
      }
    }
  };

  TwoJobSwitch policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // Job 0 computed [0,2) on the edge (progress 2 of 4), then restarted on
  // the cloud from scratch: up [2,3), exec [3,7), down [7,8).
  EXPECT_NEAR(result.completions[0], 8.0, 1e-9);
  ASSERT_EQ(result.schedule.job(0).abandoned.size(), 1u);
  EXPECT_EQ(result.schedule.job(0).abandoned[0].alloc, kAllocEdge);
  EXPECT_NEAR(result.schedule.job(0).abandoned[0].exec.measure(), 2.0, 1e-9);
  EXPECT_EQ(result.stats.reassignments, 1u);
  // Job 1 got the edge once job 0 left: [2,4).
  EXPECT_NEAR(result.completions[1], 4.0, 1e-9);
}

TEST(Engine, WorkConservationRunsUnselectedAllocatedJobs) {
  // The policy only ever gives a directive for job 0 (edge). Job 1 was
  // allocated to the edge in the first call and then never mentioned again:
  // the engine must still run it when the edge becomes free.
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0}, {1, 0, 3.0, 0.0, 1.0, 1.0}};

  class OneShot final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "OneShot"; }
    void reset(const Instance&) override { first_ = true; }
    void decide(const SimView& view, const std::vector<Event>& events,
                std::vector<Directive>& out) override {
      (void)events;
      if (view.state(0).live()) out.push_back(Directive{0, kAllocEdge, 0.0});
      if (first_) {
        if (view.state(1).live()) {
          out.push_back(Directive{1, kAllocEdge, 1.0});
        }
        first_ = false;
      }
    }

   private:
    bool first_ = true;
  };

  OneShot policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 2.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 5.0, 1e-9);
}

TEST(Engine, StallIsDetected) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0}};

  class ParkAll final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "ParkAll"; }
    void decide(const SimView&, const std::vector<Event>&,
                std::vector<Directive>&) override {
      // never allocates anything
    }
  };

  ParkAll policy;
  EXPECT_THROW((void)simulate(instance, policy), std::runtime_error);
  // The diagnostic must name the policy, the time, the live-job count and
  // the offending jobs themselves.
  try {
    (void)simulate(instance, policy);
    FAIL() << "expected a stall";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stalled at t=0"), std::string::npos) << what;
    EXPECT_NE(what.find("ParkAll"), std::string::npos) << what;
    EXPECT_NE(what.find("1 live job(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("J0(unassigned"), std::string::npos) << what;
  }
}

TEST(Engine, EventCapStopsThrashingPolicies) {
  Instance instance;
  instance.platform = Platform({1.0}, 2);
  instance.jobs = {{0, 0, 100.0, 0.0, 1.0, 1.0},
                   {1, 0, 1.0, 0.0, 1.0, 1.0}};

  // Pathological: flips job 0 between the two clouds at every event, so it
  // never completes.
  class Thrash final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "Thrash"; }
    void reset(const Instance&) override { flip_ = 0; }
    void decide(const SimView& view, const std::vector<Event>& events,
                std::vector<Directive>& out) override {
      (void)events;
      if (view.state(0).live()) out.push_back(Directive{0, flip_, 0.0});
      if (view.state(1).live()) out.push_back(Directive{1, kAllocEdge, 1.0});
      flip_ = 1 - flip_;
    }

   private:
    int flip_ = 0;
  };

  Thrash policy;
  EngineConfig config;
  config.max_events = 500;
  EXPECT_THROW((void)simulate(instance, policy, config), std::runtime_error);
  // The diagnostic must name the cap, the policy and the job still alive.
  try {
    (void)simulate(instance, policy, config);
    FAIL() << "expected the event cap to trip";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("event cap (500)"), std::string::npos) << what;
    EXPECT_NE(what.find("Thrash"), std::string::npos) << what;
    EXPECT_NE(what.find("reassignment"), std::string::npos) << what;
    EXPECT_NE(what.find("J0("), std::string::npos) << what;
  }
}

TEST(Engine, CompletionsMatchScheduleCompletions) {
  const Instance instance = one_edge_one_cloud(
      {{0, 0, 2.0, 0.0, 1.0, 1.0}, {1, 0, 3.0, 1.0, 1.0, 1.0}});
  FixedPolicy policy({kAllocEdge, 0}, {0.0, 1.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  for (int i = 0; i < 2; ++i) {
    const auto completion = result.schedule.job(i).completion();
    ASSERT_TRUE(completion.has_value());
    EXPECT_NEAR(result.completions[i], *completion, 1e-9);
  }
}

TEST(Engine, SimultaneousReleasesAllFire) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.5, 0.5},
                   {1, 0, 1.0, 0.0, 0.5, 0.5},
                   {2, 0, 1.0, 0.0, 0.5, 0.5}};
  FixedPolicy policy({kAllocEdge, 0, kAllocEdge}, {0.0, 1.0, 2.0});
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], 1.0, 1e-9);
  EXPECT_NEAR(result.completions[1], 2.0, 1e-9);  // 0.5 + 1 + 0.5
  EXPECT_NEAR(result.completions[2], 2.0, 1e-9);  // edge after J0
}

TEST(Engine, RecordScheduleOffStillFillsCompletions) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 0.0, 1.0, 1.0}});
  FixedPolicy policy({0}, {0.0});
  EngineConfig config;
  config.record_schedule = false;
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
  EXPECT_EQ(result.schedule.job_count(), 0);
}

TEST(Engine, InvalidCloudTargetRejected) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 0.0, 1.0, 1.0}});
  FixedPolicy policy({5}, {0.0});  // only one cloud
  EXPECT_THROW((void)simulate(instance, policy), std::runtime_error);
}

TEST(Engine, StatsCountEventsAndDecisions) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 2.0, 0.0, 1.0, 1.0}});
  FixedPolicy policy({0}, {0.0});
  const SimResult result = simulate(instance, policy);
  // Release, uplink-done, compute-done, downlink-done.
  EXPECT_EQ(result.stats.events, 4u);
  // One decision per event batch except the final one (everything is done,
  // no decision needed): release, uplink-done, compute-done.
  EXPECT_EQ(result.stats.decisions, 3u);
}

TEST(Engine, StatsMatchMetricsRegistryTotals) {
  // J1 (higher priority) preempts J0 on the single edge at t=2.
  const Instance instance = one_edge_one_cloud(
      {{0, 0, 4.0, 0.0, 100.0, 100.0}, {1, 0, 0.5, 2.0, 100.0, 100.0}}, 1.0);
  FixedPolicy policy({kAllocEdge, kAllocEdge}, {1.0, 0.0});
  obs::MetricsRegistry registry;
  EngineConfig config;
  config.metrics = &registry;
  const SimResult result = simulate(instance, policy, config);
  EXPECT_EQ(result.stats.preemptions, 1u);
  EXPECT_EQ(registry.counter_value("engine.events"), result.stats.events);
  EXPECT_EQ(registry.counter_value("engine.decisions"),
            result.stats.decisions);
  EXPECT_EQ(registry.counter_value("engine.preemptions"),
            result.stats.preemptions);
  EXPECT_EQ(registry.counter_value("engine.reassignments"),
            result.stats.reassignments);
  EXPECT_EQ(static_cast<std::uint64_t>(
                registry.gauge_value("engine.ready_queue_depth").max),
            result.stats.max_queue_depth);
  EXPECT_EQ(registry.histogram_value("job.stretch").count, 2u);
}

TEST(Engine, MessageLossesSplitIntoRetransmitCounters) {
  const Instance instance =
      one_edge_one_cloud({{0, 0, 1.0, 0.0, 2.0, 2.0}});
  FixedPolicy policy({0}, {0.0});
  obs::MetricsRegistry registry;
  EngineConfig config;
  config.metrics = &registry;
  config.faults.faults = {
      {FaultKind::kUplinkLoss, 0, 1.0, 1.0},
      {FaultKind::kDownlinkLoss, 0, 5.0, 5.0},
  };
  const SimResult result = simulate(instance, policy, config);
  // Uplink 0..2 lost at 1, restarts 1..3; exec 3..4; downlink 4..6 lost at
  // 5, restarts 5..7.
  EXPECT_NEAR(result.completions[0], 7.0, 1e-9);
  EXPECT_EQ(result.stats.uplink_retransmits, 1u);
  EXPECT_EQ(result.stats.downlink_retransmits, 1u);
  EXPECT_EQ(result.stats.message_losses, 2u);
  EXPECT_EQ(registry.counter_value("engine.uplink_retransmits"), 1u);
  EXPECT_EQ(registry.counter_value("engine.downlink_retransmits"), 1u);
  EXPECT_EQ(registry.counter_value("engine.message_losses"), 2u);
}

TEST(Engine, MaxQueueDepthTracksWaitingJobs) {
  // Three zero-comm jobs released together onto one edge: two wait while
  // the first executes.
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.0, 0.0},
                   {1, 0, 1.0, 0.0, 0.0, 0.0},
                   {2, 0, 1.0, 0.0, 0.0, 0.0}};
  FixedPolicy policy({kAllocEdge, kAllocEdge, kAllocEdge}, {0.0, 1.0, 2.0});
  const SimResult result = simulate(instance, policy);
  EXPECT_EQ(result.stats.max_queue_depth, 2u);
}

}  // namespace
}  // namespace ecs
