// Tests for the branch-and-bound MMSH solver (sched/offline/bnb.hpp),
// cross-validated against the exhaustive enumerator and the reduction
// gadgets.
#include "sched/offline/bnb.hpp"

#include <gtest/gtest.h>

#include "sched/offline/brute_force.hpp"
#include "sched/offline/spt.hpp"
#include "util/rng.hpp"
#include "workloads/reductions.hpp"

namespace ecs {
namespace {

TEST(Bnb, SingleMachineMatchesSpt) {
  const std::vector<double> works = {3.0, 1.0, 2.0, 5.0};
  const BnbResult result = bnb_mmsh(works, 1);
  EXPECT_NEAR(result.max_stretch, max_stretch_spt(works), 1e-9);
}

TEST(Bnb, TwoMachinesToyInstance) {
  // {1,1,2,2}: optimum splits {1,2}/{1,2} -> max stretch 1.5.
  const BnbResult result = bnb_mmsh({1.0, 1.0, 2.0, 2.0}, 2);
  EXPECT_NEAR(result.max_stretch, 1.5, 1e-9);
  // The reported assignment realizes the value.
  EXPECT_NE(result.machine_of[2], result.machine_of[3]);
}

TEST(Bnb, OneMachinePerJobGivesStretchOne) {
  const BnbResult result = bnb_mmsh({1.0, 2.0, 3.0}, 3);
  EXPECT_NEAR(result.max_stretch, 1.0, 1e-9);
}

TEST(Bnb, MatchesExhaustiveEnumerator) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    const int n = 5 + static_cast<int>(rng.uniform_int(0, 4));
    const int machines = 2 + static_cast<int>(rng.uniform_int(0, 1));
    std::vector<double> works;
    for (int i = 0; i < n; ++i) works.push_back(rng.uniform(0.5, 9.0));
    const BnbResult bnb = bnb_mmsh(works, machines);
    const MmshResult exhaustive = exact_mmsh(works, machines);
    EXPECT_NEAR(bnb.max_stretch, exhaustive.max_stretch, 1e-9)
        << "seed " << seed << " n " << n << " m " << machines;
  }
}

TEST(Bnb, AssignmentRealizesReportedValue) {
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    Rng rng(seed);
    std::vector<double> works;
    for (int i = 0; i < 8; ++i) works.push_back(rng.uniform(0.5, 9.0));
    const BnbResult result = bnb_mmsh(works, 3);
    // Recompute the max stretch of the returned partition directly.
    std::vector<std::vector<double>> loads(3);
    for (std::size_t i = 0; i < works.size(); ++i) {
      loads[result.machine_of[i]].push_back(works[i]);
    }
    double worst = 0.0;
    for (auto& load : loads) {
      if (!load.empty()) worst = std::max(worst, max_stretch_spt(load));
    }
    EXPECT_NEAR(worst, result.max_stretch, 1e-9) << "seed " << seed;
  }
}

TEST(Bnb, SolvesGadgetsExactly) {
  // Theorem 1 gadget, YES instance: optimum equals the target stretch.
  const MmshGadget gadget = mmsh_from_two_partition_eq({1, 2, 2, 1});
  const BnbResult result = bnb_mmsh(gadget.works, gadget.machines);
  EXPECT_NEAR(result.max_stretch, gadget.target_stretch, 1e-9);
}

TEST(Bnb, ScalesBeyondTheEnumerator) {
  // n = 20 on 3 machines: far outside exact_mmsh's reach (3^20 states),
  // comfortably inside the branch-and-bound's.
  Rng rng(7);
  std::vector<double> works;
  for (int i = 0; i < 20; ++i) works.push_back(rng.uniform(1.0, 10.0));
  const BnbResult result = bnb_mmsh(works, 3);
  EXPECT_GE(result.max_stretch, 1.0);
  EXPECT_GT(result.nodes, 0u);
  // Sanity: the greedy seed is an upper bound the search may only improve.
  // (implicitly guaranteed; here we just assert a finite, plausible value)
  EXPECT_LT(result.max_stretch, 50.0);
}

TEST(Bnb, PruningBeatsPlainEnumeration) {
  // The node count must be dramatically below m^n.
  Rng rng(3);
  std::vector<double> works;
  for (int i = 0; i < 14; ++i) works.push_back(rng.uniform(1.0, 10.0));
  const BnbResult result = bnb_mmsh(works, 2);
  EXPECT_LT(result.nodes, 1ull << 13);  // << 2^14 full assignments
}

TEST(Bnb, RejectsBadInput) {
  EXPECT_THROW((void)bnb_mmsh({}, 2), std::invalid_argument);
  EXPECT_THROW((void)bnb_mmsh({1.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)bnb_mmsh({0.0}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ecs
