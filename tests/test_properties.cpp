// Property-based tests: every policy, over many randomized instances, must
// uphold the invariants of the model (paper section III).
//
// Parameterized over (policy, scenario, seed). For each combination the
// engine runs the policy, the independent section III-B validator checks
// the recorded schedule, and global invariants are asserted:
//   * every job completes, at or after its release date;
//   * every stretch is >= 1 (nothing beats a dedicated platform);
//   * completions reported by the engine equal the schedule's;
//   * jobs never run below the release date, quantities are fulfilled
//     (all enforced inside the validator);
//   * the engine is deterministic: same instance + policy => identical
//     completion vector.
#include <gtest/gtest.h>

#include <memory>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/kang_instances.hpp"
#include "workloads/outages.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

struct Scenario {
  std::string name;
  std::function<Instance(std::uint64_t)> make;
};

Instance random_scenario(std::uint64_t seed, double ccr, double load,
                         int clouds) {
  RandomInstanceConfig cfg;
  cfg.n = 80;
  cfg.cloud_count = clouds;
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  cfg.ccr = ccr;
  cfg.load = load;
  Rng rng(seed);
  return make_random_instance(cfg, rng);
}

Instance kang_scenario(std::uint64_t seed) {
  KangInstanceConfig cfg;
  cfg.n = 60;
  cfg.edge_count = 6;
  cfg.cloud_count = 3;
  cfg.load = 0.2;
  Rng rng(seed);
  return make_kang_instance(cfg, rng);
}

std::vector<Scenario> scenarios() {
  return {
      {"compute_intensive",
       [](std::uint64_t s) { return random_scenario(s, 0.1, 0.1, 4); }},
      {"balanced",
       [](std::uint64_t s) { return random_scenario(s, 1.0, 0.2, 4); }},
      {"comm_intensive",
       [](std::uint64_t s) { return random_scenario(s, 10.0, 0.1, 4); }},
      {"high_load",
       [](std::uint64_t s) { return random_scenario(s, 1.0, 0.8, 4); }},
      {"scarce_cloud",
       [](std::uint64_t s) { return random_scenario(s, 0.5, 0.3, 1); }},
      {"no_cloud",
       [](std::uint64_t s) { return random_scenario(s, 1.0, 0.2, 0); }},
      {"kang", [](std::uint64_t s) { return kang_scenario(s); }},
      {"hetero_cloud",
       [](std::uint64_t s) {
         Instance instance = random_scenario(s, 1.0, 0.3, 0);
         instance.platform =
             Platform(instance.platform.edge_speeds(),
                      std::vector<double>{0.5, 1.0, 2.0, 4.0});
         return instance;
       }},
      {"with_outages",
       [](std::uint64_t s) {
         Instance instance = random_scenario(s, 0.5, 0.3, 4);
         OutageConfig cfg;
         cfg.fraction = 0.3;
         cfg.mean_duration = 30.0;
         cfg.horizon = 5000.0;
         Rng rng(derive_seed(s, hash_tag("outages")));
         instance.cloud_outages = make_cloud_outages(4, cfg, rng);
         return instance;
       }},
  };
}

using PropertyParam = std::tuple<std::string, int, std::uint64_t>;
// (policy name, scenario index, seed)

class PolicyProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(PolicyProperties, ModelInvariantsHold) {
  const auto& [policy_name, scenario_index, seed] = GetParam();
  const Scenario scenario = scenarios().at(scenario_index);
  const Instance instance = scenario.make(seed);

  const auto policy = make_policy(policy_name);
  const SimResult result = simulate(instance, *policy);

  // 1. The independent validator accepts the schedule.
  const auto violations = validate_schedule(instance, result.schedule);
  ASSERT_TRUE(violations.empty())
      << "first violation: "
      << (violations.empty() ? "" : to_string(violations.front()));

  // 2. Per-job invariants.
  const ScheduleMetrics metrics = compute_metrics(instance, result.schedule);
  for (const JobMetrics& jm : metrics.per_job) {
    const Job& job = instance.jobs[jm.id];
    EXPECT_GE(jm.completion, job.release - 1e-9);
    EXPECT_GE(jm.stretch, 1.0 - 1e-6)
        << "job " << jm.id << " finished faster than a dedicated platform";
    EXPECT_NEAR(result.completions[jm.id], jm.completion, 1e-6);
  }
  EXPECT_GE(metrics.max_stretch, 1.0 - 1e-6);
  EXPECT_LE(metrics.mean_stretch, metrics.max_stretch + 1e-9);

  // 3. Determinism: a second run is bit-identical.
  const auto policy2 = make_policy(policy_name);
  const SimResult result2 = simulate(instance, *policy2);
  ASSERT_EQ(result2.completions.size(), result.completions.size());
  for (std::size_t i = 0; i < result.completions.size(); ++i) {
    EXPECT_EQ(result.completions[i], result2.completions[i]) << "job " << i;
  }
}

std::vector<PropertyParam> property_grid() {
  std::vector<PropertyParam> params;
  const int scenario_count = static_cast<int>(scenarios().size());
  for (const std::string& policy :
       {"edge-only", "greedy", "srpt", "ssf-edf", "fcfs"}) {
    for (int scenario = 0; scenario < scenario_count; ++scenario) {
      for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        params.emplace_back(policy, scenario, seed);
      }
    }
  }
  return params;
}

std::string param_name(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& [policy, scenario_index, seed] = info.param;
  std::string name = policy + "_" + scenarios().at(scenario_index).name +
                     "_s" + std::to_string(seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperties,
                         ::testing::ValuesIn(property_grid()), param_name);

// Cross-policy sanity: on compute-intensive instances (cheap cloud),
// cloud-using heuristics must beat Edge-Only by a wide margin on average.
TEST(CrossPolicy, CloudHelpsWhenCommunicationIsCheap) {
  double edge_only_total = 0.0;
  double ssf_total = 0.0;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Instance instance = random_scenario(seed, 0.1, 0.2, 4);
    const auto edge_only = make_policy("edge-only");
    const auto ssf = make_policy("ssf-edf");
    edge_only_total +=
        compute_metrics(instance, simulate(instance, *edge_only).schedule)
            .max_stretch;
    ssf_total +=
        compute_metrics(instance, simulate(instance, *ssf).schedule)
            .max_stretch;
  }
  EXPECT_LT(ssf_total * 2.0, edge_only_total)
      << "SSF-EDF should beat Edge-Only by >2x at CCR 0.1";
}

// With no cloud processors every policy degenerates to edge scheduling and
// all jobs are allocated to their origin edge.
TEST(CrossPolicy, NoCloudMeansAllEdgeAllocations) {
  const Instance instance = random_scenario(5, 1.0, 0.2, 0);
  for (const std::string& name : policy_names()) {
    const auto policy = make_policy(name);
    const SimResult result = simulate(instance, *policy);
    for (int i = 0; i < instance.job_count(); ++i) {
      EXPECT_EQ(result.schedule.job(i).final_run.alloc, kAllocEdge)
          << name << " job " << i;
    }
  }
}

// The factory resolves every advertised name and rejects junk.
TEST(Factory, ResolvesAllNames) {
  for (const std::string& name : policy_names()) {
    EXPECT_NE(make_policy(name), nullptr);
  }
  EXPECT_NE(make_policy("SSF_EDF"), nullptr);  // case/underscore tolerant
  EXPECT_NE(make_policy("srpt-noreexec"), nullptr);
  EXPECT_THROW((void)make_policy("quantum-annealer"), std::invalid_argument);
}

}  // namespace
}  // namespace ecs
