// Tests for the interval algebra (core/interval.hpp).
#include "core/interval.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

TEST(Interval, LengthAndEmpty) {
  EXPECT_DOUBLE_EQ(Interval({1.0, 3.5}).length(), 2.5);
  EXPECT_TRUE(Interval({2.0, 2.0}).empty());
  EXPECT_FALSE(Interval({2.0, 2.1}).empty());
}

TEST(Interval, OverlapsPositiveMeasureOnly) {
  EXPECT_TRUE(overlaps({0.0, 2.0}, {1.0, 3.0}));
  EXPECT_TRUE(overlaps({1.0, 3.0}, {0.0, 2.0}));
  EXPECT_FALSE(overlaps({0.0, 1.0}, {1.0, 2.0}));  // touching endpoints
  EXPECT_FALSE(overlaps({0.0, 1.0}, {2.0, 3.0}));
  EXPECT_TRUE(overlaps({0.0, 10.0}, {4.0, 5.0}));  // containment
}

TEST(IntervalSet, AddKeepsDisjointSorted) {
  IntervalSet set;
  set.add(5.0, 6.0);
  set.add(1.0, 2.0);
  set.add(3.0, 4.0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(set.intervals()[1].begin, 3.0);
  EXPECT_DOUBLE_EQ(set.intervals()[2].begin, 5.0);
}

TEST(IntervalSet, MergesTouching) {
  IntervalSet set;
  set.add(1.0, 2.0);
  set.add(2.0, 3.0);  // touches: must merge
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 3.0);
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet set;
  set.add(1.0, 4.0);
  set.add(2.0, 6.0);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 6.0);
}

TEST(IntervalSet, MergeBridgesSeveralMembers) {
  IntervalSet set;
  set.add(1.0, 2.0);
  set.add(3.0, 4.0);
  set.add(5.0, 6.0);
  set.add(1.5, 5.5);  // bridges all three
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].end, 6.0);
}

TEST(IntervalSet, IgnoresEmptyInsertions) {
  IntervalSet set;
  set.add(2.0, 2.0);
  set.add(3.0, 3.0 + 1e-12);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, Measure) {
  IntervalSet set;
  set.add(0.0, 1.0);
  set.add(2.0, 4.5);
  EXPECT_DOUBLE_EQ(set.measure(), 3.5);
  EXPECT_DOUBLE_EQ(IntervalSet{}.measure(), 0.0);
}

TEST(IntervalSet, MinMax) {
  IntervalSet set;
  EXPECT_FALSE(set.min().has_value());
  EXPECT_FALSE(set.max().has_value());
  set.add(3.0, 4.0);
  set.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(*set.min(), 1.0);
  EXPECT_DOUBLE_EQ(*set.max(), 4.0);
}

TEST(IntervalSet, IntersectsInterval) {
  IntervalSet set;
  set.add(1.0, 2.0);
  set.add(4.0, 6.0);
  EXPECT_TRUE(set.intersects(Interval{1.5, 1.6}));
  EXPECT_TRUE(set.intersects(Interval{0.0, 1.5}));
  EXPECT_TRUE(set.intersects(Interval{5.0, 9.0}));
  EXPECT_FALSE(set.intersects(Interval{2.0, 4.0}));  // in the gap, touching
  EXPECT_FALSE(set.intersects(Interval{7.0, 8.0}));
  EXPECT_FALSE(set.intersects(Interval{1.5, 1.5}));  // empty probe
}

TEST(IntervalSet, IntersectsSet) {
  IntervalSet a;
  a.add(0.0, 1.0);
  a.add(5.0, 6.0);
  IntervalSet b;
  b.add(1.0, 2.0);
  b.add(6.0, 7.0);
  EXPECT_FALSE(a.intersects(b));  // only touching
  b.add(5.5, 5.7);
  EXPECT_TRUE(a.intersects(b));
}

TEST(IntervalSet, FirstOverlapReportsPair) {
  IntervalSet a;
  a.add(0.0, 2.0);
  IntervalSet b;
  b.add(3.0, 4.0);
  EXPECT_FALSE(a.first_overlap(b).has_value());
  b.add(1.0, 1.5);
  const auto overlap = a.first_overlap(b);
  ASSERT_TRUE(overlap.has_value());
  EXPECT_DOUBLE_EQ(overlap->first.begin, 0.0);
  EXPECT_DOUBLE_EQ(overlap->second.begin, 1.0);
}

TEST(IntervalSet, Covers) {
  IntervalSet set;
  set.add(1.0, 5.0);
  EXPECT_TRUE(set.covers(Interval{2.0, 3.0}));
  EXPECT_TRUE(set.covers(Interval{1.0, 5.0}));
  EXPECT_FALSE(set.covers(Interval{0.5, 2.0}));
  EXPECT_TRUE(set.covers(Interval{2.0, 2.0}));  // empty trivially covered
}

TEST(IntervalSet, UnionWithSet) {
  IntervalSet a;
  a.add(0.0, 1.0);
  IntervalSet b;
  b.add(0.5, 2.0);
  b.add(3.0, 4.0);
  a.add(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.measure(), 3.0);
}

TEST(IntervalSet, EpsilonTouchingMergesIntoOne) {
  // Simulates the engine's close-then-reopen pattern at the same instant.
  IntervalSet set;
  set.add(0.0, 1.0);
  set.add(1.0 + 1e-10, 2.0);
  ASSERT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace ecs
