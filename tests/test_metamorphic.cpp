// Metamorphic tests: transformations of an instance with a known effect on
// the optimal/heuristic stretches.
//
//  * Time-scale invariance: multiplying every duration (work, up, down,
//    release) by a constant c > 0 leaves all stretches unchanged — stretch
//    is a dimensionless ratio, and every policy in this library makes
//    decisions from ratios and orderings only.
//  * Adding cloud capacity (statistically) never hurts SSF-EDF.
//  * Removing a job never increases the remaining jobs' optimal stretch on
//    a single machine.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "sched/factory.hpp"
#include "sched/offline/single_machine.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

Instance scaled(const Instance& instance, double c) {
  Instance out = instance;
  for (Job& job : out.jobs) {
    job.work *= c;
    job.release *= c;
    job.up *= c;
    job.down *= c;
  }
  return out;
}

class ScaleInvariance
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ScaleInvariance, StretchesUnchanged) {
  const auto& [policy_name, factor] = GetParam();
  RandomInstanceConfig cfg;
  cfg.n = 60;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = 0.3;
  Rng rng(41);
  const Instance base = make_random_instance(cfg, rng);
  const Instance big = scaled(base, factor);

  const auto p1 = make_policy(policy_name);
  const auto p2 = make_policy(policy_name);
  const ScheduleMetrics a =
      metrics_from_completions(base, simulate(base, *p1).completions);
  const ScheduleMetrics b =
      metrics_from_completions(big, simulate(big, *p2).completions);
  // Relative tolerance: the policies' binary searches have relative
  // epsilons, so tiny drifts are expected; structural decisions must not
  // change.
  EXPECT_NEAR(a.max_stretch / b.max_stretch, 1.0, 1e-3)
      << policy_name << " x" << factor;
  EXPECT_NEAR(a.mean_stretch / b.mean_stretch, 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndFactors, ScaleInvariance,
    ::testing::Combine(::testing::Values("edge-only", "greedy", "srpt",
                                         "ssf-edf", "fcfs"),
                       ::testing::Values(0.125, 8.0)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>&
           info) {
      std::string name = std::get<0>(info.param) + "_x" +
                         std::to_string(static_cast<int>(
                             std::get<1>(info.param) * 1000));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Metamorphic, MoreCloudNeverHurtsSsfEdfOnAverage) {
  double small_total = 0.0;
  double large_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomInstanceConfig cfg;
    cfg.n = 80;
    cfg.slow_edges = 2;
    cfg.fast_edges = 2;
    cfg.load = 0.4;
    cfg.cloud_count = 2;
    Rng rng1(seed);
    Instance instance = make_random_instance(cfg, rng1);
    const auto p1 = make_policy("ssf-edf");
    small_total +=
        metrics_from_completions(instance, simulate(instance, *p1).completions)
            .max_stretch;
    // Same jobs, doubled cloud. (The platform change does not alter the
    // stretch denominators: cloud speed stays 1.)
    instance.platform = Platform(instance.platform.edge_speeds(), 4);
    const auto p2 = make_policy("ssf-edf");
    large_total +=
        metrics_from_completions(instance, simulate(instance, *p2).completions)
            .max_stretch;
  }
  EXPECT_LE(large_total, small_total * 1.02);
}

TEST(Metamorphic, RemovingAJobNeverHurtsSingleMachineOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<SmJob> jobs;
    for (int i = 0; i < 10; ++i) {
      jobs.push_back(SmJob{rng.uniform(0.5, 6.0), rng.uniform(0.0, 20.0),
                           0.0});
    }
    const double full = optimal_max_stretch_single_machine(jobs).max_stretch;
    for (std::size_t drop = 0; drop < jobs.size(); drop += 3) {
      std::vector<SmJob> fewer = jobs;
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(drop));
      const double reduced =
          optimal_max_stretch_single_machine(fewer).max_stretch;
      EXPECT_LE(reduced, full + 1e-6) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ecs
