// Tests for the Failover decorator (sched/failover.hpp): exact transparency
// in fault-free runs, rerouting and evacuation under crashes, exponential
// backoff, blacklisting after repeated faults, graceful degradation to the
// edge, and the end-to-end guarantee that wrapping never loses to the naive
// base policy when faults are present.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "sched/failover.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

FaultPlan crash_plan(CloudId cloud, Time begin, Time end) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kCrash, cloud, begin, end});
  return plan;
}

TEST(Failover, FactoryPrefixAndName) {
  EXPECT_EQ(make_policy("failover-srpt")->name(), "Failover(SRPT)");
  EXPECT_EQ(make_policy("failover:greedy")->name(), "Failover(Greedy)");
  EXPECT_EQ(make_policy("failover-ssf-edf")->name(), "Failover(SSF-EDF)");
  EXPECT_THROW((void)make_policy("failover-nonsense"),
               std::invalid_argument);
}

TEST(Failover, ConfigValidation) {
  EXPECT_THROW(FailoverPolicy(nullptr), std::invalid_argument);
  FailoverConfig bad;
  bad.backoff_base = 0.0;
  EXPECT_THROW(FailoverPolicy(make_policy("greedy"), bad),
               std::invalid_argument);
  bad = FailoverConfig{};
  bad.blacklist_after = 0;
  EXPECT_THROW(FailoverPolicy(make_policy("greedy"), bad),
               std::invalid_argument);
}

TEST(Failover, ExactNoOpWithoutFaults) {
  // With an empty fault plan the wrapper must reproduce the base policy's
  // completion times EXACTLY — bit-identical, not merely close.
  RandomInstanceConfig cfg;
  cfg.n = 80;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  cfg.load = 0.3;
  for (const char* base : {"greedy", "srpt", "ssf-edf", "fcfs"}) {
    Rng rng(2026);
    const Instance instance = make_random_instance(cfg, rng);
    const auto naked = make_policy(base);
    const SimResult plain = simulate(instance, *naked);
    FailoverPolicy wrapped(make_policy(base));
    const SimResult guarded = simulate(instance, wrapped);
    ASSERT_EQ(plain.completions.size(), guarded.completions.size());
    for (std::size_t i = 0; i < plain.completions.size(); ++i) {
      EXPECT_EQ(plain.completions[i], guarded.completions[i])
          << base << " J" << i;
    }
    EXPECT_EQ(plain.stats.events, guarded.stats.events) << base;
  }
}

TEST(Failover, ReroutesAfterCrash) {
  // Cloud 0 (the fastest) crashes for a long window right after the upload
  // finished. The naive greedy policy re-assigns the job straight back to
  // cloud 0 and waits out the repair; failover observes the fault and
  // reroutes to cloud 1, finishing long before the repair.
  Instance instance;
  instance.platform = Platform({0.01}, {2.0, 1.0});
  instance.jobs = {{0, 0, 8.0, 0.0, 1.0, 1.0}};
  const FaultPlan plan = crash_plan(0, 2.0, 500.0);

  EngineConfig config;
  config.faults = plan;
  const auto naive = make_policy("greedy");
  const SimResult plain = simulate(instance, *naive, config);
  FailoverPolicy wrapped(make_policy("greedy"));
  const SimResult guarded = simulate(instance, wrapped, config);

  require_valid_schedule(instance, plain.schedule, plan);
  require_valid_schedule(instance, guarded.schedule, plan);
  // Rerouted: up 1 + work 8/1.0 + down 1 after the crash at 2 => ~12; the
  // naive run cannot finish before the repair at 500.
  EXPECT_LT(guarded.completions[0], 20.0);
  EXPECT_GT(plain.completions[0], 500.0);
  EXPECT_EQ(wrapped.fault_count(0), 1);
  EXPECT_FALSE(wrapped.blacklisted(0));
}

TEST(Failover, DegradesToEdgeWhenNoCloudLeft) {
  // Single cloud, crashed for practically the whole run: after the fault
  // there is no healthy cloud, so the job must fall back to its origin
  // edge even though the edge is slow.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  const FaultPlan plan = crash_plan(0, 1.5, 10000.0);
  EngineConfig config;
  config.faults = plan;
  FailoverPolicy wrapped(make_policy("greedy"));
  const SimResult guarded = simulate(instance, wrapped, config);
  require_valid_schedule(instance, guarded.schedule, plan);
  // Edge execution from the crash instant: 1.5 + 4/0.5 = 9.5.
  EXPECT_NEAR(guarded.completions[0], 9.5, 1e-9);
  EXPECT_EQ(guarded.schedule.job(0).final_run.alloc, kAllocEdge);
}

TEST(Failover, BlacklistsRepeatOffender) {
  // Cloud 0 crashes three times in a row (short repairs); with
  // blacklist_after = 3 the third incident writes it off even after its
  // recovery, and new placements keep avoiding it forever.
  Instance instance;
  instance.platform = Platform({0.05}, 1);
  // A stream of jobs so the policy keeps placing after each recovery.
  instance.jobs = {{0, 0, 5.0, 0.0, 1.0, 1.0},
                   {1, 0, 5.0, 60.0, 1.0, 1.0},
                   {2, 0, 5.0, 120.0, 1.0, 1.0},
                   {3, 0, 5.0, 180.0, 1.0, 1.0}};
  FaultPlan plan;
  plan.faults = {FaultSpec{FaultKind::kCrash, 0, 2.0, 10.0},
                 FaultSpec{FaultKind::kCrash, 0, 62.0, 70.0},
                 FaultSpec{FaultKind::kCrash, 0, 122.0, 130.0}};
  EngineConfig config;
  config.faults = plan;
  FailoverConfig fo;
  fo.backoff_base = 5.0;
  fo.blacklist_after = 3;
  FailoverPolicy wrapped(make_policy("greedy"), fo);
  const SimResult guarded = simulate(instance, wrapped, config);
  require_valid_schedule(instance, guarded.schedule, plan);
  EXPECT_EQ(wrapped.fault_count(0), 3);
  EXPECT_TRUE(wrapped.blacklisted(0));
  // The post-blacklist job never touches the cloud again.
  EXPECT_EQ(guarded.schedule.job(3).final_run.alloc, kAllocEdge);
  EXPECT_TRUE(guarded.schedule.job(3).abandoned.empty());
}

TEST(Failover, BackoffDefersReplacementAfterLoss) {
  // An uplink loss on the only cloud puts it in a backoff window; the next
  // job released inside the window is placed on the edge instead, even
  // though the cloud is up.
  Instance instance;
  instance.platform = Platform({0.2}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 2.0, 1.0},
                   {1, 0, 1.0, 3.0, 0.5, 0.5}};
  FaultPlan plan;
  plan.faults = {FaultSpec{FaultKind::kUplinkLoss, 0, 1.0, 1.0}};
  EngineConfig config;
  config.faults = plan;
  FailoverConfig fo;
  fo.backoff_base = 50.0;  // covers job 1's whole release window
  FailoverPolicy wrapped(make_policy("greedy"), fo);
  const SimResult guarded = simulate(instance, wrapped, config);
  require_valid_schedule(instance, guarded.schedule, plan);
  // Losses trigger backoff but never count toward the blacklist.
  EXPECT_EQ(wrapped.fault_count(0), 0);
  EXPECT_FALSE(wrapped.blacklisted(0));
  EXPECT_EQ(guarded.schedule.job(1).final_run.alloc, kAllocEdge);
}

TEST(Failover, BeatsNaiveUnderFaults) {
  // End-to-end acceptance check: on random instances with a recurring
  // crash plan, every wrapped policy achieves a max-stretch no worse than
  // its naive counterpart, and strictly better in aggregate.
  RandomInstanceConfig cfg;
  cfg.n = 50;
  cfg.cloud_count = 2;
  cfg.slow_edges = 2;
  cfg.fast_edges = 1;
  cfg.load = 0.3;
  FaultConfig fault_cfg;
  fault_cfg.crash_rate = 0.01;
  fault_cfg.mean_repair = 150.0;
  fault_cfg.horizon = 3000.0;

  double naive_total = 0.0;
  double wrapped_total = 0.0;
  for (const char* base : {"greedy", "srpt", "ssf-edf"}) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      Rng rng(seed);
      const Instance instance = make_random_instance(cfg, rng);
      Rng fault_rng(derive_seed(seed, hash_tag("faults")));
      EngineConfig config;
      config.faults = make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
      config.record_schedule = false;

      const auto naive = make_policy(base);
      const SimResult plain = simulate(instance, *naive, config);
      const auto wrapped = make_policy(std::string("failover-") + base);
      const SimResult guarded = simulate(instance, *wrapped, config);

      const double naive_stretch =
          metrics_from_completions(instance, plain.completions).max_stretch;
      const double wrapped_stretch =
          metrics_from_completions(instance, guarded.completions)
              .max_stretch;
      naive_total += naive_stretch;
      wrapped_total += wrapped_stretch;
    }
  }
  EXPECT_LT(wrapped_total, naive_total);
}

TEST(Failover, SurvivesValidationOnRandomFaultyRuns) {
  RandomInstanceConfig cfg;
  cfg.n = 40;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 1;
  cfg.load = 0.25;
  FaultConfig fault_cfg;
  fault_cfg.crash_rate = 0.008;
  fault_cfg.mean_repair = 80.0;
  fault_cfg.loss_rate = 0.01;
  fault_cfg.horizon = 2500.0;
  for (const char* name :
       {"failover-greedy", "failover-srpt", "failover-ssf-edf",
        "failover-edge-only"}) {
    Rng rng(404);
    const Instance instance = make_random_instance(cfg, rng);
    Rng fault_rng(405);
    RunOptions options;
    options.validate = true;
    options.engine.faults =
        make_fault_plan(cfg.cloud_count, fault_cfg, fault_rng);
    const RunOutcome outcome = run_policy(instance, name, options);
    EXPECT_TRUE(outcome.validated) << name;
    EXPECT_GE(outcome.metrics.max_stretch, 1.0 - 1e-6) << name;
  }
}

}  // namespace
}  // namespace ecs
