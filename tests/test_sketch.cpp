// Tests for the mergeable quantile sketch (obs/sketch.hpp): the documented
// relative-error bound against exact order statistics (including the exact
// stretch_percentile() of a 10k-job simulated instance), exact mergeability
// across worker shards, and the edge cases (zeros, negatives, non-finite).
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "exp/runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

/// Asserts the sketch's q-quantile lies within the relative-error band
/// around the bracketing order statistics of the sorted sample. The sketch
/// picks the order statistic of rank floor(q * (n - 1)); the exact
/// percentile() interpolates between neighbours, so the admissible band is
/// [lo * (1 - alpha), hi * (1 + alpha)] over both neighbours.
void expect_quantile_within(const obs::QuantileSketch& sketch,
                            std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const double lo = sorted[static_cast<std::size_t>(std::floor(rank))];
  const double hi = sorted[static_cast<std::size_t>(std::ceil(rank))];
  const double estimate = sketch.quantile(q);
  const double alpha = sketch.alpha();
  EXPECT_GE(estimate, lo * (1.0 - alpha) - 1e-12) << "q = " << q;
  EXPECT_LE(estimate, hi * (1.0 + alpha) + 1e-12) << "q = " << q;
}

TEST(Sketch, EmptyAndExactExtremes) {
  obs::QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  sketch.observe(3.0);
  sketch.observe(7.0);
  sketch.observe(5.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.min(), 3.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 7.0);
  // q = 0 / q = 1 return the exact observed extremes, not bucket midpoints.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 7.0);
  EXPECT_NEAR(sketch.mean(), 5.0, 1e-12);
}

TEST(Sketch, RelativeErrorBoundOnWideLogUniformSample) {
  // Values across six decades: the regime log buckets are built for.
  Rng rng(123);
  obs::QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-3.0, 3.0));
    values.push_back(v);
    sketch.observe(v);
  }
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    expect_quantile_within(sketch, values, q);
  }
}

TEST(Sketch, MatchesExactStretchPercentileOn10kJobInstance) {
  // The acceptance check of the sweep reports: sketch p50/p99 of the
  // per-job stretch distribution of a 10k-job run within the documented
  // relative-error bound of the exact ScheduleMetrics::stretch_percentile.
  RandomInstanceConfig cfg;
  cfg.n = 10000;
  cfg.ccr = 1.0;
  cfg.load = 0.5;
  Rng rng(42);
  const Instance instance = make_random_instance(cfg, rng);
  RunOptions options;
  options.validate = false;
  const RunOutcome outcome = run_policy(instance, "srpt", options);

  obs::QuantileSketch sketch;
  std::vector<double> stretches;
  for (const JobMetrics& jm : outcome.metrics.per_job) {
    sketch.observe(jm.stretch);
    stretches.push_back(jm.stretch);
  }
  ASSERT_EQ(sketch.count(), 10000u);
  for (const double q : {0.5, 0.9, 0.99}) {
    expect_quantile_within(sketch, stretches, q);
    // And against the interpolated exact percentile with the documented
    // relative bound (stretch >= 1, so relative tolerance is well-defined).
    const double exact = outcome.metrics.stretch_percentile(q);
    EXPECT_NEAR(sketch.quantile(q), exact,
                (sketch.alpha() + 1e-3) * exact + 1e-9)
        << "q = " << q;
  }
}

TEST(Sketch, MergeOfWorkerShardsEqualsSingleSketch) {
  // The sweep merges per-worker sketches; merging must reproduce the
  // single-observer sketch exactly (same buckets -> same quantiles).
  Rng rng(7);
  obs::QuantileSketch whole;
  std::vector<obs::QuantileSketch> shards(8, obs::QuantileSketch{});
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-2.0, 4.0));
    whole.observe(v);
    shards[static_cast<std::size_t>(i) % shards.size()].observe(v);
  }
  obs::QuantileSketch merged;
  // Deliberately merge in a scrambled order: merging is order-independent.
  for (const std::size_t s : {3u, 0u, 7u, 1u, 5u, 2u, 6u, 4u}) {
    merged.merge(shards[s]);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q = " << q;
  }
}

TEST(Sketch, MergeRejectsMismatchedAlpha) {
  obs::QuantileSketch coarse(0.05);
  obs::QuantileSketch fine(0.01);
  coarse.observe(1.0);
  EXPECT_THROW(fine.merge(coarse), std::invalid_argument);
  // Merging an empty same-alpha sketch is a no-op, not an error.
  obs::QuantileSketch other(0.01);
  fine.observe(2.0);
  fine.merge(other);
  EXPECT_EQ(fine.count(), 1u);
}

TEST(Sketch, ZeroNegativeAndNonFiniteInputs) {
  obs::QuantileSketch sketch;
  sketch.observe(0.0);
  sketch.observe(-5.0);  // clamps to 0: tracked quantities are non-negative
  sketch.observe(obs::QuantileSketch::kMinTrackable / 2.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  // min/max track the raw observations; the zero bucket only flattens ranks.
  EXPECT_DOUBLE_EQ(sketch.max(), obs::QuantileSketch::kMinTrackable / 2.0);
  sketch.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sketch.count(), 3u);  // NaN has no rank; dropped entirely
  EXPECT_THROW(obs::QuantileSketch{0.0}, std::invalid_argument);
  EXPECT_THROW(obs::QuantileSketch{1.0}, std::invalid_argument);
}

TEST(Sketch, MergeWithEmptyIsIdentityBothDirections) {
  obs::QuantileSketch filled;
  std::vector<double> values;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-1.0, 2.0));
    values.push_back(v);
    filled.observe(v);
  }
  // Nonempty.merge(empty): a no-op.
  obs::QuantileSketch empty;
  const std::uint64_t count_before = filled.count();
  const double p50_before = filled.quantile(0.5);
  filled.merge(empty);
  EXPECT_EQ(filled.count(), count_before);
  EXPECT_DOUBLE_EQ(filled.quantile(0.5), p50_before);
  // Empty.merge(nonempty): adopts the other's distribution exactly.
  obs::QuantileSketch adopted;
  adopted.merge(filled);
  EXPECT_EQ(adopted.count(), filled.count());
  EXPECT_DOUBLE_EQ(adopted.min(), filled.min());
  EXPECT_DOUBLE_EQ(adopted.max(), filled.max());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(adopted.quantile(q), filled.quantile(q)) << "q = " << q;
  }
  // Empty.merge(empty): still empty, still returns 0 quantiles.
  obs::QuantileSketch a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
}

TEST(Sketch, SelfMergeEqualsMergingACopy) {
  // merge(*this) aliases source and destination; it must behave exactly
  // like merging an independent copy (every count doubles, extremes and
  // quantile estimates unchanged).
  obs::QuantileSketch sketch;
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    sketch.observe(std::pow(10.0, rng.uniform(-2.0, 3.0)));
  }
  sketch.observe(0.0);  // engage the zero bucket too
  obs::QuantileSketch copy_merged = sketch;
  const obs::QuantileSketch copy = sketch;
  copy_merged.merge(copy);
  sketch.merge(sketch);
  EXPECT_EQ(sketch.count(), copy_merged.count());
  EXPECT_DOUBLE_EQ(sketch.min(), copy_merged.min());
  EXPECT_DOUBLE_EQ(sketch.max(), copy_merged.max());
  EXPECT_DOUBLE_EQ(sketch.sum(), copy_merged.sum());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), copy_merged.quantile(q))
        << "q = " << q;
  }
}

TEST(Sketch, MergeAcrossDisjointRangesAndCollapseStates) {
  // Shards in different regimes: one entirely in the zero bucket, one in
  // the small-value decades (negative bucket offsets), one in the large
  // decades (offsets past the other's range). Merging must grow the bucket
  // array in both directions and reproduce the single-observer sketch
  // bit-for-bit, regardless of merge direction.
  obs::QuantileSketch zeros, small, large, whole;
  for (int i = 0; i < 100; ++i) {
    zeros.observe(0.0);
    whole.observe(0.0);
  }
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double lo = std::pow(10.0, rng.uniform(-6.0, -3.0));
    const double hi = std::pow(10.0, rng.uniform(3.0, 6.0));
    small.observe(lo);
    large.observe(hi);
    whole.observe(lo);
    whole.observe(hi);
  }
  // large first, then small: forces a front-prepend of the bucket array.
  obs::QuantileSketch down;
  down.merge(large);
  down.merge(small);
  down.merge(zeros);
  // small first, then large: forces a back-resize instead.
  obs::QuantileSketch up;
  up.merge(zeros);
  up.merge(small);
  up.merge(large);
  EXPECT_EQ(down.count(), whole.count());
  EXPECT_EQ(up.count(), whole.count());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(down.quantile(q), whole.quantile(q)) << "q = " << q;
    EXPECT_DOUBLE_EQ(up.quantile(q), whole.quantile(q)) << "q = " << q;
  }
}

TEST(Sketch, MergedShardsKeepRelativeErrorBound) {
  // The documented 1% bound must hold for the MERGED sketch against the
  // exact order statistics of the union sample — merging shards of very
  // different ranges must not degrade the estimate.
  Rng rng(17);
  std::vector<obs::QuantileSketch> shards(4, obs::QuantileSketch{});
  std::vector<double> values;
  for (int s = 0; s < 4; ++s) {
    // Each shard covers its own decade band: [10^(s-2), 10^(s-1)).
    for (int i = 0; i < 3000; ++i) {
      const double v = std::pow(
          10.0, rng.uniform(static_cast<double>(s) - 2.0,
                            static_cast<double>(s) - 1.0));
      shards[static_cast<std::size_t>(s)].observe(v);
      values.push_back(v);
    }
  }
  obs::QuantileSketch merged;
  for (const obs::QuantileSketch& shard : shards) merged.merge(shard);
  ASSERT_EQ(merged.count(), values.size());
  EXPECT_DOUBLE_EQ(merged.alpha(), obs::QuantileSketch::kDefaultAlpha);
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    expect_quantile_within(merged, values, q);
  }
}

TEST(Sketch, ClearResetsEverything) {
  obs::QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.observe(static_cast<double>(i));
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 0.0);
}

}  // namespace
}  // namespace ecs
