// Tests for the mergeable quantile sketch (obs/sketch.hpp): the documented
// relative-error bound against exact order statistics (including the exact
// stretch_percentile() of a 10k-job simulated instance), exact mergeability
// across worker shards, and the edge cases (zeros, negatives, non-finite).
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "exp/runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

/// Asserts the sketch's q-quantile lies within the relative-error band
/// around the bracketing order statistics of the sorted sample. The sketch
/// picks the order statistic of rank floor(q * (n - 1)); the exact
/// percentile() interpolates between neighbours, so the admissible band is
/// [lo * (1 - alpha), hi * (1 + alpha)] over both neighbours.
void expect_quantile_within(const obs::QuantileSketch& sketch,
                            std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const double lo = sorted[static_cast<std::size_t>(std::floor(rank))];
  const double hi = sorted[static_cast<std::size_t>(std::ceil(rank))];
  const double estimate = sketch.quantile(q);
  const double alpha = sketch.alpha();
  EXPECT_GE(estimate, lo * (1.0 - alpha) - 1e-12) << "q = " << q;
  EXPECT_LE(estimate, hi * (1.0 + alpha) + 1e-12) << "q = " << q;
}

TEST(Sketch, EmptyAndExactExtremes) {
  obs::QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  sketch.observe(3.0);
  sketch.observe(7.0);
  sketch.observe(5.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.min(), 3.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 7.0);
  // q = 0 / q = 1 return the exact observed extremes, not bucket midpoints.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 7.0);
  EXPECT_NEAR(sketch.mean(), 5.0, 1e-12);
}

TEST(Sketch, RelativeErrorBoundOnWideLogUniformSample) {
  // Values across six decades: the regime log buckets are built for.
  Rng rng(123);
  obs::QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-3.0, 3.0));
    values.push_back(v);
    sketch.observe(v);
  }
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    expect_quantile_within(sketch, values, q);
  }
}

TEST(Sketch, MatchesExactStretchPercentileOn10kJobInstance) {
  // The acceptance check of the sweep reports: sketch p50/p99 of the
  // per-job stretch distribution of a 10k-job run within the documented
  // relative-error bound of the exact ScheduleMetrics::stretch_percentile.
  RandomInstanceConfig cfg;
  cfg.n = 10000;
  cfg.ccr = 1.0;
  cfg.load = 0.5;
  Rng rng(42);
  const Instance instance = make_random_instance(cfg, rng);
  RunOptions options;
  options.validate = false;
  const RunOutcome outcome = run_policy(instance, "srpt", options);

  obs::QuantileSketch sketch;
  std::vector<double> stretches;
  for (const JobMetrics& jm : outcome.metrics.per_job) {
    sketch.observe(jm.stretch);
    stretches.push_back(jm.stretch);
  }
  ASSERT_EQ(sketch.count(), 10000u);
  for (const double q : {0.5, 0.9, 0.99}) {
    expect_quantile_within(sketch, stretches, q);
    // And against the interpolated exact percentile with the documented
    // relative bound (stretch >= 1, so relative tolerance is well-defined).
    const double exact = outcome.metrics.stretch_percentile(q);
    EXPECT_NEAR(sketch.quantile(q), exact,
                (sketch.alpha() + 1e-3) * exact + 1e-9)
        << "q = " << q;
  }
}

TEST(Sketch, MergeOfWorkerShardsEqualsSingleSketch) {
  // The sweep merges per-worker sketches; merging must reproduce the
  // single-observer sketch exactly (same buckets -> same quantiles).
  Rng rng(7);
  obs::QuantileSketch whole;
  std::vector<obs::QuantileSketch> shards(8, obs::QuantileSketch{});
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-2.0, 4.0));
    whole.observe(v);
    shards[static_cast<std::size_t>(i) % shards.size()].observe(v);
  }
  obs::QuantileSketch merged;
  // Deliberately merge in a scrambled order: merging is order-independent.
  for (const std::size_t s : {3u, 0u, 7u, 1u, 5u, 2u, 6u, 4u}) {
    merged.merge(shards[s]);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q = " << q;
  }
}

TEST(Sketch, MergeRejectsMismatchedAlpha) {
  obs::QuantileSketch coarse(0.05);
  obs::QuantileSketch fine(0.01);
  coarse.observe(1.0);
  EXPECT_THROW(fine.merge(coarse), std::invalid_argument);
  // Merging an empty same-alpha sketch is a no-op, not an error.
  obs::QuantileSketch other(0.01);
  fine.observe(2.0);
  fine.merge(other);
  EXPECT_EQ(fine.count(), 1u);
}

TEST(Sketch, ZeroNegativeAndNonFiniteInputs) {
  obs::QuantileSketch sketch;
  sketch.observe(0.0);
  sketch.observe(-5.0);  // clamps to 0: tracked quantities are non-negative
  sketch.observe(obs::QuantileSketch::kMinTrackable / 2.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  // min/max track the raw observations; the zero bucket only flattens ranks.
  EXPECT_DOUBLE_EQ(sketch.max(), obs::QuantileSketch::kMinTrackable / 2.0);
  sketch.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sketch.count(), 3u);  // NaN has no rank; dropped entirely
  EXPECT_THROW(obs::QuantileSketch{0.0}, std::invalid_argument);
  EXPECT_THROW(obs::QuantileSketch{1.0}, std::invalid_argument);
}

TEST(Sketch, ClearResetsEverything) {
  obs::QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.observe(static_cast<double>(i));
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 0.0);
}

}  // namespace
}  // namespace ecs
