// Tests for the epsilon-aware time comparisons (core/time.hpp).
#include "core/time.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

TEST(Time, EqualWithinTolerance) {
  EXPECT_TRUE(time_eq(1.0, 1.0));
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(time_eq(1.0, 1.0 + 1e-6));
  EXPECT_FALSE(time_eq(1.0, 1.0 + 1e-3));
}

TEST(Time, ToleranceScalesWithMagnitude) {
  // At magnitude 1e7, absolute differences below 1e7 * kTimeEpsilon must be
  // treated as equal.
  const double big = 1e7;
  EXPECT_TRUE(time_eq(big, big + 1.0 * big * kTimeEpsilon / 2.0));
  EXPECT_FALSE(time_eq(big, big + 100.0 * big * kTimeEpsilon));
}

TEST(Time, StrictLess) {
  EXPECT_TRUE(time_lt(1.0, 2.0));
  EXPECT_FALSE(time_lt(2.0, 1.0));
  EXPECT_FALSE(time_lt(1.0, 1.0 + 1e-10));  // within tolerance => not less
}

TEST(Time, LessOrEqual) {
  EXPECT_TRUE(time_le(1.0, 2.0));
  EXPECT_TRUE(time_le(1.0 + 1e-10, 1.0));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

TEST(Time, GreaterMirrorsLess) {
  EXPECT_TRUE(time_gt(2.0, 1.0));
  EXPECT_FALSE(time_gt(1.0, 1.0 + 1e-10));
  EXPECT_TRUE(time_ge(1.0, 1.0 + 1e-10));
}

TEST(Time, AmountDone) {
  EXPECT_TRUE(amount_done(0.0));
  EXPECT_TRUE(amount_done(1e-9));
  EXPECT_TRUE(amount_done(-1e-9));
  EXPECT_FALSE(amount_done(0.5));
}

TEST(Time, ClampAmount) {
  EXPECT_EQ(clamp_amount(-1e-12), 0.0);
  EXPECT_EQ(clamp_amount(0.5), 0.5);
}

TEST(Time, ZeroVsZero) {
  EXPECT_TRUE(time_eq(0.0, 0.0));
  EXPECT_TRUE(time_le(0.0, 0.0));
  EXPECT_FALSE(time_lt(0.0, 0.0));
}

}  // namespace
}  // namespace ecs
