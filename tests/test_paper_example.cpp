// Reproduces the paper's Figure 1 worked example (section III-C) and
// verifies its claims end-to-end:
//  * the exhibited schedule is valid under the formal model;
//  * the per-job stretches match the paper (1, 1, 6/5, 5/4, 6/5, 1);
//  * the max-stretch is 5/4 and no fixed-priority schedule beats it;
//  * the online heuristics produce valid schedules on the instance.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "sched/fixed.hpp"
#include "sched/offline/brute_force.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

// Paper job parameters; J3/J5's communication times are reconstructed as
// (up, dn) = (2, 1), the unique values consistent with the paper's stated
// cloud time of 5, stretches of 6/5, and the time-6 snapshot (an uplink and
// a downlink in flight).
Instance figure1_instance() {
  Instance instance;
  instance.platform = Platform({1.0 / 3.0}, 1);
  instance.jobs = {
      {0, 0, 1.0, 0.0, 5.0, 5.0},        // J1
      {1, 0, 4.0, 0.0, 2.0, 2.0},        // J2
      {2, 0, 2.0, 3.0, 2.0, 1.0},        // J3
      {3, 0, 4.0 / 3.0, 5.0, 5.0, 5.0},  // J4
      {4, 0, 2.0, 5.0, 2.0, 1.0},        // J5
      {5, 0, 1.0 / 3.0, 6.0, 5.0, 5.0},  // J6
  };
  return instance;
}

// The paper's allocation and an equivalent priority order.
SimResult replay_paper_schedule(const Instance& instance) {
  const std::vector<int> alloc = {kAllocEdge, 0, 0, kAllocEdge, 0,
                                  kAllocEdge};
  const std::vector<double> priority = {1, 2, 3, 5, 4, 0};
  FixedPolicy policy(alloc, priority);
  return simulate(instance, policy);
}

TEST(PaperExample, ScheduleIsValid) {
  const Instance instance = figure1_instance();
  const SimResult sim = replay_paper_schedule(instance);
  const auto violations = validate_schedule(instance, sim.schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST(PaperExample, CompletionTimesMatchFigure) {
  const Instance instance = figure1_instance();
  const SimResult sim = replay_paper_schedule(instance);
  EXPECT_NEAR(sim.completions[0], 3.0, 1e-9);   // J1 edge [0,3)
  EXPECT_NEAR(sim.completions[1], 8.0, 1e-9);   // J2 cloud, down ends 8
  EXPECT_NEAR(sim.completions[2], 9.0, 1e-9);   // J3 cloud, down ends 9
  EXPECT_NEAR(sim.completions[3], 10.0, 1e-9);  // J4 edge, preempted by J6
  EXPECT_NEAR(sim.completions[4], 11.0, 1e-9);  // J5 cloud, down ends 11
  EXPECT_NEAR(sim.completions[5], 7.0, 1e-9);   // J6 edge [6,7)
}

TEST(PaperExample, StretchesMatchPaper) {
  const Instance instance = figure1_instance();
  const SimResult sim = replay_paper_schedule(instance);
  const ScheduleMetrics m = compute_metrics(instance, sim.schedule);
  EXPECT_NEAR(m.per_job[0].stretch, 1.0, 1e-9);
  EXPECT_NEAR(m.per_job[1].stretch, 1.0, 1e-9);
  EXPECT_NEAR(m.per_job[2].stretch, 6.0 / 5.0, 1e-9);
  EXPECT_NEAR(m.per_job[3].stretch, 5.0 / 4.0, 1e-9);
  EXPECT_NEAR(m.per_job[4].stretch, 6.0 / 5.0, 1e-9);
  EXPECT_NEAR(m.per_job[5].stretch, 1.0, 1e-9);
  EXPECT_NEAR(m.max_stretch, 1.25, 1e-9);
}

TEST(PaperExample, J6PreemptsJ4AtTime6) {
  const Instance instance = figure1_instance();
  const SimResult sim = replay_paper_schedule(instance);
  // J4's execution is split around [6,7).
  const IntervalSet& exec = sim.schedule.job(3).final_run.exec;
  ASSERT_EQ(exec.size(), 2u);
  EXPECT_NEAR(exec.intervals()[0].begin, 5.0, 1e-9);
  EXPECT_NEAR(exec.intervals()[0].end, 6.0, 1e-9);
  EXPECT_NEAR(exec.intervals()[1].begin, 7.0, 1e-9);
  EXPECT_NEAR(exec.intervals()[1].end, 10.0, 1e-9);
  // J6 runs exactly in the gap.
  const IntervalSet& j6 = sim.schedule.job(5).final_run.exec;
  ASSERT_EQ(j6.size(), 1u);
  EXPECT_NEAR(j6.intervals()[0].begin, 6.0, 1e-9);
  EXPECT_NEAR(j6.intervals()[0].end, 7.0, 1e-9);
}

TEST(PaperExample, BruteForceConfirmsOptimality) {
  const Instance instance = figure1_instance();
  const BruteForceResult best = brute_force_edge_cloud(instance);
  // The paper states the exhibited schedule is optimal: 5/4.
  EXPECT_NEAR(best.max_stretch, 1.25, 1e-6);
}

TEST(PaperExample, HeuristicsProduceValidSchedules) {
  const Instance instance = figure1_instance();
  for (const std::string& name : policy_names()) {
    RunOptions options;
    options.validate = true;
    const RunOutcome outcome = run_policy(instance, name, options);
    EXPECT_TRUE(outcome.validated) << name;
    EXPECT_GE(outcome.metrics.max_stretch, 1.25 - 1e-9)
        << name << " beat the proven optimum — impossible";
  }
}

TEST(PaperExample, IntroductoryStretchAnecdote) {
  // Section I: two jobs (1h and 10h) released together on one processor.
  // Long first: max-stretch 11; short first: 1.1.
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.0, 0.0}, {1, 0, 10.0, 0.0, 0.0, 0.0}};

  FixedPolicy long_first({kAllocEdge, kAllocEdge}, {1.0, 0.0});
  const SimResult a = simulate(instance, long_first);
  EXPECT_NEAR(compute_metrics(instance, a.schedule).max_stretch, 11.0, 1e-9);

  FixedPolicy short_first({kAllocEdge, kAllocEdge}, {0.0, 1.0});
  const SimResult b = simulate(instance, short_first);
  EXPECT_NEAR(compute_metrics(instance, b.schedule).max_stretch, 1.1, 1e-9);
}

}  // namespace
}  // namespace ecs
