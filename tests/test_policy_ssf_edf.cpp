// Tests for the SSF-EDF heuristic (sched/ssf_edf.hpp, paper section V-D).
#include "sched/ssf_edf.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

TEST(SsfEdf, SingleJobAchievesStretchOne) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 1.0, 3.0, 3.0}};  // edge 4 < cloud 8
  SsfEdfPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_NEAR(m.max_stretch, 1.0, 1e-6);
  EXPECT_EQ(result.schedule.job(0).final_run.alloc, kAllocEdge);
}

TEST(SsfEdf, TargetStretchTracksOptimum) {
  // Two independent jobs whose best resources differ (edge speed 0.5:
  // J0's edge time 4 < its cloud time 22; J1's cloud time 6 < its edge
  // time 10), so both can run undisturbed: target stretch ~1.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 10.0, 10.0},   // edge is best
                   {1, 0, 5.0, 0.0, 0.5, 0.5}};    // cloud is best
  SsfEdfPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_NEAR(m.max_stretch, 1.0, 1e-3);
  EXPECT_NEAR(policy.last_target_stretch(), 1.0, 2e-3);
}

TEST(SsfEdf, DeadlineOrderProtectsSmallJobs) {
  // The paper's fairness scenario: a 1-unit and a 10-unit job released
  // together on one machine; SSF-EDF must schedule the small one first.
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 10.0, 0.0, 0.0, 0.0}, {1, 0, 1.0, 0.0, 0.0, 0.0}};
  SsfEdfPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_NEAR(m.max_stretch, 1.1, 1e-3);
}

TEST(SsfEdf, RespectsAlphaParameter) {
  // alpha scales the deadlines; with alpha >> 1 deadlines are loose but
  // the schedule must stay valid (and typically gets no better).
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 3.0, 0.0, 0.5, 0.5},
                   {1, 0, 1.0, 0.5, 0.5, 0.5},
                   {2, 0, 2.0, 1.0, 0.5, 0.5}};
  SsfEdfConfig config;
  config.alpha = 4.0;
  SsfEdfPolicy policy(config);
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
}

TEST(SsfEdf, CoarseEpsilonStillValid) {
  SsfEdfConfig config;
  config.epsilon = 0.5;
  RandomInstanceConfig cfg;
  cfg.n = 60;
  cfg.cloud_count = 3;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  Rng rng(11);
  const Instance instance = make_random_instance(cfg, rng);
  SsfEdfPolicy policy(config);
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
}

TEST(SsfEdf, FinerEpsilonNeverWorseOnAverage) {
  // Statistical: over several seeds, eps 1e-3 should on average beat (or
  // match) eps 0.5. A small slack guards against lucky coarse runs.
  double coarse_total = 0.0;
  double fine_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomInstanceConfig cfg;
    cfg.n = 120;
    cfg.cloud_count = 4;
    cfg.slow_edges = 3;
    cfg.fast_edges = 3;
    cfg.load = 0.3;
    Rng rng(seed);
    const Instance instance = make_random_instance(cfg, rng);

    SsfEdfConfig coarse;
    coarse.epsilon = 0.5;
    SsfEdfPolicy coarse_policy(coarse);
    coarse_total += compute_metrics(
        instance, simulate(instance, coarse_policy).schedule).max_stretch;

    SsfEdfConfig fine;
    fine.epsilon = 1e-3;
    SsfEdfPolicy fine_policy(fine);
    fine_total += compute_metrics(
        instance, simulate(instance, fine_policy).schedule).max_stretch;
  }
  EXPECT_LE(fine_total, coarse_total * 1.10);
}

TEST(SsfEdf, PaperNonOptimalityExampleStillSchedules) {
  // Section V-D's counterexample to EDF optimality: two jobs, one cloud
  // processor, EDF-by-deadline sends the wrong job first. Our SSF-EDF is
  // EDF-based so it may be suboptimal here — but it must produce a valid
  // schedule, and the brute-force optimum is strictly better or equal.
  Instance instance;
  // Jobs executed on the cloud: w = 3, up = 3, dn = 0 (communication times
  // chosen so that uplink serialization causes the effect).
  instance.platform = Platform({0.01}, 1);
  instance.jobs = {{0, 0, 3.0, 0.0, 3.0, 0.0}, {1, 0, 3.0, 0.0, 3.0, 0.0}};
  SsfEdfPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // Uplinks serialize on the edge send port: completions 6 and 9.
  std::vector<Time> completions = result.completions;
  std::sort(completions.begin(), completions.end());
  EXPECT_NEAR(completions[0], 6.0, 1e-6);
  EXPECT_NEAR(completions[1], 9.0, 1e-6);
}

TEST(SsfEdf, ManyEventsStayConsistent) {
  RandomInstanceConfig cfg;
  cfg.n = 200;
  cfg.cloud_count = 5;
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  cfg.load = 0.5;
  Rng rng(3);
  const Instance instance = make_random_instance(cfg, rng);
  SsfEdfPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_GE(m.max_stretch, 1.0);
  for (const JobMetrics& jm : m.per_job) {
    EXPECT_GT(jm.completion, 0.0);
    EXPECT_GE(jm.stretch, 1.0 - 1e-9);
  }
}

}  // namespace
}  // namespace ecs
