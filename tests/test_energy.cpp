// Tests for energy accounting (core/energy.hpp) and the stretch-norm
// metrics extensions (core/metrics.hpp).
#include "core/energy.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

Instance two_job_instance() {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0}, {1, 0, 2.0, 0.0, 1.0, 1.0}};
  return instance;
}

Schedule hand_schedule() {
  // J0 on the edge [0,4); J1 on cloud 0: up [0,1), exec [1,3), down [3,4).
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 4.0);
  schedule.job(1).final_run.alloc = 0;
  schedule.job(1).final_run.uplink.add(0.0, 1.0);
  schedule.job(1).final_run.exec.add(1.0, 3.0);
  schedule.job(1).final_run.downlink.add(3.0, 4.0);
  return schedule;
}

TEST(Energy, HandComputedBreakdown) {
  const Instance instance = two_job_instance();
  const Schedule schedule = hand_schedule();
  EnergyModel model;
  model.edge_compute_power = 1.0;
  model.cloud_compute_power = 8.0;
  model.uplink_power = 2.0;
  model.downlink_power = 1.2;
  model.edge_idle_power = 0.1;
  model.cloud_idle_power = 2.0;
  const EnergyBreakdown e = compute_energy(instance, schedule, model);
  EXPECT_DOUBLE_EQ(e.edge_compute, 4.0 * 1.0);
  EXPECT_DOUBLE_EQ(e.cloud_compute, 2.0 * 8.0);
  EXPECT_DOUBLE_EQ(e.communication, 1.0 * 2.0 + 1.0 * 1.2);
  // Horizon 4: edge busy 4 of 4 (idle 0); cloud busy 2 of 4 (idle 2).
  EXPECT_DOUBLE_EQ(e.idle, 0.0 * 0.1 + 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(e.wasted, 0.0);
  EXPECT_DOUBLE_EQ(e.total,
                   e.edge_compute + e.cloud_compute + e.communication +
                       e.idle);
}

TEST(Energy, AbandonedRunsCountAsWaste) {
  Instance instance = two_job_instance();
  Schedule schedule = hand_schedule();
  RunRecord abandoned;
  abandoned.alloc = 0;
  abandoned.uplink.add(4.0, 4.5);  // half an uplink thrown away
  schedule.job(0).abandoned.push_back(abandoned);
  const EnergyBreakdown e = compute_energy(instance, schedule);
  EXPECT_DOUBLE_EQ(e.wasted, 0.5 * EnergyModel{}.uplink_power);
  EXPECT_GT(e.communication, 0.5 * EnergyModel{}.uplink_power);
}

TEST(Energy, EmptyScheduleIsZero) {
  Instance instance = two_job_instance();
  const Schedule schedule(2);
  const EnergyBreakdown e = compute_energy(instance, schedule);
  EXPECT_DOUBLE_EQ(e.total, 0.0);
}

TEST(Energy, EdgeOnlySpendsNoCommunicationEnergy) {
  RandomInstanceConfig cfg;
  cfg.n = 50;
  cfg.cloud_count = 2;
  cfg.slow_edges = 2;
  cfg.fast_edges = 2;
  Rng rng(12);
  const Instance instance = make_random_instance(cfg, rng);
  const auto policy = make_policy("edge-only");
  const SimResult sim = simulate(instance, *policy);
  const EnergyBreakdown e = compute_energy(instance, sim.schedule);
  EXPECT_DOUBLE_EQ(e.communication, 0.0);
  EXPECT_DOUBLE_EQ(e.cloud_compute, 0.0);
  EXPECT_GT(e.edge_compute, 0.0);
}

TEST(Energy, CloudHeuristicsTradeEnergyForStretch) {
  // On a compute-intensive workload the cloud-using heuristics beat
  // Edge-Only on stretch but pay for it in active energy (cloud compute +
  // radios), idle power excluded from the comparison.
  RandomInstanceConfig cfg;
  cfg.n = 80;
  cfg.cloud_count = 3;
  cfg.slow_edges = 3;
  cfg.fast_edges = 3;
  cfg.ccr = 0.1;
  cfg.load = 0.3;
  Rng rng(9);
  const Instance instance = make_random_instance(cfg, rng);

  const auto edge_only = make_policy("edge-only");
  const SimResult a = simulate(instance, *edge_only);
  const EnergyBreakdown ea = compute_energy(instance, a.schedule);
  const double stretch_a =
      compute_metrics(instance, a.schedule).max_stretch;

  const auto ssf = make_policy("ssf-edf");
  const SimResult b = simulate(instance, *ssf);
  const EnergyBreakdown eb = compute_energy(instance, b.schedule);
  const double stretch_b =
      compute_metrics(instance, b.schedule).max_stretch;

  EXPECT_LT(stretch_b, stretch_a);
  const double active_a = ea.total - ea.idle;
  const double active_b = eb.total - eb.idle;
  EXPECT_GT(active_b, active_a);
}

TEST(StretchNorms, OrderingAndLimits) {
  const Instance instance = two_job_instance();
  const Schedule schedule = hand_schedule();
  const ScheduleMetrics m = compute_metrics(instance, schedule);
  // p = 1 is the mean; norms are nondecreasing in p and bounded by max.
  EXPECT_NEAR(m.stretch_norm(1.0), m.mean_stretch, 1e-12);
  EXPECT_LE(m.stretch_norm(1.0), m.stretch_norm(2.0) + 1e-12);
  EXPECT_LE(m.stretch_norm(2.0), m.stretch_norm(8.0) + 1e-12);
  EXPECT_LE(m.stretch_norm(8.0), m.max_stretch + 1e-12);
  EXPECT_NEAR(m.stretch_norm(64.0), m.max_stretch, 0.05);
  EXPECT_THROW((void)m.stretch_norm(0.0), std::invalid_argument);
}

TEST(StretchNorms, Percentiles) {
  const Instance instance = two_job_instance();
  const Schedule schedule = hand_schedule();
  const ScheduleMetrics m = compute_metrics(instance, schedule);
  EXPECT_NEAR(m.stretch_percentile(1.0), m.max_stretch, 1e-12);
  EXPECT_LE(m.stretch_percentile(0.5), m.max_stretch);
  EXPECT_GE(m.stretch_percentile(0.0), 1.0 - 1e-12);
}

}  // namespace
}  // namespace ecs
