// Tests for the online invariant watchdog (obs/watchdog.hpp). Synthetic
// trace streams inject each violation kind in isolation and the watchdog
// must flag it at the offending record, linking the decision provenance of
// the jobs involved; every engine-produced run must come out clean. These
// are the online twins of the offline validator tests (test_validate.cpp):
// the same one-port / precedence / migration invariants, caught mid-run.
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/provenance.hpp"
#include "obs/reason.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

obs::TraceMeta two_job_meta() {
  obs::TraceMeta meta;
  meta.policy = "synthetic";
  meta.edge_count = 2;
  meta.cloud_count = 2;
  meta.job_count = 2;
  return meta;
}

obs::TraceRecord release_at(JobId job, Time t, EdgeId origin = 0) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kInstant;
  rec.point = obs::TracePoint::kRelease;
  rec.job = job;
  rec.origin = origin;
  rec.begin = rec.end = t;
  return rec;
}

/// A provenance directive: the decision that placed `job` on `target`.
obs::TraceRecord directive(JobId job, int run, int source, int target,
                           Time t, EdgeId origin = 0) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kInstant;
  rec.point = obs::TracePoint::kDirective;
  rec.job = job;
  rec.run = run;
  rec.alloc = target;
  rec.cloud = source;
  rec.origin = origin;
  rec.begin = rec.end = t;
  rec.reason = static_cast<int>(ReasonCode::kSrptShortestRemaining);
  return rec;
}

obs::TraceRecord span(obs::TracePoint point, JobId job, int run, int alloc,
                      EdgeId origin, Time begin, Time end) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kSpan;
  rec.point = point;
  rec.job = job;
  rec.run = run;
  rec.alloc = alloc;
  rec.origin = origin;
  rec.begin = begin;
  rec.end = end;
  return rec;
}

/// Feeds a synthetic record stream (in non-decreasing close time, as the
/// engine emits it) and returns the watchdog for inspection.
obs::InvariantWatchdog run_stream(const std::vector<obs::TraceRecord>& recs) {
  obs::InvariantWatchdog watchdog;
  watchdog.begin_trace(two_job_meta());
  for (const obs::TraceRecord& rec : recs) watchdog.record(rec);
  watchdog.end_trace(recs.empty() ? 0.0 : recs.back().end);
  return watchdog;
}

bool has_kind(const obs::InvariantWatchdog& watchdog,
              obs::InvariantKind kind) {
  for (const obs::InvariantViolation& v : watchdog.violations()) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(Watchdog, CleanStreamPasses) {
  // J0 on edge 0; J1 via cloud 0: a conforming pipeline.
  const auto wd = run_stream({
      release_at(0, 0.0), release_at(1, 0.0),
      directive(0, 0, kAllocUnassigned, kAllocEdge, 0.0),
      directive(1, 0, kAllocUnassigned, 0, 0.0),
      span(obs::TracePoint::kUplink, 1, 0, 0, 0, 0.0, 1.0),
      span(obs::TracePoint::kExec, 1, 0, 0, 0, 1.0, 3.0),
      span(obs::TracePoint::kExec, 0, 0, kAllocEdge, 0, 0.0, 4.0),
      span(obs::TracePoint::kDownlink, 1, 0, 0, 0, 3.0, 4.0),
  });
  EXPECT_TRUE(wd.ok());
  EXPECT_EQ(wd.violation_count(), 0u);
  EXPECT_EQ(wd.spans_checked(), 4u);
}

TEST(Watchdog, FlagsOnePortSendConflictAtOffendingEvent) {
  // Two jobs uploading from edge 0 at overlapping times (to different
  // clouds, so only the edge's send port is oversubscribed).
  const auto wd = run_stream({
      release_at(0, 0.0), release_at(1, 0.0),
      directive(0, 0, kAllocUnassigned, 0, 0.0),
      directive(1, 0, kAllocUnassigned, 1, 0.0),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 2.0),
      span(obs::TracePoint::kUplink, 1, 0, 1, 0, 1.0, 3.0),  // offender
  });
  EXPECT_FALSE(wd.ok());
  ASSERT_TRUE(has_kind(wd, obs::InvariantKind::kPortConflict));
  const obs::InvariantViolation& v = wd.violations().front();
  EXPECT_EQ(v.kind, obs::InvariantKind::kPortConflict);
  // Flagged AT the offending record, naming the other holder of the port.
  EXPECT_EQ(v.offending.job, 1);
  EXPECT_DOUBLE_EQ(v.offending.begin, 1.0);
  EXPECT_EQ(v.other_job, 0);
  // ... and carrying the decisions that put both jobs there.
  ASSERT_GE(v.provenance.size(), 1u);
  bool offender_decision = false;
  for (const obs::ProvenanceRecord& p : v.provenance) {
    offender_decision |= p.job == 1 && p.kind == obs::ProvenanceKind::kAssign;
  }
  EXPECT_TRUE(offender_decision);
}

TEST(Watchdog, FlagsCloudReceivePortConflict) {
  // Different edges, same cloud, overlapping uplinks: the cloud's receive
  // port is the oversubscribed resource.
  const auto wd = run_stream({
      release_at(0, 0.0, 0), release_at(1, 0.0, 1),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 2.0),
      span(obs::TracePoint::kUplink, 1, 0, 0, 1, 1.0, 3.0),
  });
  EXPECT_TRUE(has_kind(wd, obs::InvariantKind::kPortConflict));
}

TEST(Watchdog, FullDuplexOverlapIsAllowed) {
  // An uplink and a downlink on the same edge/cloud pair may overlap: the
  // send and receive ports are distinct.
  const auto wd = run_stream({
      release_at(0, 0.0), release_at(1, 0.0),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 1.0),
      span(obs::TracePoint::kExec, 0, 0, 0, 0, 1.0, 3.0),
      span(obs::TracePoint::kUplink, 1, 0, 0, 0, 3.0, 4.0),
      span(obs::TracePoint::kDownlink, 0, 0, 0, 0, 3.0, 4.0),
  });
  EXPECT_TRUE(wd.ok());
}

TEST(Watchdog, FlagsProcessorConflict) {
  const auto wd = run_stream({
      release_at(0, 0.0), release_at(1, 0.0),
      span(obs::TracePoint::kExec, 0, 0, kAllocEdge, 0, 0.0, 4.0),
      span(obs::TracePoint::kExec, 1, 0, kAllocEdge, 0, 1.0, 5.0),
  });
  ASSERT_TRUE(has_kind(wd, obs::InvariantKind::kProcessorConflict));
  EXPECT_EQ(wd.violations().front().other_job, 0);
}

TEST(Watchdog, FlagsBrokenPrecedenceAtOffendingEvent) {
  // Execution starts at 1.0 while the run's uplink runs until 2.0.
  const auto wd = run_stream({
      release_at(0, 0.0),
      directive(0, 0, kAllocUnassigned, 0, 0.0),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 2.0),
      span(obs::TracePoint::kExec, 0, 0, 0, 0, 1.0, 3.0),  // offender
  });
  EXPECT_FALSE(wd.ok());
  ASSERT_TRUE(has_kind(wd, obs::InvariantKind::kPrecedence));
  const obs::InvariantViolation& v = wd.violations().front();
  EXPECT_EQ(v.offending.point, obs::TracePoint::kExec);
  EXPECT_DOUBLE_EQ(v.offending.begin, 1.0);
  // The linked provenance explains which decision placed the run.
  ASSERT_GE(v.provenance.size(), 1u);
  EXPECT_EQ(v.provenance.front().job, 0);
}

TEST(Watchdog, FlagsDownlinkBeforeExecEnd) {
  const auto wd = run_stream({
      release_at(0, 0.0),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 1.0),
      span(obs::TracePoint::kDownlink, 0, 0, 0, 0, 1.0, 2.0),
      span(obs::TracePoint::kExec, 0, 0, 0, 0, 1.0, 3.0),
  });
  EXPECT_TRUE(has_kind(wd, obs::InvariantKind::kPrecedence));
}

TEST(Watchdog, FlagsMigrationWithinARun) {
  // Run 0 observed on cloud 0 and then cloud 1: progress migrated, which
  // the model forbids (a move requires a new run from zero).
  const auto wd = run_stream({
      release_at(0, 0.0),
      span(obs::TracePoint::kExec, 0, 0, 0, 0, 0.0, 1.0),
      span(obs::TracePoint::kExec, 0, 0, 1, 0, 2.0, 3.0),
  });
  ASSERT_TRUE(has_kind(wd, obs::InvariantKind::kMigration));
  // The same shape with a bumped run index is the legal re-execution.
  const auto wd2 = run_stream({
      release_at(0, 0.0),
      span(obs::TracePoint::kExec, 0, 0, 0, 0, 0.0, 1.0),
      span(obs::TracePoint::kExec, 0, 1, 1, 0, 2.0, 3.0),
  });
  EXPECT_TRUE(wd2.ok());
}

TEST(Watchdog, FlagsSelfOverlapAndBeforeRelease) {
  const auto overlap = run_stream({
      release_at(0, 0.0),
      span(obs::TracePoint::kExec, 0, 0, kAllocEdge, 0, 0.0, 2.0),
      span(obs::TracePoint::kExec, 0, 1, kAllocEdge, 0, 1.0, 3.0),
  });
  EXPECT_TRUE(has_kind(overlap, obs::InvariantKind::kSelfOverlap));

  const auto early = run_stream({
      release_at(0, 5.0),
      span(obs::TracePoint::kExec, 0, 0, kAllocEdge, 0, 4.5, 6.0),
  });
  EXPECT_TRUE(has_kind(early, obs::InvariantKind::kBeforeRelease));
}

TEST(Watchdog, ReportNamesViolationAndProvenance) {
  const auto wd = run_stream({
      release_at(0, 0.0), release_at(1, 0.0),
      directive(0, 0, kAllocUnassigned, 0, 0.0),
      directive(1, 0, kAllocUnassigned, 1, 0.0),
      span(obs::TracePoint::kUplink, 0, 0, 0, 0, 0.0, 2.0),
      span(obs::TracePoint::kUplink, 1, 0, 1, 0, 1.0, 3.0),
  });
  std::ostringstream out;
  wd.report(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("port-conflict"), std::string::npos);
  EXPECT_NE(text.find("provenance"), std::string::npos);
}

TEST(Watchdog, EngineRunsComeOutClean) {
  // Every engine-produced stream must satisfy the invariants, including
  // under unannounced faults and message losses.
  RandomInstanceConfig cfg;
  cfg.n = 120;
  cfg.ccr = 1.0;
  cfg.load = 0.8;
  Rng rng(11);
  const Instance instance = make_random_instance(cfg, rng);
  FaultConfig fault_cfg;
  fault_cfg.crash_rate = 0.01;
  fault_cfg.loss_rate = 0.01;
  fault_cfg.mean_repair = 20.0;
  Rng fault_rng(13);
  const FaultPlan plan =
      make_fault_plan(instance.platform.cloud_count(), fault_cfg, fault_rng);
  for (const char* name :
       {"greedy", "srpt", "ssf-edf", "failover-srpt", "edge-only"}) {
    obs::InvariantWatchdog watchdog;
    EngineConfig config;
    config.watchdog = &watchdog;  // no user trace sink: engine tees itself
    config.faults = plan;
    const auto policy = make_policy(name);
    (void)simulate(instance, *policy, config);
    EXPECT_TRUE(watchdog.ok()) << name << ": " << [&] {
      std::ostringstream out;
      watchdog.report(out);
      return out.str();
    }();
    EXPECT_GT(watchdog.spans_checked(), 0u) << name;
  }
}

}  // namespace
}  // namespace ecs
