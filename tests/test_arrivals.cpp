// Tests for the seeded arrival families (workloads/arrivals.hpp): stream
// contract (sequential ids, non-decreasing releases, exhaustion), bitwise
// determinism, long-run rate calibration of every synthetic family, and
// the trace-file reader's loud failures.
#include "workloads/arrivals.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace ecs {
namespace {

ArrivalConfig base_config(ArrivalFamily family, std::int64_t n) {
  ArrivalConfig cfg;
  cfg.family = family;
  cfg.n = n;
  cfg.rate = 2.0;
  cfg.seed = 42;
  cfg.shape.edge_count = 4;
  return cfg;
}

std::vector<Job> drain(ArrivalStream& stream) {
  std::vector<Job> jobs;
  while (auto job = stream.next()) jobs.push_back(*job);
  return jobs;
}

const ArrivalFamily kSynthetic[] = {
    ArrivalFamily::kPoisson, ArrivalFamily::kDiurnal, ArrivalFamily::kBursty,
    ArrivalFamily::kPareto};

TEST(Arrivals, StreamContractHoldsForEverySyntheticFamily) {
  for (const ArrivalFamily family : kSynthetic) {
    const ArrivalConfig cfg = base_config(family, 500);
    const auto stream = make_arrival_stream(cfg);
    EXPECT_EQ(stream->remaining(), 500);
    const std::vector<Job> jobs = drain(*stream);
    ASSERT_EQ(jobs.size(), 500u) << to_string(family);
    EXPECT_EQ(stream->remaining(), 0);
    EXPECT_FALSE(stream->next().has_value());  // exhaustion is sticky
    Time prev = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Job& j = jobs[i];
      EXPECT_EQ(j.id, static_cast<JobId>(i));
      EXPECT_GE(j.release, prev) << to_string(family) << " job " << i;
      prev = j.release;
      EXPECT_GE(j.origin, 0);
      EXPECT_LT(j.origin, cfg.shape.edge_count);
      EXPECT_GE(j.work, cfg.shape.work_min);
      EXPECT_LE(j.work, cfg.shape.work_max);
      EXPECT_GE(j.up, cfg.shape.ccr * cfg.shape.work_min);
      EXPECT_LE(j.up, cfg.shape.ccr * cfg.shape.work_max);
      EXPECT_GE(j.down, cfg.shape.ccr * cfg.shape.work_min);
      EXPECT_LE(j.down, cfg.shape.ccr * cfg.shape.work_max);
    }
  }
}

TEST(Arrivals, SameConfigSameStream) {
  for (const ArrivalFamily family : kSynthetic) {
    const ArrivalConfig cfg = base_config(family, 200);
    const std::vector<Job> a = drain(*make_arrival_stream(cfg));
    const std::vector<Job> b = drain(*make_arrival_stream(cfg));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << to_string(family) << " job " << i;
    }
    ArrivalConfig other = cfg;
    other.seed = cfg.seed + 1;
    const std::vector<Job> c = drain(*make_arrival_stream(other));
    ASSERT_EQ(c.size(), a.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == c[i])) any_diff = true;
    }
    EXPECT_TRUE(any_diff) << to_string(family) << ": seed has no effect";
  }
}

TEST(Arrivals, LongRunRateMatchesTheConfiguredRate) {
  // Every family advertises `rate` as its long-run mean arrival rate; over
  // 50k jobs the empirical rate must land near it. Pareto gets the widest
  // band (alpha 1.5 converges slowly), the bursty MMPP a wide one too
  // (phase sojourns correlate arrivals).
  struct Case { ArrivalFamily family; double tol; };
  const Case cases[] = {{ArrivalFamily::kPoisson, 0.05},
                        {ArrivalFamily::kDiurnal, 0.05},
                        {ArrivalFamily::kBursty, 0.15},
                        {ArrivalFamily::kPareto, 0.25}};
  for (const Case& c : cases) {
    const ArrivalConfig cfg = base_config(c.family, 50'000);
    const std::vector<Job> jobs = drain(*make_arrival_stream(cfg));
    const double horizon = jobs.back().release;
    ASSERT_GT(horizon, 0.0);
    const double rate = static_cast<double>(jobs.size()) / horizon;
    EXPECT_NEAR(rate, cfg.rate, cfg.rate * c.tol) << to_string(c.family);
  }
}

TEST(Arrivals, FamilyNamesRoundTrip) {
  for (const ArrivalFamily family : kSynthetic) {
    EXPECT_EQ(parse_arrival_family(to_string(family)), family);
  }
  EXPECT_EQ(parse_arrival_family("trace"), ArrivalFamily::kTrace);
  EXPECT_THROW((void)parse_arrival_family("uniform"), std::invalid_argument);
}

TEST(Arrivals, InvalidConfigsThrowEagerly) {
  {
    ArrivalConfig cfg = base_config(ArrivalFamily::kPoisson, 10);
    cfg.rate = 0.0;
    EXPECT_THROW((void)make_arrival_stream(cfg), std::invalid_argument);
  }
  {
    ArrivalConfig cfg = base_config(ArrivalFamily::kDiurnal, 10);
    cfg.diurnal_amplitude = 1.0;  // peak-rate envelope would be tight
    EXPECT_THROW((void)make_arrival_stream(cfg), std::invalid_argument);
  }
  {
    ArrivalConfig cfg = base_config(ArrivalFamily::kBursty, 10);
    cfg.burst_factor = 1.0;
    EXPECT_THROW((void)make_arrival_stream(cfg), std::invalid_argument);
  }
  {
    ArrivalConfig cfg = base_config(ArrivalFamily::kPareto, 10);
    cfg.pareto_alpha = 1.0;  // infinite mean gap
    EXPECT_THROW((void)make_arrival_stream(cfg), std::invalid_argument);
  }
  {
    ArrivalConfig cfg = base_config(ArrivalFamily::kTrace, 10);
    cfg.trace_path.clear();
    EXPECT_THROW((void)make_arrival_stream(cfg), std::invalid_argument);
  }
}

// ---------------------------------------------------------------- trace file

class TraceFile {
 public:
  explicit TraceFile(const std::string& content)
      : path_("/tmp/ecs_arrivals_trace_test.csv") {
    std::ofstream out(path_);
    out << content;
  }
  ~TraceFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TraceArrivals, ReadsJobsInOrder) {
  const TraceFile file(
      "# a comment\n"
      "\n"
      "job,0,1,2.5,0,1,1\n"
      "job,1,0,3.5,1.25,2,2\n"
      "job,2,1,1.5,1.25,1,1\n");  // tied releases are fine
  TraceArrivalStream stream(file.path());
  const std::vector<Job> jobs = drain(stream);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id, 0);
  EXPECT_DOUBLE_EQ(jobs[0].work, 2.5);
  EXPECT_EQ(jobs[1].origin, 0);
  EXPECT_DOUBLE_EQ(jobs[2].release, 1.25);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(TraceArrivals, AcceptsTrailingLineWithoutNewline) {
  const TraceFile file("job,0,0,1,0,1,1\njob,1,0,1,1,1,1");
  TraceArrivalStream stream(file.path());
  EXPECT_EQ(drain(stream).size(), 2u);
}

TEST(TraceArrivals, MissingFileThrows) {
  EXPECT_THROW(TraceArrivalStream("/nonexistent/nope.csv"),
               std::runtime_error);
}

void expect_fail_with_context(const std::string& content,
                              const std::string& needle) {
  const TraceFile file(content);
  TraceArrivalStream stream(file.path());
  try {
    while (stream.next().has_value()) {
    }
    FAIL() << "expected a parse failure containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    EXPECT_NE(what.find(file.path() + ":"), std::string::npos)
        << "no file:line context in: " << what;
  }
}

TEST(TraceArrivals, CorruptFilesFailLoudlyWithLineContext) {
  // Truncated record (field count) — and the error names line 2.
  expect_fail_with_context("job,0,0,1,0,1,1\njob,1,0,1\n", ":2:");
  // Garbage value.
  expect_fail_with_context("job,0,0,not_a_number,0,1,1\n", "bad work");
  // Wrong record kind.
  expect_fail_with_context("edges,0.5\n", "expected a job record");
  // Negative id.
  expect_fail_with_context("job,-1,0,1,0,1,1\n", "negative job id");
  // Out-of-order releases.
  expect_fail_with_context("job,0,0,1,5,1,1\njob,1,0,1,2,1,1\n",
                           "non-decreasing");
}

}  // namespace
}  // namespace ecs
