// Tests for completion-time projection (sim/projection.hpp).
#include "sim/projection.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

Platform small_platform() { return Platform({0.5}, 2); }

JobState fresh_state(const Platform& platform, Job job) {
  JobState s;
  s.job = job;
  s.best_time = platform.best_time(job);
  s.released = true;
  return s;
}

TEST(Projection, RemainingOnFreshTargets) {
  const Platform platform = small_platform();
  JobState s = fresh_state(platform, {0, 0, 4.0, 0.0, 1.0, 2.0});
  const RemainingAmounts edge = remaining_on(s, kAllocEdge);
  EXPECT_DOUBLE_EQ(edge.work, 4.0);
  EXPECT_DOUBLE_EQ(edge.up, 0.0);
  EXPECT_DOUBLE_EQ(edge.down, 0.0);
  const RemainingAmounts cloud = remaining_on(s, 0);
  EXPECT_DOUBLE_EQ(cloud.up, 1.0);
  EXPECT_DOUBLE_EQ(cloud.work, 4.0);
  EXPECT_DOUBLE_EQ(cloud.down, 2.0);
}

TEST(Projection, RemainingOnCurrentAllocationKeepsProgress) {
  const Platform platform = small_platform();
  JobState s = fresh_state(platform, {0, 0, 4.0, 0.0, 1.0, 2.0});
  s.alloc = 0;
  s.rem_up = 0.0;    // uploaded
  s.rem_work = 1.5;  // partially computed
  s.rem_down = 2.0;
  const RemainingAmounts keep = remaining_on(s, 0);
  EXPECT_DOUBLE_EQ(keep.up, 0.0);
  EXPECT_DOUBLE_EQ(keep.work, 1.5);
  // Moving to the other cloud resends everything.
  const RemainingAmounts move = remaining_on(s, 1);
  EXPECT_DOUBLE_EQ(move.up, 1.0);
  EXPECT_DOUBLE_EQ(move.work, 4.0);
}

TEST(Projection, UncontendedCompletionEdgeAndCloud) {
  const Platform platform = small_platform();
  const JobState s = fresh_state(platform, {0, 0, 4.0, 0.0, 1.0, 2.0});
  // Edge: 4 / 0.5 = 8; cloud: 1 + 4 + 2 = 7; at now = 10.
  EXPECT_DOUBLE_EQ(uncontended_completion(platform, s, kAllocEdge, 10.0),
                   18.0);
  EXPECT_DOUBLE_EQ(uncontended_completion(platform, s, 0, 10.0), 17.0);
  EXPECT_DOUBLE_EQ(best_uncontended_completion(platform, s, 10.0), 17.0);
}

TEST(Projection, BestUncontendedUsesProgressOnCurrentCloud) {
  const Platform platform = small_platform();
  JobState s = fresh_state(platform, {0, 0, 4.0, 0.0, 1.0, 2.0});
  s.alloc = 1;
  s.rem_up = 0.0;
  s.rem_work = 0.5;
  s.rem_down = 2.0;
  // Continuing on cloud 1: 2.5 < fresh cloud 7 < edge 8.
  EXPECT_DOUBLE_EQ(best_uncontended_completion(platform, s, 0.0), 2.5);
}

TEST(Projection, ResourceClockEdgeQueueing) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState a = fresh_state(platform, {0, 0, 2.0, 0.0, 10.0, 10.0});
  const JobState b = fresh_state(platform, {1, 0, 1.0, 0.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(clock.commit(platform, a, kAllocEdge), 4.0);
  // Second job queues behind the first on the same edge CPU.
  EXPECT_DOUBLE_EQ(clock.commit(platform, b, kAllocEdge), 6.0);
}

TEST(Projection, ResourceClockCloudPipeline) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState a = fresh_state(platform, {0, 0, 2.0, 0.0, 1.0, 1.0});
  const JobState b = fresh_state(platform, {1, 0, 2.0, 0.0, 1.0, 1.0});
  // a on cloud 0: up [0,1), exec [1,3), down [3,4).
  EXPECT_DOUBLE_EQ(clock.commit(platform, a, 0), 4.0);
  // b on cloud 1: its uplink waits for the shared edge send port:
  // up [1,2), exec [2,4), down: edge receive port is free until a's
  // downlink [3,4)... b's downlink starts at max(4, 0, 4) = 4 -> 5.
  EXPECT_DOUBLE_EQ(clock.commit(platform, b, 1), 5.0);
}

TEST(Projection, ResourceClockSameCloudSerializesCompute) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState a = fresh_state(platform, {0, 0, 3.0, 0.0, 0.0, 0.0});
  const JobState b = fresh_state(platform, {1, 0, 3.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(clock.commit(platform, a, 0), 3.0);
  EXPECT_DOUBLE_EQ(clock.commit(platform, b, 0), 6.0);
  // The other cloud is still free.
  EXPECT_DOUBLE_EQ(clock.project(platform, b, 1), 3.0);
}

TEST(Projection, BestTargetPrefersFasterOption) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState s = fresh_state(platform, {0, 0, 4.0, 0.0, 1.0, 1.0});
  const auto [target, done] = clock.best_target(platform, s);
  // Cloud: 6 < edge: 8.
  EXPECT_EQ(target, 0);
  EXPECT_DOUBLE_EQ(done, 6.0);
}

TEST(Projection, BestTargetFallsBackToEdgeWhenCloudsBusy) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState blocker = fresh_state(platform, {0, 0, 50.0, 0.0, 0.0, 0.0});
  (void)clock.commit(platform, blocker, 0);
  (void)clock.commit(platform, blocker, 1);
  const JobState s = fresh_state(platform, {1, 0, 4.0, 0.0, 1.0, 1.0});
  const auto [target, done] = clock.best_target(platform, s);
  EXPECT_EQ(target, kAllocEdge);
  EXPECT_DOUBLE_EQ(done, 8.0);
}

TEST(Projection, ZeroDownlinkSkipsReceivePort) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState s = fresh_state(platform, {0, 0, 2.0, 0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(clock.commit(platform, s, 0), 3.0);  // up 1 + work 2
}

TEST(Projection, UploadedJobIgnoresOtherUplinksOnSharedPorts) {
  // Regression: a job whose uplink is already complete must not inherit
  // delays from other jobs' committed uplinks on the same send/receive
  // ports — only the cloud CPU matters for its remaining execution.
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState other = fresh_state(platform, {1, 0, 1.0, 0.0, 100.0, 0.0});
  (void)clock.commit(platform, other, 1);  // send port busy until t=100
  JobState uploaded = fresh_state(platform, {0, 0, 5.0, 0.0, 2.0, 0.0});
  uploaded.alloc = 0;
  uploaded.rem_up = 0.0;
  uploaded.rem_work = 5.0;
  uploaded.rem_down = 0.0;
  // Cloud 0's CPU is free: the projection must be 5, not 100 + 5.
  EXPECT_DOUBLE_EQ(clock.project(platform, uploaded, 0), 5.0);
}

TEST(Projection, ProjectDoesNotMutateClock) {
  const Platform platform = small_platform();
  ResourceClock clock(platform, 0.0);
  const JobState s = fresh_state(platform, {0, 0, 2.0, 0.0, 1.0, 1.0});
  const Time first = clock.project(platform, s, 0);
  const Time second = clock.project(platform, s, 0);
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace ecs
