// reference_policies.hpp - Frozen pre-optimization policy implementations.
//
// Verbatim ports of the online policies as they stood BEFORE the O(live)
// arbitration rewrite (full view.states() scans, fresh heap buffers every
// decide(), std::function-driven cold stretch search, a freshly
// constructed ResourceClock per probe). They are deliberately NOT kept in
// sync with src/sched/: their whole value is staying frozen so
// test_policy_equivalence.cpp can assert the optimized policies produce
// bit-identical schedules, and bench_policy_micro can quantify the
// speedup against the original cost model.
//
// Only the Policy entry point was adapted (the optimized interface passes
// an output buffer); each reference decide() still builds a fresh local
// vector exactly like the original and copies it out, preserving the old
// allocation behavior.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "sched/common.hpp"
#include "sched/edge_only.hpp"
#include "sched/failover.hpp"
#include "sched/srpt.hpp"
#include "sched/ssf_edf.hpp"
#include "sim/projection.hpp"

namespace ecs {
namespace ref {

/// Pre-rewrite live_jobs(): the O(n) full-state scan every policy ran,
/// returning a fresh vector (ids ascending, matching the engine's sorted
/// live set).
inline std::vector<JobId> live_jobs_scan(const SimView& view) {
  std::vector<JobId> out;
  for (const JobState& s : view.states()) {
    if (s.live()) out.push_back(s.job.id);
  }
  return out;
}

/// Pre-rewrite doubling + bisection, std::function-driven and always cold
/// (no warm hint).
inline double min_feasible_stretch(
    double lo, double epsilon, int max_iterations,
    const std::function<bool(double)>& feasible) {
  double hi = std::max(lo, 1.0);
  int iterations = 0;
  while (!feasible(hi) && iterations < max_iterations) {
    hi *= 2.0;
    ++iterations;
  }
  double best = hi;
  double cursor = lo;
  while ((best - cursor) > epsilon * best && iterations < max_iterations) {
    const double mid = 0.5 * (cursor + best);
    if (feasible(mid)) {
      best = mid;
    } else {
      cursor = mid;
    }
    ++iterations;
  }
  return best;
}

/// Pre-rewrite list assignment: constructs a fresh ResourceClock (full
/// lane allocation) per call and returns a fresh directive vector. Kept
/// here because the optimized src/sched variant reuses a bound clock.
inline std::vector<Directive> list_assign_directives(
    const SimView& view, const std::vector<OrderedJob>& order) {
  const Platform& platform = view.platform();
  const Time now = view.now();
  ResourceClock clock(view.instance(), now);
  std::vector<Directive> directives;
  directives.reserve(order.size());
  double priority = 0.0;
  for (const OrderedJob& entry : order) {
    const JobState& s = view.state(entry.id);
    const auto [target, done] = best_target_sticky(platform, clock, s);
    (void)done;
    const bool immediate = clock.starts_now(platform, s, target, now);
    clock.commit(platform, s, target);
    directives.push_back(
        Directive{entry.id, immediate ? target : kTargetKeep, priority});
    priority += 1.0;
  }
  return directives;
}

class FcfsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "RefFCFS"; }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    (void)events;
    std::vector<OrderedJob> order;
    for (const JobState& s : view.states()) {
      if (!s.live()) continue;
      order.push_back(OrderedJob{s.job.id, s.job.release});
    }
    sort_ordered(order);
    std::vector<Directive> directives =
        ref::list_assign_directives(view, order);
    out.insert(out.end(), directives.begin(), directives.end());
  }
};

class GreedyPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "RefGreedy"; }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    (void)events;
    constexpr double kSwitchMargin = 0.10;
    const Platform& platform = view.platform();
    const Time now = view.now();

    std::vector<JobId> candidates = live_jobs_scan(view);
    std::vector<char> edge_free(platform.edge_count(), 1);
    std::vector<char> cloud_free(platform.cloud_count(), 1);

    std::vector<Directive> directives;
    directives.reserve(candidates.size());
    double priority = 0.0;

    while (!candidates.empty()) {
      double best_value = -1.0;
      double best_tiebreak = std::numeric_limits<double>::infinity();
      std::size_t best_pos = candidates.size();
      int best_resource = kAllocUnassigned;
      const int fresh = pick_fresh_cloud(view, cloud_free);

      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        const JobState& s = view.state(candidates[pos]);
        double min_stretch = std::numeric_limits<double>::infinity();
        int argmin = kAllocUnassigned;
        double keep_stretch = std::numeric_limits<double>::infinity();
        const auto stretch_on = [&](int target) {
          const Time done = uncontended_completion(
              view.instance(), s, target == kTargetKeep ? s.alloc : target,
              now);
          return stretch_of(platform, s.job, done);
        };
        const auto consider = [&](int target) {
          const double stretch = stretch_on(target);
          if (stretch < min_stretch - kDecisionMargin) {
            min_stretch = stretch;
            argmin = target;
          }
        };
        int keep_target = kAllocUnassigned;
        if (s.alloc != kAllocUnassigned) {
          const bool own_free =
              s.alloc == kAllocEdge ? edge_free[s.job.origin] != 0
                                    : cloud_free[s.alloc] != 0;
          keep_target = own_free ? s.alloc : kTargetKeep;
          keep_stretch = stretch_on(keep_target);
          min_stretch = keep_stretch;
          argmin = keep_target;
        }
        if (edge_free[s.job.origin] && s.alloc != kAllocEdge) {
          consider(kAllocEdge);
        }
        if (fresh >= 0 && fresh != s.alloc) consider(fresh);
        if (argmin == kAllocUnassigned) continue;
        if (keep_target != kAllocUnassigned && argmin != keep_target &&
            min_stretch > keep_stretch * (1.0 - kSwitchMargin)) {
          argmin = keep_target;
          min_stretch = keep_stretch;
        }
        const bool wins =
            min_stretch > best_value + kDecisionMargin ||
            (min_stretch > best_value - kDecisionMargin &&
             s.best_time < best_tiebreak);
        if (wins) {
          best_value = min_stretch;
          best_tiebreak = s.best_time;
          best_pos = pos;
          best_resource = argmin;
        }
      }

      if (best_pos == candidates.size()) break;
      const JobId chosen = candidates[best_pos];
      directives.push_back(Directive{chosen, best_resource, priority});
      priority += 1.0;
      if (best_resource == kAllocEdge) {
        edge_free[view.state(chosen).job.origin] = 0;
      } else if (best_resource != kTargetKeep) {
        cloud_free[best_resource] = 0;
      }
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(best_pos));
    }
    out.insert(out.end(), directives.begin(), directives.end());
  }
};

class SrptPolicy final : public Policy {
 public:
  SrptPolicy() = default;
  explicit SrptPolicy(const SrptConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "RefSRPT"; }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    (void)events;
    const Time now = view.now();

    std::vector<JobId> candidates = live_jobs_scan(view);
    std::vector<char> edge_free(view.platform().edge_count(), 1);
    std::vector<char> cloud_free(view.platform().cloud_count(), 1);

    std::vector<Directive> directives;
    directives.reserve(candidates.size());
    double priority = 0.0;

    while (!candidates.empty()) {
      Time best_done = kTimeInfinity;
      std::size_t best_pos = candidates.size();
      int best_resource = kAllocUnassigned;
      const int fresh = pick_fresh_cloud(view, cloud_free);

      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        const JobState& s = view.state(candidates[pos]);
        const auto consider = [&](int target) {
          const Time done = uncontended_completion(
              view.instance(), s, target == kTargetKeep ? s.alloc : target,
              now);
          if (done < best_done - kDecisionMargin) {
            best_done = done;
            best_pos = pos;
            best_resource = target;
          }
        };
        if (s.alloc != kAllocUnassigned) {
          const bool own_free =
              s.alloc == kAllocEdge ? edge_free[s.job.origin] != 0
                                    : cloud_free[s.alloc] != 0;
          consider(own_free ? s.alloc : kTargetKeep);
        }
        const bool may_restart =
            config_.allow_reexecution || s.alloc == kAllocUnassigned;
        if (may_restart) {
          if (edge_free[s.job.origin] && s.alloc != kAllocEdge) {
            consider(kAllocEdge);
          }
          if (fresh >= 0 && fresh != s.alloc) consider(fresh);
        }
      }

      if (best_pos == candidates.size()) break;
      const JobId chosen = candidates[best_pos];
      directives.push_back(Directive{chosen, best_resource, priority});
      priority += 1.0;
      if (best_resource == kAllocEdge) {
        edge_free[view.state(chosen).job.origin] = 0;
      } else if (best_resource != kTargetKeep) {
        cloud_free[best_resource] = 0;
      }
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(best_pos));
    }
    out.insert(out.end(), directives.begin(), directives.end());
  }

 private:
  SrptConfig config_;
};

class SsfEdfPolicy final : public Policy {
 public:
  SsfEdfPolicy() = default;
  explicit SsfEdfPolicy(const SsfEdfConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "RefSSF-EDF"; }

  void reset(const Instance& instance) override {
    deadlines_.assign(instance.jobs.size(), kTimeInfinity);
  }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    if (contains_release(events)) {
      recompute_deadlines(view);
    }
    std::vector<OrderedJob> order;
    for (const JobState& s : view.states()) {
      if (!s.live()) continue;
      order.push_back(OrderedJob{s.job.id, deadlines_[s.job.id]});
    }
    sort_ordered(order);
    std::vector<Directive> directives =
        ref::list_assign_directives(view, order);
    out.insert(out.end(), directives.begin(), directives.end());
  }

 private:
  bool feasible(const SimView& view, double stretch,
                std::vector<double>* deadlines_out) const {
    const Platform& platform = view.platform();
    const Time now = view.now();
    std::vector<OrderedJob> entries;
    for (const JobState& s : view.states()) {
      if (!s.live()) continue;
      entries.push_back(
          OrderedJob{s.job.id, s.job.release + stretch * s.best_time});
    }
    sort_ordered(entries);

    ResourceClock clock(view.instance(), now);
    bool ok = true;
    for (const OrderedJob& e : entries) {
      const JobState& s = view.state(e.id);
      const auto [target, done] = best_target_sticky(platform, clock, s);
      clock.commit(platform, s, target);
      if (time_gt(done, e.key)) {
        ok = false;
        break;
      }
    }
    if (ok && deadlines_out != nullptr) {
      for (const OrderedJob& e : entries) (*deadlines_out)[e.id] = e.key;
    }
    return ok;
  }

  void recompute_deadlines(const SimView& view) {
    const Platform& platform = view.platform();
    const Time now = view.now();
    double lo = 1.0;
    bool any_live = false;
    for (const JobState& s : view.states()) {
      if (!s.live()) continue;
      any_live = true;
      const Time best_done = best_uncontended_completion(platform, s, now);
      lo = std::max(lo, (best_done - s.job.release) / s.best_time);
    }
    if (!any_live) return;

    const double best_feasible = ref::min_feasible_stretch(
        lo, config_.epsilon, config_.max_iterations,
        [&](double s) { return feasible(view, s, nullptr); });

    const double target = config_.alpha * best_feasible;
    if (!feasible(view, target, &deadlines_)) {
      (void)feasible(view, best_feasible, &deadlines_);
    }
  }

  SsfEdfConfig config_;
  std::vector<double> deadlines_;
};

class EdgeOnlyPolicy final : public Policy {
 public:
  EdgeOnlyPolicy() = default;
  explicit EdgeOnlyPolicy(const EdgeOnlyConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "RefEdge-Only"; }

  void reset(const Instance& instance) override {
    deadlines_.assign(instance.jobs.size(), kTimeInfinity);
  }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    std::vector<char> touched(view.platform().edge_count(), 0);
    for (const Event& e : events) {
      if (e.kind == EventKind::kRelease) {
        touched[view.state(e.job).job.origin] = 1;
      }
    }
    for (EdgeId j = 0; j < view.platform().edge_count(); ++j) {
      if (touched[j]) recompute_edge_deadlines(view, j);
    }
    for (const JobState& s : view.states()) {
      if (!s.live()) continue;
      out.push_back(Directive{s.job.id, kAllocEdge, deadlines_[s.job.id]});
    }
  }

 private:
  bool feasible_on_edge(const SimView& view, EdgeId j, double stretch,
                        std::vector<double>* deadlines_out) const {
    struct Entry {
      JobId id;
      double deadline;
      double exec_time;
    };
    const Platform& platform = view.platform();
    const double speed = platform.edge_speed(j);
    std::vector<Entry> entries;
    for (const JobState& s : view.states()) {
      if (!s.live() || s.job.origin != j) continue;
      const double rem_work =
          (s.alloc == kAllocEdge) ? clamp_amount(s.rem_work) : s.job.work;
      entries.push_back(Entry{s.job.id,
                              s.job.release + stretch * s.best_time,
                              rem_work / speed});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.deadline != b.deadline ? a.deadline < b.deadline
                                                : a.id < b.id;
              });
    Time cursor = view.now();
    for (const Entry& e : entries) {
      cursor += e.exec_time;
      if (time_gt(cursor, e.deadline)) return false;
    }
    if (deadlines_out != nullptr) {
      for (const Entry& e : entries) (*deadlines_out)[e.id] = e.deadline;
    }
    return true;
  }

  void recompute_edge_deadlines(const SimView& view, EdgeId j) {
    const double speed = view.platform().edge_speed(j);
    double lo = 1.0;
    bool any = false;
    for (const JobState& s : view.states()) {
      if (!s.live() || s.job.origin != j) continue;
      any = true;
      const double rem_work =
          (s.alloc == kAllocEdge) ? clamp_amount(s.rem_work) : s.job.work;
      const Time best_done = view.now() + rem_work / speed;
      lo = std::max(lo, (best_done - s.job.release) / s.best_time);
    }
    if (!any) return;

    const double best = ref::min_feasible_stretch(
        lo, config_.epsilon, config_.max_iterations,
        [&](double s) { return feasible_on_edge(view, j, s, nullptr); });
    (void)feasible_on_edge(view, j, best, &deadlines_);
  }

  EdgeOnlyConfig config_;
  std::vector<double> deadlines_;
};

class FailoverPolicy final : public Policy {
 public:
  explicit FailoverPolicy(std::unique_ptr<Policy> base,
                          FailoverConfig config = {})
      : base_(std::move(base)), config_(config) {
    if (base_ == nullptr) {
      throw std::invalid_argument("ref::FailoverPolicy: null base policy");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "RefFailover(" + base_->name() + ")";
  }

  void reset(const Instance& instance) override {
    const std::size_t pc =
        static_cast<std::size_t>(instance.platform.cloud_count());
    failures_.assign(pc, 0);
    retry_at_.assign(pc, -kTimeInfinity);
    down_.assign(pc, 0);
    base_->reset(instance);
  }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    constexpr double kEvacuationPriority = 1e15;
    const Time now = view.now();

    std::vector<char> faulted(failures_.size(), 0);
    std::vector<char> crashed(failures_.size(), 0);
    for (const Event& e : events) {
      if (e.cloud < 0 ||
          static_cast<std::size_t>(e.cloud) >= failures_.size()) {
        continue;
      }
      if (e.kind == EventKind::kFault) {
        faulted[e.cloud] = 1;
        if (e.job < 0) {
          crashed[e.cloud] = 1;
          down_[e.cloud] = 1;
        }
      } else if (e.kind == EventKind::kRecovery) {
        down_[e.cloud] = 0;
      }
    }
    for (std::size_t k = 0; k < faulted.size(); ++k) {
      if (faulted[k] == 0) continue;
      if (crashed[k] != 0) ++failures_[k];
      const double delay =
          std::min(config_.backoff_max,
                   config_.backoff_base *
                       std::pow(config_.backoff_factor,
                                std::max(failures_[k], 1) - 1));
      retry_at_[k] = std::max(retry_at_[k], now + delay);
    }

    std::vector<int> cloud_load(failures_.size(), 0);
    for (const JobState& s : view.states()) {
      if (s.live() && is_cloud_alloc(s.alloc) &&
          static_cast<std::size_t>(s.alloc) < cloud_load.size()) {
        ++cloud_load[s.alloc];
      }
    }
    std::vector<Directive> directives;
    base_->decide(view, events, directives);
    std::vector<char> directed(view.states().size(), 0);
    for (Directive& d : directives) {
      if (d.job < 0 || static_cast<std::size_t>(d.job) >= directed.size()) {
        continue;
      }
      directed[d.job] = 1;
      const JobState& s = view.state(d.job);
      const int effective = d.target == kTargetKeep ? s.alloc : d.target;
      if (!is_cloud_alloc(effective) ||
          static_cast<std::size_t>(effective) >= failures_.size()) {
        continue;
      }
      if (d.target == kTargetKeep || effective == s.alloc) {
        if (evacuate(effective)) {
          d.target = reroute_target(view, s, now, cloud_load);
        }
      } else if (avoid_new(effective, now)) {
        d.target = reroute_target(view, s, now, cloud_load);
      }
    }

    for (const JobState& s : view.states()) {
      if (!s.live() || directed[s.job.id] != 0) continue;
      if (!is_cloud_alloc(s.alloc) ||
          static_cast<std::size_t>(s.alloc) >= failures_.size() ||
          !evacuate(s.alloc)) {
        continue;
      }
      directives.push_back(Directive{
          s.job.id, reroute_target(view, s, now, cloud_load),
          kEvacuationPriority});
    }
    out.insert(out.end(), directives.begin(), directives.end());
  }

 private:
  [[nodiscard]] bool blacklisted(CloudId k) const {
    return failures_.at(k) >= config_.blacklist_after;
  }
  [[nodiscard]] bool avoid_new(CloudId k, Time now) const {
    return down_[k] != 0 || blacklisted(k) || now < retry_at_[k];
  }
  [[nodiscard]] bool evacuate(CloudId k) const {
    return down_[k] != 0 || blacklisted(k);
  }
  [[nodiscard]] int reroute_target(const SimView& view, const JobState& state,
                                   Time now,
                                   std::vector<int>& cloud_load) const {
    const Platform& platform = view.platform();
    CloudId best_cloud = -1;
    for (CloudId k = 0; k < platform.cloud_count(); ++k) {
      if (avoid_new(k, now)) continue;
      if (best_cloud < 0 ||
          platform.cloud_speed(k) > platform.cloud_speed(best_cloud) ||
          (platform.cloud_speed(k) == platform.cloud_speed(best_cloud) &&
           cloud_load[k] < cloud_load[best_cloud])) {
        best_cloud = k;
      }
    }
    if (best_cloud < 0) return kAllocEdge;
    const Time on_cloud =
        uncontended_completion(view.instance(), state, best_cloud, now);
    const Time on_edge =
        uncontended_completion(view.instance(), state, kAllocEdge, now);
    if (on_edge <= on_cloud) return kAllocEdge;
    ++cloud_load[best_cloud];
    return best_cloud;
  }

  std::unique_ptr<Policy> base_;
  FailoverConfig config_;
  std::vector<int> failures_;
  std::vector<double> retry_at_;
  std::vector<char> down_;
};

/// Mirror of make_policy() for the frozen reference implementations.
/// Covers every name the equivalence suite and the policy micro-benchmark
/// exercise.
inline std::unique_ptr<Policy> make_reference_policy(
    const std::string& name) {
  for (const char* prefix : {"failover-", "failover:"}) {
    if (name.rfind(prefix, 0) == 0) {
      return std::make_unique<FailoverPolicy>(
          make_reference_policy(name.substr(std::string(prefix).size())));
    }
  }
  if (name == "edge-only") return std::make_unique<EdgeOnlyPolicy>();
  if (name == "greedy") return std::make_unique<GreedyPolicy>();
  if (name == "srpt") return std::make_unique<SrptPolicy>();
  if (name == "srpt-noreexec") {
    SrptConfig config;
    config.allow_reexecution = false;
    return std::make_unique<SrptPolicy>(config);
  }
  if (name == "ssf-edf") return std::make_unique<SsfEdfPolicy>();
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  throw std::invalid_argument("unknown reference policy: " + name);
}

}  // namespace ref
}  // namespace ecs
