// Tests for the offline solvers: SPT ordering (Lemma 2), the single-machine
// optimum (Bender et al.) and the exhaustive searches (paper section IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sched/offline/brute_force.hpp"
#include "sched/offline/single_machine.hpp"
#include "sched/offline/spt.hpp"
#include "util/rng.hpp"

namespace ecs {
namespace {

TEST(Spt, MaxStretchInOrder) {
  // Jobs 1 and 10 at speed 1: short first -> stretches 1 and 1.1.
  EXPECT_NEAR(max_stretch_in_order(std::vector<double>{1.0, 10.0}), 1.1,
              1e-12);
  // Long first -> stretches 1 and 11.
  EXPECT_NEAR(max_stretch_in_order(std::vector<double>{10.0, 1.0}), 11.0,
              1e-12);
}

TEST(Spt, SpeedScalesUniformly) {
  // Stretch ratios are speed-invariant on a single machine.
  const std::vector<double> works = {2.0, 3.0, 5.0};
  EXPECT_NEAR(max_stretch_spt(works, 1.0), max_stretch_spt(works, 0.25),
              1e-12);
}

TEST(Spt, Lemma2SptOptimalExhaustive) {
  // Lemma 2: the SPT order minimizes max-stretch over all permutations.
  // Verified exhaustively on random 6-job instances.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    std::vector<double> works;
    for (int i = 0; i < 6; ++i) works.push_back(rng.uniform(0.5, 10.0));
    const double spt = max_stretch_spt(works);
    std::vector<double> perm = works;
    std::sort(perm.begin(), perm.end());
    double best = spt;
    do {
      best = std::min(best, max_stretch_in_order(perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(spt, best, 1e-9) << "seed " << seed;
  }
}

TEST(SingleMachine, EdfFeasibleTrivial) {
  const std::vector<SmJob> jobs = {{2.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  EXPECT_TRUE(edf_feasible_single_machine(jobs, std::vector<double>{3.0, 1.0}));
  EXPECT_FALSE(
      edf_feasible_single_machine(jobs, std::vector<double>{2.9, 0.9}));
}

TEST(SingleMachine, EdfRespectsReleaseDates) {
  // Job 1 is released at 5; even with a huge deadline for job 0, job 1
  // cannot finish before 6.
  const std::vector<SmJob> jobs = {{2.0, 0.0, 0.0}, {1.0, 5.0, 0.0}};
  EXPECT_TRUE(
      edf_feasible_single_machine(jobs, std::vector<double>{100.0, 6.0}));
  EXPECT_FALSE(
      edf_feasible_single_machine(jobs, std::vector<double>{100.0, 5.9}));
}

TEST(SingleMachine, EdfPreemptsForTighterDeadline) {
  // Job 0 (4 units, deadline 10) is interrupted by job 1 (1 unit, released
  // at 1, deadline 2.5): feasible only with preemption.
  const std::vector<SmJob> jobs = {{4.0, 0.0, 0.0}, {1.0, 1.0, 0.0}};
  EXPECT_TRUE(
      edf_feasible_single_machine(jobs, std::vector<double>{10.0, 2.5}));
}

TEST(SingleMachine, OptimalNoReleaseDatesMatchesSpt) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<SmJob> jobs;
    std::vector<double> works;
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) {
      const double w = rng.uniform(0.5, 8.0);
      jobs.push_back(SmJob{w, 0.0, 0.0});
      works.push_back(w);
    }
    const SingleMachineResult result =
        optimal_max_stretch_single_machine(jobs);
    EXPECT_NEAR(result.max_stretch, max_stretch_spt(works), 1e-4)
        << "seed " << seed;
  }
}

TEST(SingleMachine, SingleJobHasStretchOne) {
  const std::vector<SmJob> jobs = {{3.0, 7.0, 0.0}};
  const SingleMachineResult result = optimal_max_stretch_single_machine(jobs);
  EXPECT_NEAR(result.max_stretch, 1.0, 1e-6);
}

TEST(SingleMachine, EmptyInstance) {
  const SingleMachineResult result =
      optimal_max_stretch_single_machine(std::vector<SmJob>{});
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

TEST(SingleMachine, CustomDenominatorsShiftDeadlines) {
  // With a cloud-aware denominator smaller than the processing time, the
  // achievable stretch exceeds 1 even for a single job.
  const std::vector<SmJob> jobs = {{10.0, 0.0, 2.0}};
  const SingleMachineResult result = optimal_max_stretch_single_machine(jobs);
  EXPECT_NEAR(result.max_stretch, 5.0, 1e-4);  // completes at 10, denom 2
}

TEST(Mmsh, TwoMachinesBalances) {
  // Works {1,1,2,2}: optimum splits {1,2} / {1,2} -> per machine stretches
  // (1, 1.5) -> max 1.5.
  const MmshResult result = exact_mmsh({1.0, 1.0, 2.0, 2.0}, 2);
  EXPECT_NEAR(result.max_stretch, 1.5, 1e-12);
}

TEST(Mmsh, OneMachineIsSpt) {
  const std::vector<double> works = {3.0, 1.0, 2.0};
  const MmshResult result = exact_mmsh(works, 1);
  EXPECT_NEAR(result.max_stretch, max_stretch_spt(works), 1e-12);
}

TEST(Mmsh, MoreMachinesNeverHurt) {
  const std::vector<double> works = {1.0, 2.0, 3.0, 4.0, 5.0};
  double prev = exact_mmsh(works, 1).max_stretch;
  for (int machines = 2; machines <= 5; ++machines) {
    const double cur = exact_mmsh(works, machines).max_stretch;
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  // With one machine per job, every stretch is 1.
  EXPECT_NEAR(exact_mmsh(works, 5).max_stretch, 1.0, 1e-12);
}

TEST(Mmsh, RejectsBadInput) {
  EXPECT_THROW((void)exact_mmsh({}, 2), std::invalid_argument);
  EXPECT_THROW((void)exact_mmsh({1.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)exact_mmsh({-1.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)exact_mmsh(std::vector<double>(15, 1.0), 2),
               std::length_error);
}

TEST(BruteForce, MatchesMmshOnHomogeneousEmbedding) {
  // Theorem 3 embedding: 1 edge (speed 1) + (p-1) clouds with zero comms
  // behaves exactly like MMSH with p machines.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    std::vector<double> works;
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 1));
    for (int i = 0; i < n; ++i) works.push_back(rng.uniform(1.0, 6.0));

    Instance instance;
    instance.platform = Platform({1.0}, 1);  // p = 2 machines
    for (int i = 0; i < n; ++i) {
      instance.jobs.push_back(Job{i, 0, works[i], 0.0, 0.0, 0.0});
    }
    const BruteForceResult bf = brute_force_edge_cloud(instance);
    const MmshResult mmsh = exact_mmsh(works, 2);
    EXPECT_NEAR(bf.max_stretch, mmsh.max_stretch, 1e-6) << "seed " << seed;
  }
}

TEST(BruteForce, RejectsOversizedInstances) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  for (int i = 0; i < 9; ++i) {
    instance.jobs.push_back(Job{i, 0, 1.0, 0.0, 0.0, 0.0});
  }
  EXPECT_THROW((void)brute_force_edge_cloud(instance), std::length_error);
}

TEST(BruteForce, SingleJobPicksBestResource) {
  Instance instance;
  instance.platform = Platform({0.25}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.5, 0.5}};  // cloud 3 < edge 8
  const BruteForceResult result = brute_force_edge_cloud(instance);
  EXPECT_NEAR(result.max_stretch, 1.0, 1e-9);
  EXPECT_EQ(result.alloc[0], 0);
}

}  // namespace
}  // namespace ecs
