// Tests for stretch/response metrics (core/metrics.hpp).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

Instance small_instance() {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0},   // best = min(4, 4) = 4
                   {1, 0, 1.0, 2.0, 10.0, 10.0}};  // best = min(2, 21) = 2
  return instance;
}

TEST(Metrics, StretchOfUsesBestTime) {
  const Instance instance = small_instance();
  EXPECT_DOUBLE_EQ(stretch_of(instance.platform, instance.jobs[0], 4.0), 1.0);
  EXPECT_DOUBLE_EQ(stretch_of(instance.platform, instance.jobs[0], 8.0), 2.0);
  // Released at 2, done at 6 -> response 4, best 2 -> stretch 2.
  EXPECT_DOUBLE_EQ(stretch_of(instance.platform, instance.jobs[1], 6.0), 2.0);
}

TEST(Metrics, ComputeMetricsAggregates) {
  const Instance instance = small_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 4.0);
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(4.0, 6.0);
  const ScheduleMetrics m = compute_metrics(instance, schedule);
  ASSERT_EQ(m.per_job.size(), 2u);
  EXPECT_DOUBLE_EQ(m.per_job[0].stretch, 1.0);
  EXPECT_DOUBLE_EQ(m.per_job[1].stretch, 2.0);
  EXPECT_DOUBLE_EQ(m.max_stretch, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.5);
  EXPECT_DOUBLE_EQ(m.makespan, 6.0);
  EXPECT_DOUBLE_EQ(m.max_response, 4.0);
  EXPECT_DOUBLE_EQ(m.mean_response, 4.0);
  EXPECT_EQ(m.reexecutions, 0);
}

TEST(Metrics, ThrowsOnIncompleteJob) {
  const Instance instance = small_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 4.0);
  EXPECT_THROW(compute_metrics(instance, schedule), std::runtime_error);
}

TEST(Metrics, CountsReexecutions) {
  const Instance instance = small_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(2.0, 6.0);
  RunRecord abandoned;
  abandoned.alloc = 0;
  abandoned.uplink.add(0.0, 0.5);
  schedule.job(0).abandoned.push_back(abandoned);
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(6.0, 8.0);
  const ScheduleMetrics m = compute_metrics(instance, schedule);
  EXPECT_EQ(m.reexecutions, 1);
}

TEST(Metrics, UtilizationFractions) {
  const Instance instance = small_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 4.0);
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(4.0, 6.0);
  const ScheduleMetrics m = compute_metrics(instance, schedule);
  // One edge busy 6 of 6 time units; the single cloud is idle.
  EXPECT_DOUBLE_EQ(m.edge_utilization, 1.0);
  EXPECT_DOUBLE_EQ(m.cloud_utilization, 0.0);
}

TEST(Metrics, FromCompletionsMatchesComputeMetrics) {
  const Instance instance = small_instance();
  const std::vector<Time> completions = {4.0, 6.0};
  const ScheduleMetrics m = metrics_from_completions(instance, completions);
  EXPECT_DOUBLE_EQ(m.max_stretch, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.5);
  EXPECT_DOUBLE_EQ(m.makespan, 6.0);
}

TEST(Metrics, FromCompletionsRejectsSizeMismatch) {
  const Instance instance = small_instance();
  EXPECT_THROW(metrics_from_completions(instance, {4.0}),
               std::runtime_error);
}

}  // namespace
}  // namespace ecs
