// Tests for unannounced fault injection (sim/faults.hpp + engine support).
// Crashes must abort every resident job with full progress discard (the
// re-execution rule), message losses must force retransmission from zero,
// policies must only learn of faults through kFault / kRecovery events, and
// the fault-aware validator must accept every engine-produced schedule while
// rejecting hand-built ones that keep progress through a crash.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "workloads/trace_io.hpp"

namespace ecs {
namespace {

/// FixedPolicy that additionally records every fault/recovery event batch.
class ProbePolicy final : public Policy {
 public:
  ProbePolicy(std::vector<int> alloc, std::vector<double> priority)
      : fixed_(std::move(alloc), std::move(priority)) {}

  [[nodiscard]] std::string name() const override { return "Probe"; }

  void reset(const Instance& instance) override { fixed_.reset(instance); }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    for (const Event& e : events) {
      if (e.kind == EventKind::kFault || e.kind == EventKind::kRecovery) {
        seen.push_back(e);
      }
    }
    fixed_.decide(view, events, out);
  }

  std::vector<Event> seen;

 private:
  FixedPolicy fixed_;
};

FaultPlan crash_plan(CloudId cloud, Time begin, Time end) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kCrash, cloud, begin, end});
  return plan;
}

TEST(FaultKindStrings, RoundTrip) {
  for (FaultKind kind : {FaultKind::kCrash, FaultKind::kUplinkLoss,
                         FaultKind::kDownlinkLoss}) {
    EXPECT_EQ(parse_fault_kind(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_fault_kind("meteor"), std::invalid_argument);
}

TEST(FaultPlanValidation, CatchesMalformedSpecs) {
  const Platform platform({1.0}, 2);
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kCrash, 5, 0.0, 1.0});
  EXPECT_FALSE(validate_fault_plan(plan, platform).empty());
  plan.faults = {FaultSpec{FaultKind::kCrash, 0, 2.0, 2.0}};  // empty window
  EXPECT_FALSE(validate_fault_plan(plan, platform).empty());
  plan.faults = {FaultSpec{FaultKind::kUplinkLoss, 0, 2.0, 3.0}};  // not inst.
  EXPECT_FALSE(validate_fault_plan(plan, platform).empty());
  plan.faults = {FaultSpec{FaultKind::kCrash, 0, 0.0, 5.0},
                 FaultSpec{FaultKind::kCrash, 0, 4.0, 6.0}};  // overlap
  plan.normalize();
  EXPECT_FALSE(validate_fault_plan(plan, platform).empty());
  // Same windows on different clouds are fine.
  plan.faults = {FaultSpec{FaultKind::kCrash, 0, 0.0, 5.0},
                 FaultSpec{FaultKind::kCrash, 1, 4.0, 6.0}};
  plan.normalize();
  EXPECT_TRUE(validate_fault_plan(plan, platform).empty());
  EXPECT_THROW(
      require_valid_fault_plan(crash_plan(9, 0.0, 1.0), platform),
      std::invalid_argument);
}

TEST(FaultPlanGenerator, DeterministicUnderFixedSeed) {
  FaultConfig cfg;
  cfg.crash_rate = 0.01;
  cfg.mean_repair = 30.0;
  cfg.loss_rate = 0.02;
  cfg.horizon = 2000.0;
  Rng a(123), b(123), c(124);
  const FaultPlan pa = make_fault_plan(3, cfg, a);
  const FaultPlan pb = make_fault_plan(3, cfg, b);
  const FaultPlan pc = make_fault_plan(3, cfg, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
  EXPECT_FALSE(pa.empty());
  EXPECT_TRUE(validate_fault_plan(pa, Platform({1.0}, 3)).empty());
}

TEST(FaultPlanGenerator, ZeroRatesAndBadConfig) {
  Rng rng(7);
  FaultConfig zero;
  zero.horizon = 1000.0;
  EXPECT_TRUE(make_fault_plan(4, zero, rng).empty());
  FaultConfig bad;
  bad.crash_rate = -0.1;
  EXPECT_THROW((void)make_fault_plan(1, bad, rng), std::invalid_argument);
  bad.crash_rate = 0.01;
  bad.horizon = 0.0;
  EXPECT_THROW((void)make_fault_plan(1, bad, rng), std::invalid_argument);
}

TEST(FaultEngine, CrashDiscardsAllProgress) {
  // up [0,1), exec [1,2) — crash at 2 wipes everything; the cloud is down
  // until 5, so the job restarts from zero: up [5,6), exec [6,10),
  // down [10,11).
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  FixedPolicy policy({0}, {0.0});
  EngineConfig config;
  config.faults = crash_plan(0, 2.0, 5.0);
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 11.0, 1e-9);
  EXPECT_EQ(result.stats.fault_aborts, 1u);
  // The pre-crash partial run is preserved as an abandoned run.
  const JobSchedule& js = result.schedule.job(0);
  ASSERT_EQ(js.abandoned.size(), 1u);
  EXPECT_NEAR(js.abandoned[0].uplink.measure(), 1.0, 1e-9);
  EXPECT_NEAR(js.abandoned[0].exec.measure(), 1.0, 1e-9);
  EXPECT_NEAR(js.final_run.uplink.intervals().front().begin, 5.0, 1e-9);
  EXPECT_NEAR(js.final_run.exec.measure(), 4.0, 1e-9);
  require_valid_schedule(instance, result.schedule, config.faults);
}

TEST(FaultEngine, CrashEventsCarryCloudId) {
  Instance instance;
  instance.platform = Platform({0.1}, 2);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  ProbePolicy policy({1}, {0.0});
  EngineConfig config;
  config.faults = crash_plan(1, 2.0, 5.0);
  const SimResult result = simulate(instance, policy, config);
  // Cloud-level fault, per-victim fault, recovery — in that order, and the
  // realized fault log matches what the policy observed.
  ASSERT_EQ(policy.seen.size(), 3u);
  EXPECT_EQ(policy.seen[0].kind, EventKind::kFault);
  EXPECT_EQ(policy.seen[0].job, -1);
  EXPECT_EQ(policy.seen[0].cloud, 1);
  EXPECT_NEAR(policy.seen[0].time, 2.0, 1e-9);
  EXPECT_EQ(policy.seen[1].kind, EventKind::kFault);
  EXPECT_EQ(policy.seen[1].job, 0);
  EXPECT_EQ(policy.seen[1].cloud, 1);
  EXPECT_EQ(policy.seen[2].kind, EventKind::kRecovery);
  EXPECT_EQ(policy.seen[2].cloud, 1);
  EXPECT_NEAR(policy.seen[2].time, 5.0, 1e-9);
  ASSERT_EQ(result.fault_log.size(), 3u);
  EXPECT_EQ(result.fault_log[0].kind, policy.seen[0].kind);
  EXPECT_EQ(result.fault_log[2].kind, EventKind::kRecovery);
}

TEST(FaultEngine, CrashWithNoResidentHitsNobody) {
  // Job runs on cloud 0; cloud 1 crashes. Only the cloud-level monitoring
  // events fire and the job is untouched.
  Instance instance;
  instance.platform = Platform({0.1}, 2);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  FixedPolicy policy({0}, {0.0});
  EngineConfig config;
  config.faults = crash_plan(1, 2.0, 5.0);
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 6.0, 1e-9);
  EXPECT_EQ(result.stats.fault_aborts, 0u);
  ASSERT_EQ(result.fault_log.size(), 2u);  // kFault + kRecovery, cloud-level
  EXPECT_EQ(result.fault_log[0].job, -1);
  require_valid_schedule(instance, result.schedule, config.faults);
}

TEST(FaultEngine, UplinkLossRestartsTransmission) {
  // up would be [0,3); the loss at 1.5 corrupts it, so the upload restarts:
  // up [1.5,4.5), exec [4.5,6.5), down [6.5,7.5).
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 3.0, 1.0}};
  FixedPolicy policy({0}, {0.0});
  EngineConfig config;
  config.faults.faults = {FaultSpec{FaultKind::kUplinkLoss, 0, 1.5, 1.5}};
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 7.5, 1e-9);
  EXPECT_EQ(result.stats.message_losses, 1u);
  EXPECT_EQ(result.stats.fault_aborts, 0u);
  // The wasted transmission stays on the books in the same run.
  EXPECT_NEAR(result.schedule.job(0).final_run.uplink.measure(), 4.5, 1e-9);
  require_valid_schedule(instance, result.schedule, config.faults);
}

TEST(FaultEngine, DownlinkLossKeepsExecutionProgress) {
  // up [0,1), exec [1,3), down would be [3,5); the loss at 4 restarts only
  // the download: down [4,6). Execution is not repeated.
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 2.0}};
  FixedPolicy policy({0}, {0.0});
  EngineConfig config;
  config.faults.faults = {FaultSpec{FaultKind::kDownlinkLoss, 0, 4.0, 4.0}};
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 6.0, 1e-9);
  EXPECT_EQ(result.stats.message_losses, 1u);
  EXPECT_NEAR(result.schedule.job(0).final_run.exec.measure(), 2.0, 1e-9);
  EXPECT_NEAR(result.schedule.job(0).final_run.downlink.measure(), 3.0,
              1e-9);
  require_valid_schedule(instance, result.schedule, config.faults);
}

TEST(FaultEngine, LossWithNothingInFlightIsUnobservable) {
  // The loss instant falls inside the execution phase: no message is in
  // flight, so nothing happens and no event fires.
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  ProbePolicy policy({0}, {0.0});
  EngineConfig config;
  config.faults.faults = {FaultSpec{FaultKind::kUplinkLoss, 0, 3.0, 3.0}};
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 6.0, 1e-9);
  EXPECT_EQ(result.stats.message_losses, 0u);
  EXPECT_TRUE(result.fault_log.empty());
  EXPECT_TRUE(policy.seen.empty());
}

TEST(FaultEngine, EdgeJobsAreImmune) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 1.0, 1.0}};
  FixedPolicy policy({kAllocEdge}, {0.0});
  EngineConfig config;
  config.faults = crash_plan(0, 0.0, 100.0);
  const SimResult result = simulate(instance, policy, config);
  EXPECT_NEAR(result.completions[0], 4.0, 1e-9);
  EXPECT_EQ(result.stats.fault_aborts, 0u);
  require_valid_schedule(instance, result.schedule, config.faults);
}

TEST(FaultEngine, RejectsInvalidPlan) {
  Instance instance;
  instance.platform = Platform({1.0}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.0, 0.0}};
  FixedPolicy policy({kAllocEdge}, {0.0});
  EngineConfig config;
  config.faults = crash_plan(3, 0.0, 1.0);  // no such cloud
  EXPECT_THROW((void)simulate(instance, policy, config),
               std::invalid_argument);
}

TEST(FaultValidator, FlagsWorkDuringCrash) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0}};
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.exec.add(0.5, 2.5);  // inside the crash window
  const FaultPlan plan = crash_plan(0, 1.0, 3.0);
  const auto violations = validate_schedule(instance, schedule, plan);
  bool conflict = false;
  for (const Violation& v : violations) {
    conflict |= v.kind == ViolationKind::kFaultConflict;
  }
  EXPECT_TRUE(conflict);
}

TEST(FaultValidator, FlagsRunSpanningCrashStart) {
  // Two exec pieces around the crash window, same run: progress was kept
  // through a crash that wiped the machine.
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 0.0, 0.0}};
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.exec.add(0.0, 2.0);
  schedule.job(0).final_run.exec.add(5.0, 7.0);
  const FaultPlan plan = crash_plan(0, 2.0, 5.0);
  const auto violations = validate_schedule(instance, schedule, plan);
  bool restart = false;
  for (const Violation& v : violations) {
    restart |= v.kind == ViolationKind::kFaultRestart;
  }
  EXPECT_TRUE(restart);
  // The same shape is LEGAL as two separate runs (abandoned + final).
  Schedule split(1);
  split.job(0).final_run.alloc = 0;
  split.job(0).final_run.exec.add(5.0, 13.0);
  RunRecord before;
  before.alloc = 0;
  before.exec.add(0.0, 2.0);
  split.job(0).abandoned.push_back(before);
  for (const Violation& v : validate_schedule(instance, split, plan)) {
    EXPECT_NE(v.kind, ViolationKind::kFaultRestart) << v.message;
    EXPECT_NE(v.kind, ViolationKind::kFaultConflict) << v.message;
  }
}

TEST(FaultTraceIo, PlanRoundTrip) {
  FaultPlan plan;
  plan.faults = {FaultSpec{FaultKind::kCrash, 0, 1.25, 7.5},
                 FaultSpec{FaultKind::kUplinkLoss, 1, 2.0, 2.0},
                 FaultSpec{FaultKind::kDownlinkLoss, 0, 3.0 / 7.0,
                           3.0 / 7.0}};
  plan.normalize();
  std::stringstream buffer;
  save_fault_plan(buffer, plan);
  const FaultPlan loaded = load_fault_plan(buffer);
  EXPECT_EQ(loaded, plan);
}

TEST(FaultTraceIo, FaultyInstanceRoundTrip) {
  Instance instance;
  instance.platform = Platform({0.5, 0.25}, 2);
  instance.cloud_outages.resize(2);
  instance.cloud_outages[0].add(1.0, 2.0);
  instance.jobs = {{0, 0, 1.0, 0.0, 0.5, 0.5}, {1, 1, 2.0, 0.5, 0.25, 0.0}};
  FaultPlan plan;
  plan.faults = {FaultSpec{FaultKind::kCrash, 1, 4.0, 9.0},
                 FaultSpec{FaultKind::kUplinkLoss, 0, 0.125, 0.125}};
  plan.normalize();

  std::stringstream buffer;
  save_faulty_instance(buffer, instance, plan);
  const auto [loaded, loaded_plan] = load_faulty_instance(buffer);
  EXPECT_EQ(loaded_plan, plan);
  ASSERT_EQ(loaded.jobs.size(), 2u);
  EXPECT_EQ(loaded.cloud_outages[0], instance.cloud_outages[0]);

  // Re-saving what we loaded reproduces the bytes exactly.
  std::stringstream again;
  save_faulty_instance(again, loaded, loaded_plan);
  std::stringstream original;
  save_faulty_instance(original, instance, plan);
  EXPECT_EQ(again.str(), original.str());

  // The plain loader must reject fault records.
  std::stringstream replay(original.str());
  EXPECT_THROW((void)load_instance(replay), std::runtime_error);
}

TEST(FaultTraceIo, LoaderRejectsBadPlans) {
  std::stringstream garbage("fault,meteor,0,1,2\n");
  EXPECT_THROW((void)load_fault_plan(garbage), std::runtime_error);
  // Syntactically fine but semantically invalid for the declared platform.
  std::stringstream bad_cloud(
      "edges,1\nclouds,1\nfault,crash,7,0,1\njob,0,0,1,0,0,0\n");
  EXPECT_THROW((void)load_faulty_instance(bad_cloud), std::runtime_error);
}

}  // namespace
}  // namespace ecs
