// Tests for the Edge-Only baseline (sched/edge_only.hpp, paper section V-A).
#include "sched/edge_only.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sched/offline/single_machine.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/random_instances.hpp"

namespace ecs {
namespace {

TEST(EdgeOnly, NeverUsesCloud) {
  Instance instance;
  instance.platform = Platform({0.1}, 4);  // cloud would be much faster
  instance.jobs = {{0, 0, 5.0, 0.0, 0.1, 0.1}, {1, 0, 3.0, 1.0, 0.1, 0.1}};
  EdgeOnlyPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(result.schedule.job(i).final_run.alloc, kAllocEdge);
  }
}

TEST(EdgeOnly, StretchDenominatorAccountsForCloud) {
  // The job runs on the edge (10 time units), but its best time is the
  // cloud's 3 units, so even an undisturbed run has stretch 10/3.
  Instance instance;
  instance.platform = Platform({0.1}, 1);
  instance.jobs = {{0, 0, 1.0, 0.0, 1.0, 1.0}};
  EdgeOnlyPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);
  EXPECT_NEAR(m.max_stretch, 10.0 / 3.0, 1e-6);
}

TEST(EdgeOnly, EdgesAreIndependent) {
  // Jobs on different edges never interact: two identical job sets on two
  // edges complete identically.
  Instance instance;
  instance.platform = Platform({0.5, 0.5}, 0);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0},
                   {1, 1, 2.0, 0.0, 0.0, 0.0},
                   {2, 0, 1.0, 0.5, 0.0, 0.0},
                   {3, 1, 1.0, 0.5, 0.0, 0.0}};
  EdgeOnlyPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  EXPECT_NEAR(result.completions[0], result.completions[1], 1e-9);
  EXPECT_NEAR(result.completions[2], result.completions[3], 1e-9);
}

TEST(EdgeOnly, MatchesSingleMachineOfflineOptimumWhenOffline) {
  // All jobs released at 0 on one edge: the online algorithm sees the
  // whole instance at its first event, so it should achieve the offline
  // optimum computed by the Bender binary search (same denominators).
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 3.0, 0.0, 0.0, 0.0},
                   {1, 0, 1.0, 0.0, 0.0, 0.0},
                   {2, 0, 2.0, 0.0, 0.0, 0.0}};
  EdgeOnlyPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  const ScheduleMetrics m = compute_metrics(instance, result.schedule);

  std::vector<SmJob> jobs;
  for (const Job& job : instance.jobs) {
    jobs.push_back(SmJob{job.work, 0.0, job.work});
  }
  const SingleMachineResult offline =
      optimal_max_stretch_single_machine(jobs);
  EXPECT_NEAR(m.max_stretch, offline.max_stretch, 1e-3);
}

TEST(EdgeOnly, OnlineNeverBeatsOfflineOptimum) {
  // Property over random single-edge instances with release dates: the
  // online Edge-Only stretch is >= the offline optimum for that edge.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Instance instance;
    instance.platform = Platform({1.0}, 0);
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < n; ++i) {
      instance.jobs.push_back(Job{i, 0, rng.uniform(0.5, 5.0),
                                  rng.uniform(0.0, 10.0), 0.0, 0.0});
    }
    EdgeOnlyPolicy policy;
    const SimResult result = simulate(instance, policy);
    require_valid_schedule(instance, result.schedule);
    const ScheduleMetrics m = compute_metrics(instance, result.schedule);

    std::vector<SmJob> jobs;
    for (const Job& job : instance.jobs) {
      jobs.push_back(SmJob{job.work, job.release, job.work});
    }
    const SingleMachineResult offline =
        optimal_max_stretch_single_machine(jobs);
    EXPECT_GE(m.max_stretch, offline.max_stretch - 1e-3)
        << "seed " << seed;
  }
}

TEST(EdgeOnly, PreemptsForUrgentShortJob) {
  // A long job occupies the edge; a short job arrives: its deadline is
  // tighter, EDF preempts.
  Instance instance;
  instance.platform = Platform({1.0}, 0);
  instance.jobs = {{0, 0, 10.0, 0.0, 0.0, 0.0}, {1, 0, 1.0, 2.0, 0.0, 0.0}};
  EdgeOnlyPolicy policy;
  const SimResult result = simulate(instance, policy);
  require_valid_schedule(instance, result.schedule);
  // Short job should complete well before the long one finishes.
  EXPECT_LT(result.completions[1], 5.0);
  EXPECT_NEAR(result.completions[0], 11.0, 1e-6);
}

}  // namespace
}  // namespace ecs
