// Tests for the logging utility (util/log.hpp).
#include "util/log.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // Dropped messages must not crash or block.
  ECS_LOG_DEBUG << "invisible " << 42;
  ECS_LOG_INFO << "also invisible";
  set_log_level(original);
}

TEST(Log, StreamingFormatsArbitraryTypes) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // keep test output clean
  ECS_LOG_WARN << "x=" << 1.5 << " y=" << std::string("s") << " z=" << 7;
  set_log_level(original);
}

}  // namespace
}  // namespace ecs
