// Tests for the section III-B schedule validator (core/validate.hpp).
//
// Each constraint of the model is violated in isolation and the validator
// must flag it with the right kind; a fully conforming schedule must pass.
#include "core/validate.hpp"

#include <gtest/gtest.h>

namespace ecs {
namespace {

// One edge (speed 0.5), two clouds; two jobs from the same edge.
Instance two_job_instance() {
  Instance instance;
  instance.platform = Platform({0.5}, 2);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 1.0}, {1, 0, 2.0, 0.0, 1.0, 1.0}};
  return instance;
}

// A correct schedule: J0 on the edge [0,4); J1 on cloud 0:
// up [0,1), exec [1,3), down [3,4).
Schedule good_schedule() {
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 4.0);
  schedule.job(1).final_run.alloc = 0;
  schedule.job(1).final_run.uplink.add(0.0, 1.0);
  schedule.job(1).final_run.exec.add(1.0, 3.0);
  schedule.job(1).final_run.downlink.add(3.0, 4.0);
  return schedule;
}

bool has_kind(const std::vector<Violation>& violations, ViolationKind kind) {
  for (const Violation& v : violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(Validate, AcceptsConformingSchedule) {
  const Instance instance = two_job_instance();
  const Schedule schedule = good_schedule();
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
  EXPECT_TRUE(is_valid_schedule(instance, schedule));
  EXPECT_NO_THROW(require_valid_schedule(instance, schedule));
}

TEST(Validate, FlagsUnallocatedJob) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(1).final_run = RunRecord{};  // wipe
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kUnallocated));
}

TEST(Validate, FlagsBadCloudIndex) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(1).final_run.alloc = 7;  // only 2 clouds
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kBadAllocation));
}

TEST(Validate, FlagsStartBeforeRelease) {
  Instance instance = two_job_instance();
  instance.jobs[0].release = 1.0;  // schedule starts its exec at 0
  const auto violations = validate_schedule(instance, good_schedule());
  EXPECT_TRUE(has_kind(violations, ViolationKind::kBeforeRelease));
}

TEST(Validate, FlagsInsufficientEdgeExecution) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(0).final_run.exec = IntervalSet{};
  schedule.job(0).final_run.exec.add(0.0, 3.0);  // needs 4 = 2 / 0.5
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kQuantity));
}

TEST(Validate, FlagsInsufficientUplink) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(1).final_run.uplink = IntervalSet{};
  schedule.job(1).final_run.uplink.add(0.0, 0.5);  // needs 1
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kQuantity));
}

TEST(Validate, FlagsInsufficientDownlink) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(1).final_run.downlink = IntervalSet{};
  schedule.job(1).final_run.downlink.add(3.0, 3.2);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kQuantity));
}

TEST(Validate, FlagsUplinkAfterExecStart) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  // Move part of the uplink after the execution started.
  schedule.job(1).final_run.uplink = IntervalSet{};
  schedule.job(1).final_run.uplink.add(0.0, 0.5);
  schedule.job(1).final_run.uplink.add(1.5, 2.0);  // exec starts at 1
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kPrecedence));
}

TEST(Validate, FlagsDownlinkBeforeExecEnd) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(1).final_run.downlink = IntervalSet{};
  schedule.job(1).final_run.downlink.add(2.0, 3.0);  // exec ends at 3
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kPrecedence));
}

TEST(Validate, FlagsEdgeJobWithCommunications) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(0).final_run.uplink.add(0.0, 0.5);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kPrecedence));
}

TEST(Validate, FlagsEdgeProcessorConflict) {
  Instance instance = two_job_instance();
  Schedule schedule(2);
  // Both jobs execute on the same edge processor at overlapping times.
  for (int i = 0; i < 2; ++i) {
    schedule.job(i).final_run.alloc = kAllocEdge;
    schedule.job(i).final_run.exec.add(0.0, 4.0);
  }
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kProcessorConflict));
}

TEST(Validate, FlagsCloudProcessorConflict) {
  Instance instance = two_job_instance();
  instance.jobs[0].up = 0.0;
  instance.jobs[0].down = 0.0;
  instance.jobs[1].up = 0.0;
  instance.jobs[1].down = 0.0;
  Schedule schedule(2);
  for (int i = 0; i < 2; ++i) {
    schedule.job(i).final_run.alloc = 0;  // same cloud
    schedule.job(i).final_run.exec.add(0.0, 2.0);
  }
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kProcessorConflict));
}

TEST(Validate, FlagsEdgeSendPortConflict) {
  // Two jobs from the same edge uploading to *different* clouds at the same
  // time: the edge's send port is oversubscribed.
  Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.uplink.add(0.0, 1.0);
  schedule.job(0).final_run.exec.add(1.0, 3.0);
  schedule.job(0).final_run.downlink.add(3.0, 4.0);
  schedule.job(1).final_run.alloc = 1;
  schedule.job(1).final_run.uplink.add(0.5, 1.5);  // overlaps J0's uplink
  schedule.job(1).final_run.exec.add(1.5, 3.5);
  schedule.job(1).final_run.downlink.add(4.0, 5.0);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kPortConflict));
}

TEST(Validate, FlagsCloudReceivePortConflict) {
  // Two jobs from different edges uploading to the same cloud at once.
  Instance instance;
  instance.platform = Platform({0.5, 0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 1.0, 0.0}, {1, 1, 2.0, 0.0, 1.0, 0.0}};
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.uplink.add(0.0, 1.0);
  schedule.job(0).final_run.exec.add(1.0, 3.0);
  schedule.job(1).final_run.alloc = 0;
  schedule.job(1).final_run.uplink.add(0.5, 1.5);
  schedule.job(1).final_run.exec.add(3.0, 5.0);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kPortConflict));
}

TEST(Validate, FullDuplexOverlapIsAllowed) {
  // An uplink and a downlink may overlap on the same edge and cloud.
  Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.uplink.add(0.0, 1.0);
  schedule.job(0).final_run.exec.add(1.0, 3.0);
  schedule.job(0).final_run.downlink.add(3.0, 4.0);
  schedule.job(1).final_run.alloc = 0;
  schedule.job(1).final_run.uplink.add(3.0, 4.0);  // while J0 downlinks
  schedule.job(1).final_run.exec.add(4.0, 6.0);
  schedule.job(1).final_run.downlink.add(6.0, 7.0);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : to_string(violations.front()));
}

TEST(Validate, ComputeOverlapsCommunicationFreely) {
  // J0 computes on the edge while J1 uploads from that edge: legal.
  const Instance instance = two_job_instance();
  const Schedule schedule = good_schedule();  // exactly that situation
  EXPECT_TRUE(is_valid_schedule(instance, schedule));
}

TEST(Validate, FlagsSelfOverlap) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  // Make J1's uplink overlap its own execution (also a precedence issue;
  // the self-overlap check must fire regardless).
  schedule.job(1).final_run.uplink.add(1.0, 2.0);
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kSelfOverlap));
}

TEST(Validate, AbandonedRunsOccupyResources) {
  // J0's abandoned edge run overlaps J1's... both on the same edge CPU.
  Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.job(0).final_run.alloc = 0;  // final: cloud
  schedule.job(0).final_run.uplink.add(2.0, 3.0);
  schedule.job(0).final_run.exec.add(3.0, 5.0);
  schedule.job(0).final_run.downlink.add(5.0, 6.0);
  RunRecord abandoned;
  abandoned.alloc = kAllocEdge;
  abandoned.exec.add(0.0, 2.0);  // occupied the edge CPU before moving
  schedule.job(0).abandoned.push_back(abandoned);
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(1.0, 5.0);  // overlaps the abandoned run
  const auto violations = validate_schedule(instance, schedule);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kProcessorConflict));
}

TEST(Validate, FlagsNonAdjacentOverlapUnderLongInterval) {
  // Regression: a long execution enclosing several later claims must be
  // flagged against each of them, not only its sort-adjacent neighbour.
  Instance instance;
  instance.platform = Platform({0.5}, 0);
  instance.jobs = {{0, 0, 50.0, 0.0, 0.0, 0.0},
                   {1, 0, 0.5, 0.0, 0.0, 0.0},
                   {2, 0, 0.5, 0.0, 0.0, 0.0}};
  Schedule schedule(3);
  schedule.job(0).final_run.alloc = kAllocEdge;
  schedule.job(0).final_run.exec.add(0.0, 100.0);  // encloses everything
  schedule.job(1).final_run.alloc = kAllocEdge;
  schedule.job(1).final_run.exec.add(1.0, 2.0);
  schedule.job(2).final_run.alloc = kAllocEdge;
  schedule.job(2).final_run.exec.add(10.0, 11.0);  // NOT adjacent to J0
  const auto violations = validate_schedule(instance, schedule);
  int conflicts = 0;
  for (const Violation& v : violations) {
    conflicts += v.kind == ViolationKind::kProcessorConflict;
  }
  // Both J1 and J2 conflict with the enclosing J0 interval.
  EXPECT_GE(conflicts, 2);
}

TEST(Validate, ZeroCommunicationCloudJobNeedsNoCommIntervals) {
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 2.0, 0.0, 0.0, 0.0}};
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.exec.add(0.0, 2.0);
  EXPECT_TRUE(is_valid_schedule(instance, schedule));
}

TEST(Validate, WrongJobCountReported) {
  const Instance instance = two_job_instance();
  const Schedule schedule(1);
  const auto violations = validate_schedule(instance, schedule);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kBadAllocation);
}

TEST(Validate, FlagsMigratedProgressAcrossCrash) {
  // Progress carried across a crash of the run's machine is the offline
  // face of the no-migration rule: a run may not keep work the platform
  // lost. The online watchdog flags the same shape as kMigration when a
  // run's spans appear on two allocations (tests/test_watchdog.cpp).
  Instance instance;
  instance.platform = Platform({0.5}, 1);
  instance.jobs = {{0, 0, 4.0, 0.0, 0.0, 0.0}};
  Schedule schedule(1);
  schedule.job(0).final_run.alloc = 0;
  schedule.job(0).final_run.exec.add(0.0, 2.0);   // before the crash
  schedule.job(0).final_run.exec.add(6.0, 8.0);   // resumed afterwards
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kCrash, 0, 3.0, 5.0});
  const auto violations = validate_schedule(instance, schedule, plan);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kFaultRestart));
}

TEST(Validate, RequireValidThrowsWithDiagnostics) {
  const Instance instance = two_job_instance();
  Schedule schedule = good_schedule();
  schedule.job(0).final_run.exec = IntervalSet{};
  schedule.job(0).final_run.exec.add(0.0, 1.0);
  EXPECT_THROW(require_valid_schedule(instance, schedule),
               std::runtime_error);
}

}  // namespace
}  // namespace ecs
