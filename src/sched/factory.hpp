// factory.hpp - Name-based construction of scheduling policies.
//
// The bench and example binaries select heuristics by name (e.g.
// `--algos=srpt,ssf-edf`); this factory is the single registry mapping
// names to implementations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace ecs {

/// Canonical names: "edge-only", "greedy", "srpt", "ssf-edf", "fcfs".
/// Matching is case-insensitive and tolerant of '_' vs '-'. A
/// "failover-" prefix (e.g. "failover-srpt") wraps the named base policy
/// in the fault-tolerant decorator (sched/failover.hpp).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Policy> make_policy(const std::string& name);

/// All canonical policy names, in the order the paper presents them.
[[nodiscard]] std::vector<std::string> policy_names();

/// The paper's four heuristics (without the extra FCFS control).
[[nodiscard]] std::vector<std::string> paper_policy_names();

}  // namespace ecs
