// srpt.hpp - Shortest Remaining Processing Time heuristic (paper section
// V-C).
//
// At each event, SRPT repeatedly selects the (job, processor) pair that can
// complete the earliest, assigns the job there, and removes both from the
// candidate lists. Estimates are uncontended (the O(1) estimate behind the
// paper's complexity figure). No migration is possible, but a preempted job
// may restart from scratch on another processor when that restart is the
// earliest completion available to it — exactly the paper's re-execution
// rule.
#pragma once

#include <vector>

#include "sched/common.hpp"

namespace ecs {

struct SrptConfig {
  /// When false, a job that has started somewhere never restarts from
  /// scratch elsewhere — it either continues or waits. Used by the
  /// re-execution ablation bench; the paper's SRPT allows re-execution.
  bool allow_reexecution = true;
};

class SrptPolicy final : public Policy {
 public:
  SrptPolicy() = default;
  explicit SrptPolicy(const SrptConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    return config_.allow_reexecution ? "SRPT" : "SRPT-noreexec";
  }

  void reset(const Instance& instance) override;

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

 private:
  SrptConfig config_;
  // Workspace, reused across decide() calls (zero steady-state allocation).
  std::vector<JobId> candidates_;
  std::vector<char> edge_free_;
  std::vector<char> cloud_free_;
};

}  // namespace ecs
