#include "sched/ssf_edf.hpp"

#include <algorithm>
#include <cmath>

namespace ecs {

void SsfEdfPolicy::reset(const Instance& instance) {
  deadlines_.assign(instance.jobs.size(), kTimeInfinity);
  last_target_stretch_ = 0.0;
}

bool SsfEdfPolicy::feasible(const SimView& view, double stretch,
                            std::vector<double>* deadlines_out) const {
  const Platform& platform = view.platform();
  const Time now = view.now();

  // Deadlines for this candidate stretch. The EDF order depends on the
  // candidate (denominators differ between jobs), so it is recomputed for
  // every probe — with the same (key, id) tie-break as decide().
  std::vector<OrderedJob> entries;
  for (const JobState& s : view.states()) {
    if (!s.live()) continue;
    entries.push_back(
        OrderedJob{s.job.id, s.job.release + stretch * s.best_time});
  }
  sort_ordered(entries);

  ResourceClock clock(view.instance(), now);
  bool ok = true;
  for (const OrderedJob& e : entries) {
    const JobState& s = view.state(e.id);
    const auto [target, done] = best_target_sticky(platform, clock, s);
    clock.commit(platform, s, target);
    if (time_gt(done, e.key)) {
      ok = false;
      break;
    }
  }
  if (ok && deadlines_out != nullptr) {
    for (const OrderedJob& e : entries) (*deadlines_out)[e.id] = e.key;
  }
  return ok;
}

void SsfEdfPolicy::recompute_deadlines(const SimView& view) {
  const Platform& platform = view.platform();
  const Time now = view.now();

  // Lower bound: no schedule can beat each job's individually best
  // achievable stretch from the current state (and 1.0 overall).
  double lo = 1.0;
  bool any_live = false;
  for (const JobState& s : view.states()) {
    if (!s.live()) continue;
    any_live = true;
    const Time best_done = best_uncontended_completion(platform, s, now);
    lo = std::max(lo, (best_done - s.job.release) / s.best_time);
  }
  if (!any_live) return;

  const double best_feasible = min_feasible_stretch(
      lo, config_.epsilon, config_.max_iterations,
      [&](double s) { return feasible(view, s, nullptr); });

  const double target = config_.alpha * best_feasible;
  last_target_stretch_ = target;
  // Locking in the deadlines: the final feasibility pass writes them.
  if (!feasible(view, target, &deadlines_)) {
    // alpha < 1 can make the scaled target infeasible; fall back to the
    // verified stretch.
    (void)feasible(view, best_feasible, &deadlines_);
    last_target_stretch_ = best_feasible;
  }
}

std::vector<Directive> SsfEdfPolicy::decide(const SimView& view,
                                            const std::vector<Event>& events) {
  if (contains_release(events)) {
    recompute_deadlines(view);
  }

  // EDF placement with the stored deadlines: walk live jobs by deadline,
  // put each on the processor where the projection completes it earliest.
  // Only jobs that actually start now are (re)allocated — see
  // list_assign_directives.
  std::vector<OrderedJob> order;
  for (const JobState& s : view.states()) {
    if (!s.live()) continue;
    order.push_back(OrderedJob{s.job.id, deadlines_[s.job.id]});
  }
  sort_ordered(order);
  return list_assign_directives(view, order);
}

}  // namespace ecs
