#include "sched/ssf_edf.hpp"

#include <algorithm>
#include <cmath>

namespace ecs {

void SsfEdfPolicy::reset(const Instance& instance) {
  deadlines_.assign(instance.jobs.size(), kTimeInfinity);
  last_target_stretch_ = 0.0;
  clock_.bind(instance, 0.0);
  entries_.clear();
  order_.clear();
}

bool SsfEdfPolicy::feasible(const SimView& view, double stretch,
                            std::vector<double>* deadlines_out) {
  const Platform& platform = view.platform();

  // Deadlines for this candidate stretch. The EDF order depends on the
  // candidate (denominators differ between jobs), so the reused entry
  // buffer is re-keyed and re-sorted for every probe — with the same
  // (key, id) tie-break as decide().
  entries_.clear();
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    entries_.push_back(
        OrderedJob{s.job.id, s.job.release + stretch * s.best_time});
  }
  sort_ordered(entries_);

  clock_.reset(view.now());
  bool ok = true;
  for (const OrderedJob& e : entries_) {
    const JobState& s = view.state(e.id);
    const auto [target, done] = best_target_sticky(platform, clock_, s);
    clock_.commit(platform, s, target);
    if (time_gt(done, e.key)) {
      ok = false;  // short-circuit: one missed deadline sinks the candidate
      break;
    }
  }
  if (ok && deadlines_out != nullptr) {
    // Keyed by state slot, not id: under streaming (simulate_stream) slots
    // recycle across retired jobs, keeping this buffer O(live), and a slot's
    // occupant can only change at a release event — which recomputes every
    // live deadline anyway.
    for (const OrderedJob& e : entries_) {
      (*deadlines_out)[view.slot(e.id)] = e.key;
    }
  }
  return ok;
}

void SsfEdfPolicy::recompute_deadlines(const SimView& view) {
  const Platform& platform = view.platform();
  const Time now = view.now();
  // Track the engine's slot table (it only ever grows within a run).
  if (deadlines_.size() < view.states().size()) {
    deadlines_.resize(view.states().size(), kTimeInfinity);
  }

  // Lower bound: no schedule can beat each job's individually best
  // achievable stretch from the current state (and 1.0 overall).
  double lo = 1.0;
  bool any_live = false;
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    any_live = true;
    const Time best_done = best_uncontended_completion(platform, s, now);
    lo = std::max(lo, (best_done - s.job.release) / s.best_time);
  }
  if (!any_live) return;

  // Warm start: consecutive releases see mostly the same live set, so the
  // previous round's target stretch predicts this round's feasibility rung
  // almost exactly; min_feasible_stretch_warm verifies the prediction and
  // returns the same value the cold search would, with a fraction of the
  // probes. The cold path (hint <= 0) covers the first release.
  const double best_feasible = min_feasible_stretch_warm(
      lo, config_.epsilon, config_.max_iterations, last_target_stretch_,
      [&](double s) { return feasible(view, s, nullptr); });

  const double target = config_.alpha * best_feasible;
  last_target_stretch_ = target;
  // Locking in the deadlines: the final feasibility pass writes them.
  if (!feasible(view, target, &deadlines_)) {
    // alpha < 1 can make the scaled target infeasible; fall back to the
    // verified stretch.
    (void)feasible(view, best_feasible, &deadlines_);
    last_target_stretch_ = best_feasible;
  }
}

void SsfEdfPolicy::decide(const SimView& view,
                          const std::vector<Event>& events,
                          std::vector<Directive>& out) {
  if (!clock_.bound()) clock_.bind(view.instance(), view.now());
  if (contains_release(events)) {
    recompute_deadlines(view);
  }

  // EDF placement with the stored deadlines: walk live jobs by deadline,
  // put each on the processor where the projection completes it earliest.
  // Only jobs that actually start now are (re)allocated — see
  // list_assign_directives.
  order_.clear();
  for (const JobId id : view.live_jobs()) {
    order_.push_back(OrderedJob{id, deadlines_[view.slot(id)]});
  }
  sort_ordered(order_);
  // A cloud placement means the edge projection could not hold the
  // deadline-driven target stretch — the paper's delegation criterion.
  list_assign_directives(view, order_, clock_, out,
                         ReasonCode::kDeadlineFeasibleLocal,
                         ReasonCode::kDeadlineInfeasibleOnEdge);
}

}  // namespace ecs
