#include "sched/edge_only.hpp"

#include <algorithm>

namespace ecs {

void EdgeOnlyPolicy::reset(const Instance& instance) {
  deadlines_.assign(instance.jobs.size(), kTimeInfinity);
  entries_.clear();
  touched_.assign(
      static_cast<std::size_t>(instance.platform.edge_count()), 0);
}

bool EdgeOnlyPolicy::feasible_on_edge(const SimView& view, EdgeId j,
                                      double stretch,
                                      std::vector<double>* deadlines_out) {
  // On a single machine with every candidate job already released,
  // preemptive EDF is optimal and feasibility reduces to: process jobs by
  // deadline; the cumulative remaining execution time must meet each
  // deadline.
  const Platform& platform = view.platform();
  const double speed = platform.edge_speed(j);
  entries_.clear();
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    if (s.job.origin != j) continue;
    // Edge-Only never allocates elsewhere, so remaining work is meaningful
    // only for an edge allocation; an unassigned job is fresh.
    const double rem_work =
        (s.alloc == kAllocEdge) ? clamp_amount(s.rem_work) : s.job.work;
    entries_.push_back(Entry{s.job.id,
                             s.job.release + stretch * s.best_time,
                             rem_work / speed});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.deadline != b.deadline ? a.deadline < b.deadline
                                              : a.id < b.id;
            });
  Time cursor = view.now();
  for (const Entry& e : entries_) {
    cursor += e.exec_time;
    if (time_gt(cursor, e.deadline)) return false;
  }
  if (deadlines_out != nullptr) {
    // Keyed by state slot (identity outside streaming): slots recycle when
    // jobs retire, and a recycled slot's new occupant triggers a release on
    // its edge, which rewrites every deadline of that edge anyway.
    for (const Entry& e : entries_) {
      (*deadlines_out)[view.slot(e.id)] = e.deadline;
    }
  }
  return true;
}

void EdgeOnlyPolicy::recompute_edge_deadlines(const SimView& view, EdgeId j) {
  const Platform& platform = view.platform();
  const double speed = platform.edge_speed(j);
  double lo = 1.0;
  bool any = false;
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    if (s.job.origin != j) continue;
    any = true;
    const double rem_work =
        (s.alloc == kAllocEdge) ? clamp_amount(s.rem_work) : s.job.work;
    const Time best_done = view.now() + rem_work / speed;
    lo = std::max(lo, (best_done - s.job.release) / s.best_time);
  }
  if (!any) return;

  const double best = min_feasible_stretch(
      lo, config_.epsilon, config_.max_iterations,
      [&](double s) { return feasible_on_edge(view, j, s, nullptr); });
  (void)feasible_on_edge(view, j, best, &deadlines_);
}

void EdgeOnlyPolicy::decide(const SimView& view,
                            const std::vector<Event>& events,
                            std::vector<Directive>& out) {
  // Track the engine's slot table (it only ever grows within a run).
  if (deadlines_.size() < view.states().size()) {
    deadlines_.resize(view.states().size(), kTimeInfinity);
  }
  // Recompute deadlines only for edges that saw a release in this batch.
  touched_.assign(
      static_cast<std::size_t>(view.platform().edge_count()), 0);
  for (const Event& e : events) {
    if (e.kind == EventKind::kRelease) {
      touched_[view.state(e.job).job.origin] = 1;
    }
  }
  for (EdgeId j = 0; j < view.platform().edge_count(); ++j) {
    if (touched_[j]) recompute_edge_deadlines(view, j);
  }

  // EDF on every edge: priority = deadline; the engine runs, per edge, the
  // allocated job with the smallest priority (preempting as needed).
  const std::span<const JobId> live = view.live_jobs();
  out.reserve(out.size() + live.size());
  for (const JobId id : live) {
    out.push_back(Directive{id, kAllocEdge, deadlines_[view.slot(id)],
                            ReasonCode::kEdgeOnlyEdf});
  }
}

}  // namespace ecs
