#include "sched/offline/spt.hpp"

#include <algorithm>
#include <cassert>

namespace ecs {

double max_stretch_in_order(std::span<const double> works, double speed) {
  assert(speed > 0.0);
  double completion = 0.0;
  double worst = 0.0;
  for (double w : works) {
    assert(w > 0.0);
    completion += w / speed;
    worst = std::max(worst, completion / (w / speed));
  }
  return worst;
}

double max_stretch_spt(std::vector<double> works, double speed) {
  std::sort(works.begin(), works.end());
  return max_stretch_in_order(works, speed);
}

}  // namespace ecs
