#include "sched/offline/bnb.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ecs {
namespace {

constexpr double kEps = 1e-12;

/// Jobs on one machine, assigned in descending work order. Since service
/// is SPT (Lemma 2), adding a (shorter) job of work w delays every job
/// already present by w: stretch_i += w / w_i.
class MachineState {
 public:
  void add(double w) {
    for (std::size_t i = 0; i < works_.size(); ++i) {
      stretch_[i] += w / works_[i];
    }
    works_.push_back(w);
    stretch_.push_back(1.0);  // runs first among current members
    recompute_max();
  }

  void remove_last() {
    const double w = works_.back();
    works_.pop_back();
    stretch_.pop_back();
    for (std::size_t i = 0; i < works_.size(); ++i) {
      stretch_[i] -= w / works_[i];
    }
    recompute_max();
  }

  [[nodiscard]] double max_stretch() const noexcept { return max_stretch_; }
  [[nodiscard]] bool empty() const noexcept { return works_.empty(); }

 private:
  void recompute_max() {
    max_stretch_ = 0.0;
    for (double s : stretch_) max_stretch_ = std::max(max_stretch_, s);
  }

  std::vector<double> works_;
  std::vector<double> stretch_;
  double max_stretch_ = 0.0;
};

class Solver {
 public:
  Solver(std::vector<double> works_desc, int machines)
      : works_(std::move(works_desc)), states_(machines) {}

  BnbResult solve() {
    assignment_.assign(works_.size(), 0);
    best_assignment_.assign(works_.size(), 0);
    seed_incumbent();
    dfs(0, 0);
    BnbResult result;
    result.max_stretch = incumbent_;
    result.machine_of = best_assignment_;
    result.nodes = nodes_;
    return result;
  }

 private:
  [[nodiscard]] double global_max() const {
    double worst = 0.0;
    for (const MachineState& m : states_) {
      worst = std::max(worst, m.max_stretch());
    }
    return worst;
  }

  /// Greedy longest-first seeding: place each job on the machine where the
  /// resulting global max-stretch is smallest. Provides the initial upper
  /// bound the search prunes against.
  void seed_incumbent() {
    std::vector<int> greedy(works_.size());
    for (std::size_t t = 0; t < works_.size(); ++t) {
      int best_machine = 0;
      double best_value = std::numeric_limits<double>::infinity();
      for (std::size_t m = 0; m < states_.size(); ++m) {
        states_[m].add(works_[t]);
        const double value = global_max();
        states_[m].remove_last();
        if (value < best_value - kEps) {
          best_value = value;
          best_machine = static_cast<int>(m);
        }
        if (states_[m].empty()) break;  // further empty machines identical
      }
      states_[best_machine].add(works_[t]);
      greedy[t] = best_machine;
    }
    incumbent_ = global_max();
    best_assignment_ = greedy;
    // Unwind the greedy state before the exact search starts.
    for (std::size_t t = works_.size(); t-- > 0;) {
      states_[greedy[t]].remove_last();
    }
  }

  void dfs(std::size_t t, int used_machines) {
    ++nodes_;
    if (t == works_.size()) {
      const double value = global_max();
      if (value < incumbent_ - kEps) {
        incumbent_ = value;
        best_assignment_ = assignment_;
      }
      return;
    }
    const double w = works_[t];
    const int limit = std::min(static_cast<int>(states_.size()),
                               used_machines + 1);
    for (int m = 0; m < limit; ++m) {
      // Equal jobs are interchangeable: force non-decreasing machine
      // indices within a run of equal works.
      if (t > 0 && works_[t - 1] == w && m < assignment_[t - 1]) continue;
      states_[m].add(w);
      assignment_[t] = m;
      if (global_max() < incumbent_ - kEps) {
        dfs(t + 1, std::max(used_machines, m + 1));
      }
      states_[m].remove_last();
    }
  }

  std::vector<double> works_;
  std::vector<MachineState> states_;
  std::vector<int> assignment_;
  std::vector<int> best_assignment_;
  double incumbent_ = std::numeric_limits<double>::infinity();
  std::uint64_t nodes_ = 0;
};

}  // namespace

BnbResult bnb_mmsh(const std::vector<double>& works, int machines) {
  if (works.empty()) {
    throw std::invalid_argument("bnb_mmsh: no jobs");
  }
  if (machines < 1) {
    throw std::invalid_argument("bnb_mmsh: need at least one machine");
  }
  for (double w : works) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("bnb_mmsh: works must be positive");
    }
  }

  // Sort descending, remembering the original positions.
  std::vector<std::size_t> order(works.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return works[a] != works[b] ? works[a] > works[b] : a < b;
  });
  std::vector<double> sorted;
  sorted.reserve(works.size());
  for (std::size_t idx : order) sorted.push_back(works[idx]);

  Solver solver(std::move(sorted), machines);
  BnbResult internal = solver.solve();

  BnbResult result;
  result.max_stretch = internal.max_stretch;
  result.nodes = internal.nodes;
  result.machine_of.assign(works.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    result.machine_of[order[pos]] = internal.machine_of[pos];
  }
  return result;
}

}  // namespace ecs
