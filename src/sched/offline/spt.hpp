// spt.hpp - Shortest-Processing-Time ordering utilities (paper Lemma 2).
//
// On a single machine without release dates, some max-stretch-optimal
// schedule processes jobs from shortest to longest without preemption
// (Lemma 2). These helpers evaluate the max-stretch of a given order and of
// the SPT order; the test suite uses them to verify the lemma exhaustively
// on small instances, and the MMSH brute-force solver relies on them to
// reduce a partition to its cost.
#pragma once

#include <span>
#include <vector>

namespace ecs {

/// Max-stretch of executing `works` in the given order on one machine of
/// the given speed, starting at time 0, without preemption, all release
/// dates 0. The stretch denominator of a job is its own execution time, so
/// the k-th job's stretch is (prefix sum) / w_k.
[[nodiscard]] double max_stretch_in_order(std::span<const double> works,
                                          double speed = 1.0);

/// Max-stretch of the SPT (non-decreasing works) order; by Lemma 2 this is
/// the single-machine optimum without release dates.
[[nodiscard]] double max_stretch_spt(std::vector<double> works,
                                     double speed = 1.0);

}  // namespace ecs
