#include "sched/offline/brute_force.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sched/offline/spt.hpp"
#include "sim/engine.hpp"

namespace ecs {
namespace {

/// Max-stretch of one machine's job set, evaluated in SPT order (optimal by
/// Lemma 2). `works` need not be sorted.
double machine_cost(std::vector<double> works) {
  if (works.empty()) return 0.0;
  return max_stretch_spt(std::move(works));
}

void mmsh_search(const std::vector<double>& works, int machines,
                 std::size_t pos, std::vector<int>& assignment,
                 int used_machines, std::vector<std::vector<double>>& loads,
                 MmshResult& best) {
  if (pos == works.size()) {
    double worst = 0.0;
    for (const auto& load : loads) {
      worst = std::max(worst, machine_cost(load));
    }
    if (best.machine_of.empty() || worst < best.max_stretch) {
      best.max_stretch = worst;
      best.machine_of = assignment;
    }
    return;
  }
  // Symmetry breaking: job `pos` may go on any machine already in use, or
  // on exactly one fresh machine.
  const int limit = std::min(machines, used_machines + 1);
  for (int m = 0; m < limit; ++m) {
    assignment[pos] = m;
    loads[m].push_back(works[pos]);
    mmsh_search(works, machines, pos + 1, assignment,
                std::max(used_machines, m + 1), loads, best);
    loads[m].pop_back();
  }
}

}  // namespace

MmshResult exact_mmsh(const std::vector<double>& works, int machines) {
  if (works.empty()) {
    throw std::invalid_argument("exact_mmsh: no jobs");
  }
  if (machines < 1) {
    throw std::invalid_argument("exact_mmsh: need at least one machine");
  }
  for (double w : works) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("exact_mmsh: works must be positive");
    }
  }
  if (works.size() > 14) {
    throw std::length_error(
        "exact_mmsh: instance too large for exhaustive search (n > 14)");
  }
  MmshResult best;
  std::vector<int> assignment(works.size(), 0);
  std::vector<std::vector<double>> loads(machines);
  mmsh_search(works, machines, 0, assignment, 0, loads, best);
  return best;
}

BruteForceResult brute_force_edge_cloud(const Instance& instance,
                                        int max_jobs) {
  require_valid_instance(instance);
  const int n = instance.job_count();
  if (n > max_jobs) {
    throw std::length_error(
        "brute_force_edge_cloud: instance too large for exhaustive search");
  }

  const int pc = instance.platform.cloud_count();
  BruteForceResult best;
  best.max_stretch = kTimeInfinity;

  std::vector<int> alloc(n, kAllocEdge);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Enumerate allocations recursively with cloud symmetry breaking (the
  // cloud index assigned to a job is at most one past the largest index
  // used by earlier jobs), then priority permutations.
  const auto evaluate_allocation = [&]() {
    std::vector<int> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      std::vector<double> priority(n);
      for (int rank = 0; rank < n; ++rank) {
        priority[perm[rank]] = static_cast<double>(rank);
      }
      FixedPolicy policy(alloc, priority);
      const SimResult sim = simulate(instance, policy);
      const ScheduleMetrics metrics = compute_metrics(instance, sim.schedule);
      if (metrics.max_stretch < best.max_stretch - 1e-12) {
        best.max_stretch = metrics.max_stretch;
        best.alloc = alloc;
        best.priority = priority;
        best.schedule = sim.schedule;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  };

  const auto recurse = [&](auto&& self, int pos, int max_cloud_used) -> void {
    if (pos == n) {
      evaluate_allocation();
      return;
    }
    alloc[pos] = kAllocEdge;
    self(self, pos + 1, max_cloud_used);
    const int cloud_limit = std::min(pc, max_cloud_used + 1);
    for (int k = 0; k < cloud_limit; ++k) {
      alloc[pos] = k;
      self(self, pos + 1, std::max(max_cloud_used, k + 1));
    }
    alloc[pos] = kAllocEdge;
  };
  recurse(recurse, 0, 0);
  return best;
}

}  // namespace ecs
