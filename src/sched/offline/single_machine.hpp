// single_machine.hpp - Offline optimal max-stretch on a single machine.
//
// Bender et al. showed that the offline single-machine problem (preemption
// allowed, release dates) is solved in polynomial time by a binary search
// on the target stretch S: give each job the deadline r_i + S * denom_i and
// test feasibility with preemptive EDF, which is optimal on one machine.
// This module implements that algorithm exactly (up to the binary-search
// precision); it is used
//   * as the reference the Edge-Only heuristic is tested against,
//   * as an optimality oracle in unit tests (where it cross-checks the
//     brute-force solver),
//   * to compute per-edge lower bounds in the experiment reports.
#pragma once

#include <span>
#include <vector>

#include "core/time.hpp"

namespace ecs {

/// A job as seen by a single machine: processing time, release date, and
/// the stretch denominator (defaults to the processing time; the edge-cloud
/// adaptation passes min(t^e, t^c) instead).
struct SmJob {
  double proc = 0.0;
  Time release = 0.0;
  double denom = 0.0;  ///< 0 means "use proc"
};

/// Preemptive EDF feasibility with release dates: can every job finish by
/// its deadline? Exact on a single machine.
[[nodiscard]] bool edf_feasible_single_machine(
    std::span<const SmJob> jobs, std::span<const double> deadlines);

struct SingleMachineResult {
  double max_stretch = 0.0;           ///< smallest feasible stretch found
  std::vector<double> deadlines;      ///< deadlines at that stretch
  int iterations = 0;                 ///< binary-search probes used
};

/// Offline optimal max-stretch on one machine (to relative precision eps).
[[nodiscard]] SingleMachineResult optimal_max_stretch_single_machine(
    std::span<const SmJob> jobs, double eps = 1e-6, int max_iterations = 128);

}  // namespace ecs
