#include "sched/offline/single_machine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ecs {
namespace {

double denom_of(const SmJob& job) {
  return job.denom > 0.0 ? job.denom : job.proc;
}

}  // namespace

bool edf_feasible_single_machine(std::span<const SmJob> jobs,
                                 std::span<const double> deadlines) {
  assert(jobs.size() == deadlines.size());
  const std::size_t n = jobs.size();
  if (n == 0) return true;

  // Order of release; EDF selection among released jobs.
  std::vector<std::size_t> by_release(n);
  for (std::size_t i = 0; i < n; ++i) by_release[i] = i;
  std::sort(by_release.begin(), by_release.end(),
            [&](std::size_t a, std::size_t b) {
              return jobs[a].release < jobs[b].release;
            });

  std::vector<double> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = jobs[i].proc;

  // Released & unfinished jobs, scanned linearly for the earliest deadline
  // (n is small in every use of this oracle).
  std::vector<std::size_t> active;
  std::size_t next_release = 0;
  Time t = jobs[by_release[0]].release;

  while (true) {
    while (next_release < n &&
           time_le(jobs[by_release[next_release]].release, t)) {
      active.push_back(by_release[next_release]);
      ++next_release;
    }
    if (active.empty()) {
      if (next_release == n) return true;  // everything done
      t = jobs[by_release[next_release]].release;
      continue;
    }
    // Earliest-deadline job among the active ones.
    std::size_t best = active[0];
    std::size_t best_pos = 0;
    for (std::size_t pos = 1; pos < active.size(); ++pos) {
      if (deadlines[active[pos]] < deadlines[best]) {
        best = active[pos];
        best_pos = pos;
      }
    }
    const Time horizon = next_release < n
                             ? jobs[by_release[next_release]].release
                             : kTimeInfinity;
    const double slice = std::min(remaining[best], horizon - t);
    t += slice;
    remaining[best] -= slice;
    if (amount_done(remaining[best])) {
      if (time_gt(t, deadlines[best])) return false;
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_pos));
    } else if (time_gt(t, deadlines[best])) {
      // The most urgent job already missed its deadline.
      return false;
    }
  }
}

SingleMachineResult optimal_max_stretch_single_machine(
    std::span<const SmJob> jobs, double eps, int max_iterations) {
  SingleMachineResult result;
  result.deadlines.assign(jobs.size(), kTimeInfinity);
  if (jobs.empty()) {
    result.max_stretch = 1.0;
    return result;
  }

  std::vector<double> deadlines(jobs.size());
  const auto probe = [&](double stretch) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      deadlines[i] = jobs[i].release + stretch * denom_of(jobs[i]);
    }
    ++result.iterations;
    return edf_feasible_single_machine(jobs, deadlines);
  };

  double lo = 1.0;
  double hi = 1.0;
  while (!probe(hi) && result.iterations < max_iterations) hi *= 2.0;
  while ((hi - lo) > eps * hi && result.iterations < max_iterations) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.max_stretch = hi;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.deadlines[i] = jobs[i].release + hi * denom_of(jobs[i]);
  }
  return result;
}

}  // namespace ecs
