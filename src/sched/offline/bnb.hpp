// bnb.hpp - Branch-and-bound exact solver for MMSH (max-stretch,
// identical machines, no release dates — the problem at the heart of the
// paper's NP-hardness proof, section IV).
//
// The key structural fact (Lemma 2) is that each machine serves its jobs
// in SPT order, so a solution is fully described by a partition of the
// jobs. The solver branches on jobs in descending work order (largest
// first — the classic symmetry/pruning-friendly order for makespan-like
// problems) and tracks, per machine, the current load of jobs longer than
// the one being placed. Because jobs are assigned longest-first and served
// shortest-first, a job of work w placed on a machine with accumulated
// load L (of longer jobs) will start after every *shorter* job placed
// there later; its final stretch cannot be computed until the partition is
// complete — so the bound works on the dual form instead:
//
//   stretch of job j on machine m  =  (sum of works <= w_j on m) / w_j
//
// Assigning in descending order means that when job j lands on machine m,
// every job already on m is *longer* and thus does not contribute to j's
// stretch, while all of m's future jobs do. The solver therefore accounts
// each job's contribution lazily: when placing job j on m it adds w_j to
// m's "suffix load" and knows that every earlier (longer) job i on m has
// its completion extended by w_j. Maintaining per-machine (work_i,
// suffix_i) pairs yields the exact stretches incrementally and admits a
// tight prune: the stretch of the longest job on each machine is already
// final in the lower-bound sense (it can only grow), so any partial
// assignment whose current max per-machine stretch reaches the incumbent
// is cut.
//
// Intended range: n <= ~24 with a handful of machines; the test suite
// cross-validates it against the O(m^n) enumerator on small instances.
#pragma once

#include <cstdint>
#include <vector>

namespace ecs {

struct BnbResult {
  double max_stretch = 0.0;
  std::vector<int> machine_of;  ///< optimal machine per job (input order)
  std::uint64_t nodes = 0;      ///< search-tree nodes expanded
};

/// Exact MMSH optimum via branch and bound. Throws std::invalid_argument
/// on empty input, non-positive works or machines < 1.
[[nodiscard]] BnbResult bnb_mmsh(const std::vector<double>& works,
                                 int machines);

}  // namespace ecs
