// brute_force.hpp - Exact solvers for tiny offline instances.
//
// Two exhaustive searches back the test suite:
//
//  * `exact_mmsh` solves MMSH (max-stretch, homogeneous machines, no
//    release dates — the problem whose NP-hardness the paper establishes)
//    exactly: it enumerates job-to-machine partitions with machine-symmetry
//    breaking and evaluates each machine in SPT order, which Lemma 2 proves
//    optimal per machine. Exponential in n; intended for n <= ~12.
//
//  * `brute_force_edge_cloud` searches the edge-cloud problem over the
//    class of *fixed-priority preemptive schedules*: it enumerates every
//    allocation (origin edge or one of the cloud processors, with cloud
//    symmetry breaking) and every global priority order, simulating each
//    with the engine. The result is the best schedule in that rich class —
//    an upper bound on the true optimum that matches it on the instances
//    used in the tests (e.g. the paper's Figure 1 example). Exponential
//    (n! * (1+P^c)^n); intended for n <= ~6.
#pragma once

#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "core/schedule.hpp"

namespace ecs {

struct MmshResult {
  double max_stretch = 0.0;
  std::vector<int> machine_of;  ///< optimal machine per job
};

/// Exact MMSH optimum: `works` on `machines` identical unit-speed machines,
/// all release dates zero. Throws std::invalid_argument on empty input,
/// non-positive work, or machines < 1, and std::length_error when the
/// search space is unreasonably large (n > 14).
[[nodiscard]] MmshResult exact_mmsh(const std::vector<double>& works,
                                    int machines);

struct BruteForceResult {
  double max_stretch = 0.0;
  std::vector<int> alloc;        ///< kAllocEdge or cloud index per job
  std::vector<double> priority;  ///< priority per job (rank in best order)
  Schedule schedule;             ///< the realized best schedule
};

/// Best fixed-priority preemptive schedule of the instance, by exhaustive
/// search. Throws std::length_error when the instance has more than
/// `max_jobs` jobs (default 7) to keep runtimes sane.
[[nodiscard]] BruteForceResult brute_force_edge_cloud(const Instance& instance,
                                                      int max_jobs = 7);

}  // namespace ecs
