#include "sched/srpt.hpp"

#include <limits>

namespace ecs {

void SrptPolicy::reset(const Instance& instance) {
  (void)instance;
  candidates_.clear();
  edge_free_.clear();
  cloud_free_.clear();
}

void SrptPolicy::decide(const SimView& view, const std::vector<Event>& events,
                        std::vector<Directive>& out) {
  (void)events;  // SRPT recomputes its choices from scratch at each event.
  const Platform& platform = view.platform();
  const Time now = view.now();

  const std::span<const JobId> live = view.live_jobs();
  std::vector<JobId>& candidates = candidates_;
  candidates.assign(live.begin(), live.end());
  std::vector<char>& edge_free = edge_free_;
  std::vector<char>& cloud_free = cloud_free_;
  edge_free.assign(static_cast<std::size_t>(platform.edge_count()), 1);
  cloud_free.assign(static_cast<std::size_t>(platform.cloud_count()), 1);

  std::vector<Directive>& directives = out;
  directives.reserve(directives.size() + candidates.size());
  double priority = 0.0;


  while (!candidates.empty()) {
    Time best_done = kTimeInfinity;
    std::size_t best_pos = candidates.size();
    int best_resource = kAllocUnassigned;
    const int fresh = pick_fresh_cloud(view, cloud_free);

    for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
      const JobState& s = view.state(candidates[pos]);
      const auto consider = [&](int target) {
        const Time done = uncontended_completion(
            view.instance(), s, target == kTargetKeep ? s.alloc : target,
            now);
        if (done < best_done - kDecisionMargin) {
          best_done = done;
          best_pos = pos;
          best_resource = target;
        }
      };
      // Current allocation first: on equal completion times, continuing
      // (keeping progress) wins over any restart. If the job's own
      // resource was claimed earlier this round, waiting for it
      // (kTargetKeep) competes against restarting from scratch elsewhere.
      if (s.alloc != kAllocUnassigned) {
        const bool own_free =
            s.alloc == kAllocEdge ? edge_free[s.job.origin] != 0
                                  : cloud_free[s.alloc] != 0;
        consider(own_free ? s.alloc : kTargetKeep);
      }
      const bool may_restart =
          config_.allow_reexecution || s.alloc == kAllocUnassigned;
      if (may_restart) {
        if (edge_free[s.job.origin] && s.alloc != kAllocEdge) {
          consider(kAllocEdge);
        }
        if (fresh >= 0 && fresh != s.alloc) consider(fresh);
      }
    }

    if (best_pos == candidates.size()) break;  // nothing placeable
    const JobId chosen = candidates[best_pos];
    directives.push_back(Directive{
        chosen, best_resource, priority,
        best_resource == kTargetKeep ? ReasonCode::kSrptWaitForOwnResource
                                     : ReasonCode::kSrptShortestRemaining});
    priority += 1.0;
    if (best_resource == kAllocEdge) {
      edge_free[view.state(chosen).job.origin] = 0;
    } else if (best_resource != kTargetKeep) {
      cloud_free[best_resource] = 0;
    }
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }
}

}  // namespace ecs
