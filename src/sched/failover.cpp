#include "sched/failover.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/projection.hpp"

namespace ecs {

namespace {

/// Priority for evacuation directives the base policy did not issue: far
/// below anything a real policy emits, so rescued jobs never preempt the
/// base policy's explicit ordering, but still finite so the directive is
/// honored by the engine's priority sort.
constexpr double kEvacuationPriority = 1e15;

}  // namespace

FailoverPolicy::FailoverPolicy(std::unique_ptr<Policy> base,
                               FailoverConfig config)
    : base_(std::move(base)), config_(config) {
  if (base_ == nullptr) {
    throw std::invalid_argument("FailoverPolicy: null base policy");
  }
  if (!(config_.backoff_base > 0.0) || !(config_.backoff_factor >= 1.0) ||
      !(config_.backoff_max >= config_.backoff_base) ||
      config_.blacklist_after < 1) {
    throw std::invalid_argument("FailoverPolicy: invalid config");
  }
}

std::string FailoverPolicy::name() const {
  return "Failover(" + base_->name() + ")";
}

void FailoverPolicy::reset(const Instance& instance) {
  const std::size_t pc =
      static_cast<std::size_t>(instance.platform.cloud_count());
  failures_.assign(pc, 0);
  retry_at_.assign(pc, -kTimeInfinity);
  down_.assign(pc, 0);
  faulted_.assign(pc, 0);
  crashed_.assign(pc, 0);
  cloud_load_.assign(pc, 0);
  directed_stamp_.assign(instance.jobs.size(), 0);
  round_ = 0;
  base_->reset(instance);
}

bool FailoverPolicy::blacklisted(CloudId k) const {
  return failures_.at(k) >= config_.blacklist_after;
}

int FailoverPolicy::fault_count(CloudId k) const { return failures_.at(k); }

bool FailoverPolicy::avoid_new(CloudId k, Time now) const {
  return down_[k] != 0 || blacklisted(k) || now < retry_at_[k];
}

bool FailoverPolicy::evacuate(CloudId k) const {
  return down_[k] != 0 || blacklisted(k);
}

ReasonCode FailoverPolicy::reroute_cause(CloudId k) const {
  if (down_[k] != 0) return ReasonCode::kFailoverCrashEvacuation;
  if (blacklisted(k)) return ReasonCode::kFailoverBlacklist;
  return ReasonCode::kFailoverBackoff;
}

int FailoverPolicy::reroute_target(const SimView& view, const JobState& state,
                                   Time now, std::vector<int>& cloud_load,
                                   bool* no_healthy_cloud) const {
  // Fastest healthy cloud, ties broken by fewest resident jobs: a fault
  // typically strands many jobs at once, and funneling them all onto one
  // survivor both congests it and concentrates the blast radius of the
  // next crash. (Announced outages remain the base policy's concern;
  // health here only reflects the observed fault history.)
  const Platform& platform = view.platform();
  CloudId best_cloud = -1;
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    if (avoid_new(k, now)) continue;
    if (best_cloud < 0 ||
        platform.cloud_speed(k) > platform.cloud_speed(best_cloud) ||
        (platform.cloud_speed(k) == platform.cloud_speed(best_cloud) &&
         cloud_load[k] < cloud_load[best_cloud])) {
      best_cloud = k;
    }
  }
  if (no_healthy_cloud != nullptr) *no_healthy_cloud = best_cloud < 0;
  if (best_cloud < 0) return kAllocEdge;  // graceful degradation
  const Time on_cloud =
      uncontended_completion(view.instance(), state, best_cloud, now);
  const Time on_edge =
      uncontended_completion(view.instance(), state, kAllocEdge, now);
  if (on_edge <= on_cloud) return kAllocEdge;
  ++cloud_load[best_cloud];
  return best_cloud;
}

void FailoverPolicy::decide(const SimView& view,
                            const std::vector<Event>& events,
                            std::vector<Directive>& out) {
  const Time now = view.now();
  if (directed_stamp_.size() < view.states().size()) {
    directed_stamp_.assign(view.states().size(), 0);  // never-reset guard
  }

  // 1. Digest the fault/recovery events. Several kFault events for one
  //    cloud in the same batch (a crash aborting many jobs) count as ONE
  //    incident against that cloud's health.
  std::vector<char>& faulted = faulted_;
  std::vector<char>& crashed = crashed_;
  faulted.assign(failures_.size(), 0);
  crashed.assign(failures_.size(), 0);
  for (const Event& e : events) {
    if (e.cloud < 0 ||
        static_cast<std::size_t>(e.cloud) >= failures_.size()) {
      continue;
    }
    if (e.kind == EventKind::kFault) {
      faulted[e.cloud] = 1;
      if (e.job < 0) {  // cloud-level event: crash
        crashed[e.cloud] = 1;
        down_[e.cloud] = 1;
      }
    } else if (e.kind == EventKind::kRecovery) {
      down_[e.cloud] = 0;
    }
  }
  for (std::size_t k = 0; k < faulted.size(); ++k) {
    if (faulted[k] == 0) continue;
    // Only crashes count toward the blacklist: a message loss is transient
    // and cheap (one retransmission), so writing a cloud off for losses
    // would trade a fast machine for slow edge re-execution.
    if (crashed[k] != 0) ++failures_[k];
    const double delay =
        std::min(config_.backoff_max,
                 config_.backoff_base *
                     std::pow(config_.backoff_factor,
                              std::max(failures_[k], 1) - 1));
    retry_at_[k] = std::max(retry_at_[k], now + delay);
  }

  // 2. Let the base policy decide, then rewrite unhealthy placements.
  //    Reroutes balance on live resident counts (updated as we reroute) so
  //    a batch of stranded jobs spreads over the healthy clouds.
  std::vector<int>& cloud_load = cloud_load_;
  cloud_load.assign(failures_.size(), 0);
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    if (is_cloud_alloc(s.alloc) &&
        static_cast<std::size_t>(s.alloc) < cloud_load.size()) {
      ++cloud_load[s.alloc];
    }
  }
  const std::size_t base_begin = out.size();
  base_->decide(view, events, out);
  if (++round_ == 0) {  // wrap: stale stamps could collide, wipe them
    std::fill(directed_stamp_.begin(), directed_stamp_.end(), 0U);
    round_ = 1;
  }
  for (std::size_t i = base_begin; i < out.size(); ++i) {
    Directive& d = out[i];
    // Stamps are keyed by state slot (identity outside streaming) so the
    // table stays O(live) on unbounded id streams; a stamp only lives for
    // one round, so slot recycling between rounds cannot alias.
    const std::int32_t slot = d.job < 0 ? -1 : view.slot(d.job);
    if (slot < 0 ||
        static_cast<std::size_t>(slot) >= directed_stamp_.size()) {
      continue;  // the engine reports malformed directives, not us
    }
    directed_stamp_[slot] = round_;
    const JobState& s = view.state(d.job);
    const int effective = d.target == kTargetKeep ? s.alloc : d.target;
    if (!is_cloud_alloc(effective) ||
        static_cast<std::size_t>(effective) >= failures_.size()) {
      continue;
    }
    const bool rewrite = (d.target == kTargetKeep || effective == s.alloc)
                             // Not a new placement: move the job only off
                             // dead/blacklisted clouds (a backoff window
                             // alone does not justify discarding progress).
                             ? evacuate(effective)
                             : avoid_new(effective, now);
    if (rewrite) {
      const ReasonCode cause = reroute_cause(effective);
      bool no_healthy = false;
      d.target = reroute_target(view, s, now, cloud_load, &no_healthy);
      d.reason = (d.target == kAllocEdge && no_healthy)
                     ? ReasonCode::kFailoverDegradeToEdge
                     : cause;
    }
  }

  // 3. Evacuate residents of dead/blacklisted clouds that the base policy
  //    left alone (it sees nothing wrong with them).
  for (const JobId id : view.live_jobs()) {
    const JobState& s = view.state(id);
    if (directed_stamp_[view.slot(id)] == round_) continue;
    if (!is_cloud_alloc(s.alloc) ||
        static_cast<std::size_t>(s.alloc) >= failures_.size() ||
        !evacuate(s.alloc)) {
      continue;
    }
    const ReasonCode cause = reroute_cause(s.alloc);
    bool no_healthy = false;
    const int target = reroute_target(view, s, now, cloud_load, &no_healthy);
    out.push_back(Directive{s.job.id, target, kEvacuationPriority,
                            (target == kAllocEdge && no_healthy)
                                ? ReasonCode::kFailoverDegradeToEdge
                                : cause});
  }
}

}  // namespace ecs
