// ssf_edf.hpp - Stretch-So-Far Earliest-Deadline-First (paper section V-D).
//
// The heuristic extends Bender et al.'s stretch-so-far EDF to the
// edge-cloud setting. At every *release* event it binary-searches the
// smallest target stretch S that appears achievable from the current state:
// each live job J_i receives the deadline
//
//     d_i = r_i + S * min(t^e_i, t^c_i)
//
// (with remaining amounts accounted for), and feasibility of a candidate S
// is tested by walking jobs in EDF order through a contention-aware list
// projection (ResourceClock), placing each on the processor where it
// completes earliest. EDF placement is not optimal in the edge-cloud model
// (the paper gives a two-job counterexample), so the search yields the best
// *verified-achievable* stretch, not the optimum — exactly the paper's
// algorithm.
//
// At every event (release or completion) the job with the smallest deadline
// is assigned to the processor where it completes the earliest, then the
// next job, and so on; priorities handed to the engine are the EDF ranks.
#pragma once

#include <vector>

#include "sched/common.hpp"

namespace ecs {

struct SsfEdfConfig {
  /// Relative precision of the binary search on the target stretch
  /// (the paper's epsilon; complexity grows with log(1/eps)).
  double epsilon = 1e-3;
  /// Multiplier applied to the optimal stretch-so-far when deriving
  /// deadlines (the paper's alpha; alpha = 1 gives Delta-competitiveness
  /// on a single machine).
  double alpha = 1.0;
  /// Cap on binary-search iterations (safety; 60 is far beyond what the
  /// epsilon above requires).
  int max_iterations = 60;
};

class SsfEdfPolicy final : public Policy {
 public:
  SsfEdfPolicy() = default;
  explicit SsfEdfPolicy(const SsfEdfConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "SSF-EDF"; }

  void reset(const Instance& instance) override;

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

  /// Target stretch selected by the last binary search (for tests).
  [[nodiscard]] double last_target_stretch() const noexcept {
    return last_target_stretch_;
  }

 private:
  /// Tests whether target stretch S is achievable from the current state;
  /// fills `deadlines` for live jobs when it is. Non-const: it reuses the
  /// workspace entry buffer and projection clock.
  [[nodiscard]] bool feasible(const SimView& view, double stretch,
                              std::vector<double>* deadlines_out);

  void recompute_deadlines(const SimView& view);

  SsfEdfConfig config_;
  std::vector<double> deadlines_;  ///< per state SLOT (view.slot); +inf idle
  double last_target_stretch_ = 0.0;
  // Workspace, reused across decide() calls and feasibility probes (zero
  // steady-state allocation; see DESIGN.md §6).
  std::vector<OrderedJob> entries_;  ///< per-probe EDF entries
  std::vector<OrderedJob> order_;    ///< decide()'s EDF order
  ResourceClock clock_;  ///< probe + assignment projections (sequential)
};

}  // namespace ecs
