// edge_only.hpp - The Edge-Only baseline (paper section V-A).
//
// Never uses the cloud: every job runs on its origin edge processor. Since
// the edges are then independent single machines, each runs the
// Stretch-So-Far Earliest-Deadline-First algorithm of Bender et al.
// independently: at each release, a binary search finds the smallest
// stretch achievable for the jobs currently live on that edge (preemptive
// EDF feasibility is *exact* on a single machine when all candidates are
// already released), deadlines d_i = r_i + S * min(t^e_i, t^c_i) are
// derived, and the edge processes jobs in EDF order with preemption.
//
// Following the paper, the stretch denominator still accounts for the
// potential cloud execution time min(t^e_i, t^c_i), so reported stretches
// are comparable with the cloud-using heuristics.
#pragma once

#include <vector>

#include "sched/common.hpp"

namespace ecs {

struct EdgeOnlyConfig {
  double epsilon = 1e-3;  ///< relative precision of the binary search
  int max_iterations = 60;
};

class EdgeOnlyPolicy final : public Policy {
 public:
  EdgeOnlyPolicy() = default;
  explicit EdgeOnlyPolicy(const EdgeOnlyConfig& config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Edge-Only"; }

  void reset(const Instance& instance) override;

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

 private:
  /// One candidate job of the per-edge EDF feasibility test.
  struct Entry {
    JobId id;
    double deadline;
    double exec_time;  ///< remaining execution time on this edge
  };

  /// Smallest feasible stretch for the live jobs of edge `j` from the
  /// current state; exact up to epsilon (single-machine preemptive EDF).
  void recompute_edge_deadlines(const SimView& view, EdgeId j);

  /// Single-machine EDF feasibility for candidate stretch S on edge j.
  /// Non-const: it reuses the workspace entry buffer.
  [[nodiscard]] bool feasible_on_edge(const SimView& view, EdgeId j,
                                      double stretch,
                                      std::vector<double>* deadlines_out);

  EdgeOnlyConfig config_;
  std::vector<double> deadlines_;
  // Workspace, reused across decide() calls (zero steady-state allocation).
  std::vector<Entry> entries_;
  std::vector<char> touched_;  ///< edges with a release in this batch
};

}  // namespace ecs
