// failover.hpp - Fault-tolerant decorator around any base policy.
//
// The base heuristics (Greedy, SRPT, SSF-EDF, ...) are fault-blind: with
// unannounced faults (sim/faults.hpp) they happily re-assign jobs to a
// crashed cloud — the engine then parks those jobs until the repair, which
// is exactly the naive degradation the fault ablation exposes. Failover
// wraps a base policy and adds the three standard production mitigations,
// all driven purely by the kFault / kRecovery events (it has no more
// information than any other policy):
//
//  * retry with exponential backoff: after a fault on cloud k, new
//    placements on k are deferred for a backoff window that doubles with
//    every further fault of k (flaky machines get probation);
//  * per-cloud blacklisting: after `blacklist_after` faults, cloud k is
//    written off for the rest of the run and its resident jobs are
//    evacuated;
//  * graceful degradation: a placement with no healthy cloud left falls
//    back to the job's origin edge processor, so with every cloud
//    blacklisted the wrapped policy degenerates to edge-only execution.
//
// The decorator only REWRITES directives that target an unhealthy cloud
// (and evacuates residents of dead/blacklisted ones); in a fault-free run
// it is an exact no-op, so at fault rate 0 every wrapped policy reproduces
// its base policy's schedule event-for-event.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/policy.hpp"

namespace ecs {

struct FailoverConfig {
  /// First retry delay after a cloud's first fault, in time units.
  double backoff_base = 20.0;
  /// Backoff growth per successive fault of the same cloud.
  double backoff_factor = 2.0;
  /// Cap on one backoff window.
  double backoff_max = 500.0;
  /// Faults after which a cloud is blacklisted for the rest of the run.
  int blacklist_after = 3;
};

class FailoverPolicy final : public Policy {
 public:
  explicit FailoverPolicy(std::unique_ptr<Policy> base,
                          FailoverConfig config = {});

  [[nodiscard]] std::string name() const override;
  void reset(const Instance& instance) override;
  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

  /// Health introspection (tests and diagnostics).
  [[nodiscard]] bool blacklisted(CloudId k) const;
  [[nodiscard]] int fault_count(CloudId k) const;

 private:
  /// True when new placements on cloud k must be avoided at time `now`.
  [[nodiscard]] bool avoid_new(CloudId k, Time now) const;
  /// True when jobs currently on cloud k should be moved off it.
  [[nodiscard]] bool evacuate(CloudId k) const;
  /// Best healthy target for the job: the fastest non-avoided cloud (ties
  /// broken by the fewest resident jobs, tracked in `cloud_load` and
  /// updated on every reroute so one batch of stranded jobs spreads out)
  /// or the origin edge, whichever finishes earlier (uncontended
  /// estimate); the edge when every cloud is unhealthy — `no_healthy_cloud`
  /// (when non-null) reports that case, for provenance annotation.
  [[nodiscard]] int reroute_target(const SimView& view, const JobState& state,
                                   Time now, std::vector<int>& cloud_load,
                                   bool* no_healthy_cloud = nullptr) const;
  /// Provenance cause for moving work off cloud k (crash > blacklist >
  /// backoff, mirroring the rewrite rules' precedence).
  [[nodiscard]] ReasonCode reroute_cause(CloudId k) const;

  std::unique_ptr<Policy> base_;
  FailoverConfig config_;
  std::vector<int> failures_;     ///< faults seen per cloud
  std::vector<double> retry_at_;  ///< backoff expiry per cloud
  std::vector<char> down_;        ///< crashed and not yet recovered
  // Workspace, reused across decide() calls (zero steady-state allocation).
  std::vector<char> faulted_;     ///< per-cloud: saw a kFault this batch
  std::vector<char> crashed_;     ///< per-cloud: saw a crash this batch
  std::vector<int> cloud_load_;   ///< live residents per cloud (reroutes)
  /// Round-stamped "has a base directive" marks: directed_stamp_[job] ==
  /// round_ means the base policy issued a directive for the job this
  /// round. Replaces an O(n) boolean reset per decide().
  std::vector<std::uint32_t> directed_stamp_;
  std::uint32_t round_ = 0;
};

}  // namespace ecs
