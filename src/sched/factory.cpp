#include "sched/factory.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/edge_only.hpp"
#include "sched/failover.hpp"
#include "sched/fcfs.hpp"
#include "sched/greedy.hpp"
#include "sched/srpt.hpp"
#include "sched/ssf_edf.hpp"

namespace ecs {
namespace {

std::string canonicalize(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return c == '_' ? '-' : static_cast<char>(std::tolower(c));
  });
  return name;
}

}  // namespace

std::unique_ptr<Policy> make_policy(const std::string& name) {
  const std::string canon = canonicalize(name);
  // "failover-<base>" (or "failover:<base>") wraps any base policy in the
  // fault-tolerant decorator (sched/failover.hpp).
  for (const char* prefix : {"failover-", "failover:"}) {
    if (canon.rfind(prefix, 0) == 0) {
      return std::make_unique<FailoverPolicy>(
          make_policy(canon.substr(std::string(prefix).size())));
    }
  }
  if (canon == "edge-only" || canon == "edgeonly") {
    return std::make_unique<EdgeOnlyPolicy>();
  }
  if (canon == "greedy") {
    return std::make_unique<GreedyPolicy>();
  }
  if (canon == "srpt") {
    return std::make_unique<SrptPolicy>();
  }
  if (canon == "srpt-noreexec") {
    SrptConfig config;
    config.allow_reexecution = false;
    return std::make_unique<SrptPolicy>(config);
  }
  if (canon == "ssf-edf" || canon == "ssfedf") {
    return std::make_unique<SsfEdfPolicy>();
  }
  if (canon == "fcfs") {
    return std::make_unique<FcfsPolicy>();
  }
  throw std::invalid_argument("unknown policy name: " + name);
}

std::vector<std::string> policy_names() {
  return {"edge-only", "greedy", "srpt", "ssf-edf", "fcfs"};
}

std::vector<std::string> paper_policy_names() {
  return {"edge-only", "greedy", "srpt", "ssf-edf"};
}

}  // namespace ecs
