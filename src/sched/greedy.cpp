#include "sched/greedy.hpp"

#include <limits>

namespace ecs {
namespace {

/// Relative improvement a relocation must offer over continuing on the
/// current allocation before Greedy discards progress (the re-execution
/// rule makes moves expensive: the uncontended estimates cannot see the
/// contention a marginal move creates, so near-tie moves systematically
/// thrash). Unassigned jobs have nothing to lose and are exempt.
constexpr double kSwitchMargin = 0.10;

}  // namespace

void GreedyPolicy::reset(const Instance& instance) {
  (void)instance;
  candidates_.clear();
  edge_free_.clear();
  cloud_free_.clear();
}

void GreedyPolicy::decide(const SimView& view,
                          const std::vector<Event>& events,
                          std::vector<Directive>& out) {
  (void)events;  // Greedy recomputes its choices from scratch at each event.
  const Platform& platform = view.platform();
  const Time now = view.now();

  const std::span<const JobId> live = view.live_jobs();
  std::vector<JobId>& candidates = candidates_;
  candidates.assign(live.begin(), live.end());
  std::vector<char>& edge_free = edge_free_;
  std::vector<char>& cloud_free = cloud_free_;
  edge_free.assign(static_cast<std::size_t>(platform.edge_count()), 1);
  cloud_free.assign(static_cast<std::size_t>(platform.cloud_count()), 1);

  std::vector<Directive>& directives = out;
  directives.reserve(directives.size() + candidates.size());
  double priority = 0.0;


  while (!candidates.empty()) {
    // For each unselected job: the minimum stretch achievable on a still
    // available resource, starting right now.
    double best_value = -1.0;  // max over jobs of min-stretch
    double best_tiebreak = std::numeric_limits<double>::infinity();
    std::size_t best_pos = candidates.size();
    int best_resource = kAllocUnassigned;
    ReasonCode best_reason = ReasonCode::kGreedyBestStretch;
    const int fresh = pick_fresh_cloud(view, cloud_free);

    for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
      const JobState& s = view.state(candidates[pos]);
      double min_stretch = std::numeric_limits<double>::infinity();
      int argmin = kAllocUnassigned;
      double keep_stretch = std::numeric_limits<double>::infinity();
      const auto stretch_on = [&](int target) {
        const Time done = uncontended_completion(
            view.instance(), s, target == kTargetKeep ? s.alloc : target,
            now);
        return stretch_of(platform, s.job, done);
      };
      const auto consider = [&](int target) {
        const double stretch = stretch_on(target);
        if (stretch < min_stretch - kDecisionMargin) {
          min_stretch = stretch;
          argmin = target;
        }
      };
      // Continuing on the current allocation (progress intact) is the
      // baseline; when that resource was claimed by an earlier pick,
      // waiting for it (kTargetKeep) remains an option.
      int keep_target = kAllocUnassigned;
      if (s.alloc != kAllocUnassigned) {
        const bool own_free =
            s.alloc == kAllocEdge ? edge_free[s.job.origin] != 0
                                  : cloud_free[s.alloc] != 0;
        keep_target = own_free ? s.alloc : kTargetKeep;
        keep_stretch = stretch_on(keep_target);
        min_stretch = keep_stretch;
        argmin = keep_target;
      }
      if (edge_free[s.job.origin] && s.alloc != kAllocEdge) {
        consider(kAllocEdge);
      }
      if (fresh >= 0 && fresh != s.alloc) consider(fresh);
      if (argmin == kAllocUnassigned) continue;  // nothing available for it
      // Moving away from the current allocation discards progress; demand
      // a real improvement, not a near-tie (see kSwitchMargin).
      ReasonCode reason = ReasonCode::kGreedyBestStretch;
      if (keep_target != kAllocUnassigned && argmin != keep_target &&
          min_stretch > keep_stretch * (1.0 - kSwitchMargin)) {
        argmin = keep_target;
        min_stretch = keep_stretch;
        reason = ReasonCode::kGreedySwitchMarginHold;
      }
      if (argmin == kTargetKeep) {
        reason = ReasonCode::kGreedyWaitForOwnResource;
      }
      // Select the job with the highest achievable min-stretch; on ties,
      // the job with the smallest best-case time — short jobs are the most
      // stretch-sensitive, so delaying them is costlier.
      const bool wins =
          min_stretch > best_value + kDecisionMargin ||
          (min_stretch > best_value - kDecisionMargin &&
           s.best_time < best_tiebreak);
      if (wins) {
        best_value = min_stretch;
        best_tiebreak = s.best_time;
        best_pos = pos;
        best_resource = argmin;
        best_reason = reason;
      }
    }

    if (best_pos == candidates.size()) break;  // no job can be placed
    const JobId chosen = candidates[best_pos];
    directives.push_back(
        Directive{chosen, best_resource, priority, best_reason});
    priority += 1.0;
    if (best_resource == kAllocEdge) {
      edge_free[view.state(chosen).job.origin] = 0;
    } else if (best_resource != kTargetKeep) {
      cloud_free[best_resource] = 0;
    }
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }
}

}  // namespace ecs
