// common.hpp - Shared helpers for the scheduling policies.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/projection.hpp"

namespace ecs {

/// Picks the target minimizing the projected completion of `state` against
/// `clock`, preferring the job's current allocation on ties (so that a
/// policy that is merely re-confirming its decisions never discards
/// progress through the re-execution rule).
[[nodiscard]] std::pair<int, Time> best_target_sticky(
    const Platform& platform, const ResourceClock& clock,
    const JobState& state);

/// True when the event batch contains a job release.
[[nodiscard]] bool contains_release(const std::vector<Event>& events);

/// A job with its ordering key (deadline for SSF-EDF, release for FCFS).
struct OrderedJob {
  JobId id = -1;
  double key = 0.0;
};

/// Sorts by (key, id) — the canonical tie-break every ordered pass uses,
/// so decide() and feasibility probes can never disagree on ordering.
void sort_ordered(std::vector<OrderedJob>& order);

/// Fastest cloud still marked free in `cloud_free`, preferring clouds
/// available right now; clouds inside an availability outage serve only as
/// a fallback when nothing else is free. Returns -1 when no cloud is free.
/// Shared by the Greedy and SRPT pick loops.
[[nodiscard]] int pick_fresh_cloud(const SimView& view,
                                   const std::vector<char>& cloud_free);

/// Exponential doubling followed by bisection for the smallest stretch
/// accepted by `feasible`, starting from the lower bound `lo`, to relative
/// precision `epsilon`, spending at most `max_iterations` probes overall.
/// Returns the smallest stretch that was actually verified feasible (if the
/// doubling phase exhausts the probe budget, the last — largest — probe is
/// returned even if unverified; callers treat the result as best-effort).
/// Shared by SSF-EDF and Edge-Only. A template (not std::function) so the
/// zero-allocation decide() paths never pay a closure heap allocation.
template <typename FeasibleFn>
[[nodiscard]] double min_feasible_stretch(double lo, double epsilon,
                                          int max_iterations,
                                          FeasibleFn&& feasible) {
  double hi = std::max(lo, 1.0);
  int iterations = 0;
  while (!feasible(hi) && iterations < max_iterations) {
    hi *= 2.0;
    ++iterations;
  }
  double best = hi;
  double cursor = lo;
  while ((best - cursor) > epsilon * best && iterations < max_iterations) {
    const double mid = 0.5 * (cursor + best);
    if (feasible(mid)) {
      best = mid;
    } else {
      cursor = mid;
    }
    ++iterations;
  }
  return best;
}

/// Warm-started variant of min_feasible_stretch, bit-compatible with the
/// cold search: it returns the exact value the cold search would (same
/// bracket, same midpoint sequence, same probe budget accounting) while
/// usually spending far fewer probes on the doubling phase.
///
/// The cold search scans the rung ladder hi = base * 2^k (base =
/// max(lo, 1.0)) upward from k = 0 for the first feasible rung, paying one
/// probe per rung. The warm search instead jumps to the rung suggested by
/// `warm_hint` (the previous search's result — target stretches drift
/// slowly between consecutive releases) and walks down while the rung below
/// stays feasible, or up until a rung is feasible. Because feasibility is
/// monotone along the ladder (the property the bisection itself relies on),
/// both scans identify the same rung k*; rung values are exact (multiplying
/// by 2.0 is exact in binary floating point), and the bisection is then
/// entered with iterations = k* — exactly the number of failed probes the
/// cold doubling phase would have consumed — so the midpoint sequence and
/// the budget cutoff match the cold search bit for bit. `warm_hint <= 0`
/// (no previous search) falls back to the cold ladder scan.
template <typename FeasibleFn>
[[nodiscard]] double min_feasible_stretch_warm(double lo, double epsilon,
                                               int max_iterations,
                                               double warm_hint,
                                               FeasibleFn&& feasible) {
  const double base = std::max(lo, 1.0);
  int k = 0;         // first-feasible rung index (== cold's failed probes)
  double hi = base;  // rung(k)
  if (warm_hint <= 0.0) {
    // Cold ladder scan (identical to min_feasible_stretch's first loop).
    while (!feasible(hi) && k < max_iterations) {
      hi *= 2.0;
      ++k;
    }
  } else {
    // Start at the rung covering the hint: smallest k with rung(k) >= hint.
    while (hi < warm_hint && k < max_iterations) {
      hi *= 2.0;
      ++k;
    }
    if (k < max_iterations && feasible(hi)) {
      // Walk down: k* is the lowest feasible rung.
      while (k > 0) {
        const double below = 0.5 * hi;  // exact: rung(k-1)
        if (!feasible(below)) break;
        hi = below;
        --k;
      }
    } else {
      // Walk up: k* is the first feasible rung above the hint (under
      // ladder monotonicity nothing below the hint rung is feasible).
      bool hi_feasible = false;
      while (!hi_feasible && k < max_iterations) {
        hi *= 2.0;
        ++k;
        if (k < max_iterations) hi_feasible = feasible(hi);
      }
    }
  }
  // Bisection, bit-identical to the cold search: same (cursor, best)
  // bracket and the same remaining probe budget (max_iterations - k).
  int iterations = k;
  double best = hi;
  double cursor = lo;
  while ((best - cursor) > epsilon * best && iterations < max_iterations) {
    const double mid = 0.5 * (cursor + best);
    if (feasible(mid)) {
      best = mid;
    } else {
      cursor = mid;
    }
    ++iterations;
  }
  return best;
}

/// List assignment shared by the EDF-style policies: walks jobs in the
/// given order through a contention-aware projection, placing each on the
/// processor where it completes earliest. Only jobs whose next activity
/// would start *immediately* receive an explicit (re)allocation directive;
/// queued jobs get kTargetKeep, so their progress is never discarded just
/// because the projection shuffled the queue behind the running jobs. All
/// directives carry the rank in `order` as priority.
///
/// Provenance: immediate placements are annotated with `local_reason`
/// (edge target) or `offload_reason` (cloud target) — the calling policy's
/// semantics for "why this side of the platform" — and queued jobs with
/// kQueuedBehindPriority.
///
/// Workspace form: `clock` must be bound to the view's instance (the
/// function resets it); directives are appended to `out`. Neither argument
/// allocates once warm — this is the zero-allocation hot path.
void list_assign_directives(
    const SimView& view, const std::vector<OrderedJob>& order,
    ResourceClock& clock, std::vector<Directive>& out,
    ReasonCode local_reason = ReasonCode::kProjectedBestCompletion,
    ReasonCode offload_reason = ReasonCode::kProjectedBestCompletion);

/// Allocating convenience overload (tests, one-off tools).
[[nodiscard]] std::vector<Directive> list_assign_directives(
    const SimView& view, const std::vector<OrderedJob>& order);

}  // namespace ecs
