// common.hpp - Shared helpers for the scheduling policies.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "core/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/projection.hpp"

namespace ecs {

/// Picks the target minimizing the projected completion of `state` against
/// `clock`, preferring the job's current allocation on ties (so that a
/// policy that is merely re-confirming its decisions never discards
/// progress through the re-execution rule).
[[nodiscard]] std::pair<int, Time> best_target_sticky(
    const Platform& platform, const ResourceClock& clock,
    const JobState& state);

/// True when the event batch contains a job release.
[[nodiscard]] bool contains_release(const std::vector<Event>& events);

/// A job with its ordering key (deadline for SSF-EDF, release for FCFS).
struct OrderedJob {
  JobId id = -1;
  double key = 0.0;
};

/// Sorts by (key, id) — the canonical tie-break every ordered pass uses,
/// so decide() and feasibility probes can never disagree on ordering.
void sort_ordered(std::vector<OrderedJob>& order);

/// Fastest cloud still marked free in `cloud_free`, preferring clouds
/// available right now; clouds inside an availability outage serve only as
/// a fallback when nothing else is free. Returns -1 when no cloud is free.
/// Shared by the Greedy and SRPT pick loops.
[[nodiscard]] int pick_fresh_cloud(const SimView& view,
                                   const std::vector<char>& cloud_free);

/// Exponential doubling followed by bisection for the smallest stretch
/// accepted by `feasible`, starting from the lower bound `lo`, to relative
/// precision `epsilon`, spending at most `max_iterations` probes overall.
/// Returns the smallest stretch that was actually verified feasible (if the
/// doubling phase exhausts the probe budget, the last — largest — probe is
/// returned even if unverified; callers treat the result as best-effort).
/// Shared by SSF-EDF and Edge-Only.
[[nodiscard]] double min_feasible_stretch(
    double lo, double epsilon, int max_iterations,
    const std::function<bool(double)>& feasible);

/// List assignment shared by the EDF-style policies: walks jobs in the
/// given order through a contention-aware projection, placing each on the
/// processor where it completes earliest. Only jobs whose next activity
/// would start *immediately* receive an explicit (re)allocation directive;
/// queued jobs get kTargetKeep, so their progress is never discarded just
/// because the projection shuffled the queue behind the running jobs. All
/// directives carry the rank in `order` as priority.
[[nodiscard]] std::vector<Directive> list_assign_directives(
    const SimView& view, const std::vector<OrderedJob>& order);

}  // namespace ecs
