#include "sched/fcfs.hpp"

#include <algorithm>

namespace ecs {

std::vector<Directive> FcfsPolicy::decide(const SimView& view,
                                          const std::vector<Event>& events) {
  (void)events;

  std::vector<OrderedJob> order;
  for (const JobState& s : view.states()) {
    if (!s.live()) continue;
    order.push_back(OrderedJob{s.job.id, s.job.release});
  }
  sort_ordered(order);
  return list_assign_directives(view, order);
}

}  // namespace ecs
