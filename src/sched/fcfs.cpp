#include "sched/fcfs.hpp"

#include <algorithm>

namespace ecs {

void FcfsPolicy::reset(const Instance& instance) {
  clock_.bind(instance, 0.0);
  order_.clear();
}

void FcfsPolicy::decide(const SimView& view, const std::vector<Event>& events,
                        std::vector<Directive>& out) {
  (void)events;

  order_.clear();
  for (const JobId id : view.live_jobs()) {
    order_.push_back(OrderedJob{id, view.state(id).job.release});
  }
  sort_ordered(order_);
  if (!clock_.bound()) clock_.bind(view.instance(), view.now());
  list_assign_directives(view, order_, clock_, out,
                         ReasonCode::kFcfsArrivalOrder,
                         ReasonCode::kFcfsArrivalOrder);
}

}  // namespace ecs
