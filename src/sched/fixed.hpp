// fixed.hpp - Fixed-assignment, fixed-priority policy.
//
// Replays a predetermined decision: every job has a fixed allocation
// (origin edge or a specific cloud processor) and a fixed priority. The
// engine's priority-ordered activation then yields the corresponding
// preemptive fixed-priority schedule. Used by:
//  * the exact brute-force solver (which enumerates allocations and
//    priority orders),
//  * tests replaying hand-constructed schedules such as the paper's
//    Figure 1 example.
#pragma once

#include <vector>

#include "sched/common.hpp"

namespace ecs {

class FixedPolicy final : public Policy {
 public:
  /// `alloc[i]` is kAllocEdge or a cloud index; `priority[i]` lower = more
  /// urgent. Both must cover every job of the instance.
  FixedPolicy(std::vector<int> alloc, std::vector<double> priority)
      : alloc_(std::move(alloc)), priority_(std::move(priority)) {}

  [[nodiscard]] std::string name() const override { return "Fixed"; }

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override {
    (void)events;
    const std::span<const JobId> live = view.live_jobs();
    out.reserve(out.size() + live.size());
    for (const JobId id : live) {
      out.push_back(Directive{id, alloc_.at(id), priority_.at(id),
                              ReasonCode::kFixedAssignment});
    }
  }

 private:
  std::vector<int> alloc_;
  std::vector<double> priority_;
};

}  // namespace ecs
