// greedy.hpp - The Greedy heuristic (paper section V-B).
//
// At each event, as long as there are available compute resources, Greedy
// computes for every live job the minimum stretch it could achieve if it
// started on an available resource immediately (uncontended estimate), then
// schedules the job that *maximizes* this value — the job that threatens
// the maximum stretch most — on the resource where it achieves its minimum.
// The chosen job and resource are removed from consideration and the loop
// repeats. Unselected jobs keep their allocation and progress (they simply
// wait), so no progress is discarded by merely not being picked.
#pragma once

#include <vector>

#include "sched/common.hpp"

namespace ecs {

class GreedyPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Greedy"; }

  void reset(const Instance& instance) override;

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

 private:
  // Workspace, reused across decide() calls (zero steady-state allocation).
  std::vector<JobId> candidates_;
  std::vector<char> edge_free_;
  std::vector<char> cloud_free_;
};

}  // namespace ecs
