// fcfs.hpp - First-Come-First-Served baseline (not in the paper).
//
// Jobs are prioritized by release date and placed, in that order, on the
// processor where the contention-aware projection completes them earliest.
// FCFS ignores job lengths entirely, so it is a useful control in tests and
// ablations: any stretch-aware heuristic should beat it on max-stretch for
// mixed job sizes.
#pragma once

#include "sched/common.hpp"

namespace ecs {

class FcfsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS"; }

  void reset(const Instance& instance) override;

  void decide(const SimView& view, const std::vector<Event>& events,
              std::vector<Directive>& out) override;

 private:
  // Workspace, reused across decide() calls (zero steady-state allocation).
  std::vector<OrderedJob> order_;
  ResourceClock clock_;
};

}  // namespace ecs
