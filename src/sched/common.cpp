#include "sched/common.hpp"

namespace ecs {

std::pair<int, Time> best_target_sticky(const Platform& platform,
                                        const ResourceClock& clock,
                                        const JobState& state) {
  // Candidate order matters: the current allocation is evaluated first and
  // other targets must be *strictly* better (beyond tolerance) to win.
  int best_target = kAllocEdge;
  Time best = kTimeInfinity;
  const auto consider = [&](int target) {
    const Time done = clock.project(platform, state, target);
    if (done < best - kDecisionMargin) {
      best = done;
      best_target = target;
    }
  };
  if (state.alloc != kAllocUnassigned) {
    best_target = state.alloc;
    best = clock.project(platform, state, state.alloc);
    if (state.alloc != kAllocEdge) consider(kAllocEdge);
  } else {
    consider(kAllocEdge);
  }
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    if (k == state.alloc) continue;
    consider(k);
  }
  return {best_target, best};
}

void list_assign_directives(const SimView& view,
                            const std::vector<OrderedJob>& order,
                            ResourceClock& clock,
                            std::vector<Directive>& out,
                            ReasonCode local_reason,
                            ReasonCode offload_reason) {
  const Platform& platform = view.platform();
  const Time now = view.now();
  // Outage-aware: projections mirror the engine's availability windows
  // (the caller bound `clock` to the instance; reset is O(1)).
  clock.reset(now);
  out.reserve(out.size() + order.size());
  double priority = 0.0;
  for (const OrderedJob& entry : order) {
    const JobState& s = view.state(entry.id);
    const auto [target, done] = best_target_sticky(platform, clock, s);
    (void)done;
    const bool immediate = clock.starts_now(platform, s, target, now);
    clock.commit(platform, s, target);
    const ReasonCode reason =
        !immediate ? ReasonCode::kQueuedBehindPriority
                   : (is_cloud_alloc(target) ? offload_reason : local_reason);
    out.push_back(Directive{entry.id, immediate ? target : kTargetKeep,
                            priority, reason});
    priority += 1.0;
  }
}

std::vector<Directive> list_assign_directives(
    const SimView& view, const std::vector<OrderedJob>& order) {
  ResourceClock clock(view.instance(), view.now());
  std::vector<Directive> directives;
  list_assign_directives(view, order, clock, directives);
  return directives;
}

void sort_ordered(std::vector<OrderedJob>& order) {
  std::sort(order.begin(), order.end(),
            [](const OrderedJob& a, const OrderedJob& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
}

int pick_fresh_cloud(const SimView& view,
                     const std::vector<char>& cloud_free) {
  const Platform& platform = view.platform();
  const Time now = view.now();
  int best = -1;
  double speed = 0.0;
  int fallback = -1;
  double fallback_speed = 0.0;
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    if (!cloud_free[k]) continue;
    if (view.instance().cloud_available(k, now)) {
      if (platform.cloud_speed(k) > speed) {
        speed = platform.cloud_speed(k);
        best = k;
      }
    } else if (platform.cloud_speed(k) > fallback_speed) {
      fallback_speed = platform.cloud_speed(k);
      fallback = k;
    }
  }
  return best >= 0 ? best : fallback;
}

bool contains_release(const std::vector<Event>& events) {
  for (const Event& e : events) {
    if (e.kind == EventKind::kRelease) return true;
  }
  return false;
}

}  // namespace ecs
