// gantt.hpp - Schedule rendering and machine-readable export.
//
// `render_gantt` draws an ASCII Gantt chart of a schedule: one lane per
// processor (and optionally per communication port), the time axis scaled
// to a fixed width. It is the quickest way to eyeball a schedule — the
// examples use it and it makes validator findings easy to localize.
//
// `write_schedule_json` exports the full schedule (allocations, every
// interval, per-job metrics) as JSON for external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "core/schedule.hpp"

namespace ecs {

struct GanttOptions {
  int width = 100;          ///< characters for the time axis
  bool show_comm = true;    ///< also draw send/receive port lanes
  bool show_abandoned = true;  ///< include abandoned runs (lowercase)
};

/// Multi-line ASCII chart. Jobs are labelled 0-9A-Z (mod 36); abandoned
/// activity uses lowercase letters where possible; '.' is idle time and
/// '#' marks cloud outage periods.
[[nodiscard]] std::string render_gantt(const Instance& instance,
                                       const Schedule& schedule,
                                       const GanttOptions& options = {});

/// JSON export: platform, per-job allocation, intervals, completion and
/// stretch. Stable field order, no external dependencies.
void write_schedule_json(std::ostream& out, const Instance& instance,
                         const Schedule& schedule,
                         const ScheduleMetrics& metrics);

}  // namespace ecs
