// runner.hpp - Runs one policy on one instance and collects everything the
// reports need.
#pragma once

#include <string>

#include "core/metrics.hpp"
#include "sim/engine.hpp"

namespace ecs {

struct RunOptions {
  /// Record the interval history and run the section III-B validator on it
  /// (fault-aware when engine.faults is nonempty). Recording costs memory
  /// and the validator costs time, so sweeps enable this only on their
  /// first replication — which is enough to catch a systematically invalid
  /// policy.
  bool validate = false;
  EngineConfig engine;  ///< includes the unannounced fault plan, if any
};

struct RunOutcome {
  std::string policy;
  ScheduleMetrics metrics;
  SimStats stats;
  double wall_seconds = 0.0;  ///< end-to-end simulate() wall time
  bool validated = false;     ///< schedule passed the validator
};

/// Simulates `policy` over `instance`. Throws on invalid schedules (when
/// options.validate is set) and on engine errors (stall / event cap).
[[nodiscard]] RunOutcome run_policy(const Instance& instance, Policy& policy,
                                    const RunOptions& options = {});

/// Convenience: constructs the policy by name via the factory.
[[nodiscard]] RunOutcome run_policy(const Instance& instance,
                                    const std::string& policy_name,
                                    const RunOptions& options = {});

}  // namespace ecs
