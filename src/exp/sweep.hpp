// sweep.hpp - Parameter sweeps with replication, the backbone of every
// figure reproduction.
//
// A sweep point is one x-axis value of a paper figure (a CCR, a load, a job
// count). For each point we draw `replications` independent instances
// (seeded deterministically from base_seed, point label and replication
// index), run every requested policy on each instance, and aggregate the
// per-instance metrics. Paper points average 1000 instances; the bench
// defaults are smaller so the suite finishes on modest hardware, and every
// binary accepts --reps to raise them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "exp/runner.hpp"
#include "obs/sketch.hpp"
#include "util/stats.hpp"

namespace ecs {

/// Builds the instance for one replication from a derived seed.
using InstanceFactory = std::function<Instance(std::uint64_t seed)>;

/// Builds the unannounced fault plan for one replication; receives the
/// replication's instance (for platform size / horizon) and its seed.
using FaultPlanFactory =
    std::function<FaultPlan(const Instance& instance, std::uint64_t seed)>;

struct PolicyAggregate {
  std::string policy;
  Accumulator max_stretch;
  Accumulator mean_stretch;
  Accumulator wall_seconds;
  Accumulator reassignments;
  Accumulator events;
  /// Distribution summaries across ALL jobs of ALL replications, without
  /// retaining per-job samples: every quantile estimate carries the
  /// sketch's relative-error bound (obs/sketch.hpp, default 1%). Each
  /// parallel_for worker fills a private per-replication sketch; the
  /// merge — exact, order-independent — happens serially afterwards.
  obs::QuantileSketch stretch_sketch;    ///< per-job stretch S_i
  obs::QuantileSketch flow_sketch;       ///< per-job flow time C_i - r_i
  obs::QuantileSketch queue_depth_sketch;///< per-replication max queue depth
};

struct SweepPointResult {
  std::string label;
  std::vector<PolicyAggregate> per_policy;

  [[nodiscard]] const PolicyAggregate& policy(const std::string& name) const;
};

/// How run_sweep_point executes its replications x policies grid.
enum class SweepDriver : std::uint8_t {
  /// Many-worlds batch driver (sim/batch.hpp): each (replication, policy)
  /// run is a world on a resident engine core; worker threads recycle
  /// completed worlds, so the steady state allocates nothing and skips the
  /// per-run policy construction and policy-timer clock reads of the task
  /// path. Results are bit-identical to kTasks except wall_seconds (it is
  /// wall time) and the engine's internal policy_seconds (not aggregated).
  kBatch,
  /// Legacy path: one parallel_for task per replication, each constructing
  /// its policies and engine from scratch via run_policy(). Kept as the
  /// baseline the batch driver is benchmarked and equivalence-tested
  /// against (bench/bench_batch.cpp, tests/test_exp.cpp).
  kTasks,
};

struct SweepOptions {
  int replications = 30;
  std::uint64_t base_seed = 42;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  SweepDriver driver = SweepDriver::kBatch;
  /// Index of this point within its sweep, mixed into the replication
  /// seeds so two points whose labels collide (e.g. different values
  /// formatted to the same string) still draw distinct instances. -1 (the
  /// default) omits the index and reproduces the historical
  /// replication_seed(base, label, rep) derivation exactly.
  int point_index = -1;
  /// Validate the recorded schedule on the first replication of each
  /// (point, policy) pair; throws if any constraint of section III-B fails
  /// (fault-aware when a fault plan is in play).
  bool validate_first = true;
  /// Forwarded to every run. engine.metrics (thread-safe) is shared by all
  /// replications x policies; engine.trace, being a single-run object, is
  /// forwarded only to replication 0 of the first policy and nulled
  /// elsewhere.
  EngineConfig engine;
  /// Optional per-replication unannounced fault plan (sim/faults.hpp);
  /// overrides engine.faults for every run when set.
  FaultPlanFactory fault_factory;
};

/// Runs one sweep point: `factory(seed)` provides the instances, every
/// policy in `policies` runs on every replication.
[[nodiscard]] SweepPointResult run_sweep_point(
    const std::string& label, const InstanceFactory& factory,
    const std::vector<std::string>& policies, const SweepOptions& options);

/// Derives the replication seed for (base, point label, replication).
/// Equivalent to sweep_seed(base, -1, label, replication).
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t base,
                                             const std::string& label,
                                             int replication);

/// SplitMix64 chain over (base, point index, label, replication): the seed
/// every sweep replication draws its instance and fault plan from.
/// point_index < 0 omits the index link, reproducing replication_seed();
/// otherwise equal labels at different indices yield distinct seed streams
/// (tests/test_exp.cpp pins both properties).
[[nodiscard]] std::uint64_t sweep_seed(std::uint64_t base, int point_index,
                                       const std::string& label,
                                       int replication);

}  // namespace ecs
