#include "exp/report.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/stats.hpp"

namespace ecs {

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

/// RFC 4180 field quoting: a cell containing a comma, quote or line break
/// is wrapped in double quotes, with embedded quotes doubled.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ",";
      out << csv_escape(row[c]);
    }
    out << "\n";
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

namespace {

const Accumulator& metric_of(const PolicyAggregate& agg, ReportMetric metric) {
  switch (metric) {
    case ReportMetric::kMaxStretch:
      return agg.max_stretch;
    case ReportMetric::kMeanStretch:
      return agg.mean_stretch;
    case ReportMetric::kWallSeconds:
      return agg.wall_seconds;
  }
  return agg.max_stretch;
}

}  // namespace

Table make_report(const std::vector<SweepPointResult>& points,
                  const std::vector<std::string>& policies,
                  const ReportOptions& options) {
  std::vector<std::string> headers;
  headers.push_back(options.x_label);
  for (const std::string& p : policies) headers.push_back(p);
  Table table(std::move(headers));

  for (const SweepPointResult& point : points) {
    std::vector<std::string> row;
    row.push_back(point.label);
    for (const std::string& p : policies) {
      const Accumulator& acc = metric_of(point.policy(p), options.metric);
      std::string cell = format_double(acc.mean(), options.precision);
      if (options.show_stddev) {
        cell += " ±" + format_double(acc.stddev(), options.precision);
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table make_stretch_quantile_report(const std::vector<SweepPointResult>& points,
                                   const std::vector<std::string>& policies,
                                   const std::string& x_label, int precision) {
  Table table({x_label, "policy", "jobs", "p50", "p90", "p99", "p99.9",
               "max"});
  for (const SweepPointResult& point : points) {
    for (const std::string& p : policies) {
      const obs::QuantileSketch& sketch = point.policy(p).stretch_sketch;
      table.add_row({point.label, p, std::to_string(sketch.count()),
                     format_double(sketch.quantile(0.50), precision),
                     format_double(sketch.quantile(0.90), precision),
                     format_double(sketch.quantile(0.99), precision),
                     format_double(sketch.quantile(0.999), precision),
                     format_double(sketch.max(), precision)});
    }
  }
  return table;
}

void print_bench_header(std::ostream& out, const std::string& title,
                        const std::string& description, int replications,
                        std::uint64_t seed) {
  out << "=== " << title << " ===\n";
  out << description << "\n";
  out << "replications per point: " << replications << "   seed: " << seed
      << "\n\n";
}

}  // namespace ecs
