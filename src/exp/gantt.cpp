#include "exp/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace ecs {
namespace {

char job_glyph(JobId id, bool abandoned) {
  static const char* kUpper = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  static const char* kLower = "0123456789abcdefghijklmnopqrstuvwxyz";
  const int slot = id % 36;
  return abandoned ? kLower[slot] : kUpper[slot];
}

/// One horizontal lane of the chart.
struct Lane {
  std::string label;
  std::string cells;
};

class Canvas {
 public:
  Canvas(Time horizon, int width) : horizon_(horizon), width_(width) {}

  [[nodiscard]] int column(Time t) const {
    if (horizon_ <= 0.0) return 0;
    const int col = static_cast<int>(std::floor(t / horizon_ * width_));
    return std::clamp(col, 0, width_ - 1);
  }

  void paint(Lane& lane, const Interval& iv, char glyph) const {
    if (lane.cells.empty()) lane.cells.assign(width_, '.');
    const int from = column(iv.begin);
    // Round the right edge up so that even very short intervals occupy
    // one visible cell.
    int to = column(iv.end);
    if (to < from) to = from;
    for (int c = from; c <= to && c < width_; ++c) {
      lane.cells[c] = glyph;
    }
  }

  void paint_set(Lane& lane, const IntervalSet& set, char glyph) const {
    for (const Interval& iv : set.intervals()) paint(lane, iv, glyph);
  }

 private:
  Time horizon_;
  int width_;
};

}  // namespace

std::string render_gantt(const Instance& instance, const Schedule& schedule,
                         const GanttOptions& options) {
  const Platform& platform = instance.platform;
  Time horizon = 0.0;
  const auto extend = [&](const RunRecord& run) {
    for (const IntervalSet* set : {&run.uplink, &run.exec, &run.downlink}) {
      if (const auto m = set->max()) horizon = std::max(horizon, *m);
    }
  };
  for (const JobSchedule& js : schedule.jobs()) {
    extend(js.final_run);
    for (const RunRecord& run : js.abandoned) extend(run);
  }
  if (horizon <= 0.0) horizon = 1.0;

  const Canvas canvas(horizon, options.width);
  const int pe = platform.edge_count();
  const int pc = platform.cloud_count();

  std::vector<Lane> edge_cpu(pe), edge_send(pe), edge_recv(pe);
  std::vector<Lane> cloud_cpu(pc);
  for (int j = 0; j < pe; ++j) {
    edge_cpu[j].label = "edge " + std::to_string(j) + " cpu ";
    edge_send[j].label = "edge " + std::to_string(j) + " send";
    edge_recv[j].label = "edge " + std::to_string(j) + " recv";
    edge_cpu[j].cells.assign(options.width, '.');
    edge_send[j].cells.assign(options.width, '.');
    edge_recv[j].cells.assign(options.width, '.');
  }
  for (int k = 0; k < pc; ++k) {
    cloud_cpu[k].label = "cloud " + std::to_string(k) + " cpu";
    cloud_cpu[k].cells.assign(options.width, '.');
    if (!instance.cloud_outages.empty()) {
      canvas.paint_set(cloud_cpu[k], instance.cloud_outages[k], '#');
    }
  }

  for (int i = 0; i < schedule.job_count(); ++i) {
    const Job& job = instance.jobs[i];
    const auto paint_run = [&](const RunRecord& run, bool abandoned) {
      const char glyph = job_glyph(job.id, abandoned);
      if (run.alloc == kAllocEdge) {
        canvas.paint_set(edge_cpu[job.origin], run.exec, glyph);
      } else if (is_cloud_alloc(run.alloc) && run.alloc < pc) {
        canvas.paint_set(cloud_cpu[run.alloc], run.exec, glyph);
        canvas.paint_set(edge_send[job.origin], run.uplink, glyph);
        canvas.paint_set(edge_recv[job.origin], run.downlink, glyph);
      }
    };
    paint_run(schedule.job(i).final_run, false);
    if (options.show_abandoned) {
      for (const RunRecord& run : schedule.job(i).abandoned) {
        paint_run(run, true);
      }
    }
  }

  std::ostringstream os;
  {
    std::ostringstream h;
    h << std::setprecision(6) << horizon;
    const std::string right = h.str();
    const int pad = std::max(
        1, options.width + 8 - static_cast<int>(right.size()));
    os << "time 0" << std::string(pad, ' ') << right << "\n";
  }
  const auto emit = [&](const Lane& lane) {
    os << std::setw(12) << std::left << lane.label << " |" << lane.cells
       << "|\n";
  };
  for (int j = 0; j < pe; ++j) {
    emit(edge_cpu[j]);
    if (options.show_comm) {
      emit(edge_send[j]);
      emit(edge_recv[j]);
    }
  }
  for (int k = 0; k < pc; ++k) emit(cloud_cpu[k]);
  return os.str();
}

void write_schedule_json(std::ostream& out, const Instance& instance,
                         const Schedule& schedule,
                         const ScheduleMetrics& metrics) {
  out << std::setprecision(17);
  const auto intervals_json = [&](const IntervalSet& set) {
    std::ostringstream os;
    os << std::setprecision(17) << "[";
    bool first = true;
    for (const Interval& iv : set.intervals()) {
      if (!first) os << ",";
      os << "[" << iv.begin << "," << iv.end << "]";
      first = false;
    }
    os << "]";
    return os.str();
  };
  const auto run_json = [&](const RunRecord& run) {
    std::ostringstream os;
    os << "{\"alloc\":";
    if (run.alloc == kAllocEdge) {
      os << "\"edge\"";
    } else if (run.alloc == kAllocUnassigned) {
      os << "null";
    } else {
      os << run.alloc;
    }
    os << ",\"uplink\":" << intervals_json(run.uplink)
       << ",\"exec\":" << intervals_json(run.exec)
       << ",\"downlink\":" << intervals_json(run.downlink) << "}";
    return os.str();
  };

  out << "{\n  \"platform\": {\"edge_speeds\": [";
  for (std::size_t j = 0; j < instance.platform.edge_speeds().size(); ++j) {
    if (j != 0) out << ",";
    out << instance.platform.edge_speeds()[j];
  }
  out << "], \"cloud_speeds\": [";
  for (int k = 0; k < instance.platform.cloud_count(); ++k) {
    if (k != 0) out << ",";
    out << instance.platform.cloud_speed(k);
  }
  out << "]},\n  \"max_stretch\": " << metrics.max_stretch
      << ",\n  \"mean_stretch\": " << metrics.mean_stretch
      << ",\n  \"makespan\": " << metrics.makespan << ",\n  \"jobs\": [\n";
  for (int i = 0; i < schedule.job_count(); ++i) {
    const Job& job = instance.jobs[i];
    const JobSchedule& js = schedule.job(i);
    const JobMetrics& jm = metrics.per_job.at(i);
    out << "    {\"id\": " << job.id << ", \"origin\": " << job.origin
        << ", \"work\": " << job.work << ", \"release\": " << job.release
        << ", \"up\": " << job.up << ", \"down\": " << job.down
        << ", \"completion\": " << jm.completion
        << ", \"stretch\": " << jm.stretch
        << ", \"final_run\": " << run_json(js.final_run)
        << ", \"abandoned\": [";
    for (std::size_t a = 0; a < js.abandoned.size(); ++a) {
      if (a != 0) out << ",";
      out << run_json(js.abandoned[a]);
    }
    out << "]}" << (i + 1 < schedule.job_count() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace ecs
