// report.hpp - Paper-style tabular reporting for the bench harness.
//
// Each bench binary prints one table per figure: rows are sweep points
// (the figure's x-axis), columns are the heuristics, cells are the mean of
// the metric over replications (optionally with the standard deviation).
// Tables can also be written as CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace ecs {

/// Generic aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment to `out`.
  void print(std::ostream& out) const;

  /// Renders as CSV (headers first).
  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Which metric of the aggregates a report shows.
enum class ReportMetric { kMaxStretch, kMeanStretch, kWallSeconds };

struct ReportOptions {
  ReportMetric metric = ReportMetric::kMaxStretch;
  bool show_stddev = false;
  int precision = 3;
  /// x-axis column header (e.g. "CCR", "load", "n").
  std::string x_label = "point";
};

/// Builds the figure table from sweep results (one result per x value).
[[nodiscard]] Table make_report(const std::vector<SweepPointResult>& points,
                                const std::vector<std::string>& policies,
                                const ReportOptions& options = {});

/// Tail table from the merged per-job stretch sketches: one row per
/// (point, policy), columns p50 / p90 / p99 / p99.9 / max plus the job
/// count. Quantiles carry the sketches' relative-error bound (default 1%,
/// obs/sketch.hpp) — the sweep never retains per-job samples.
[[nodiscard]] Table make_stretch_quantile_report(
    const std::vector<SweepPointResult>& points,
    const std::vector<std::string>& policies,
    const std::string& x_label = "point", int precision = 3);

/// Prints a standard bench header (figure id, settings) to `out`.
void print_bench_header(std::ostream& out, const std::string& title,
                        const std::string& description, int replications,
                        std::uint64_t seed);

}  // namespace ecs
