#include "exp/sweep.hpp"

#include <mutex>
#include <stdexcept>

#include "exp/parallel.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"

namespace ecs {

const PolicyAggregate& SweepPointResult::policy(
    const std::string& name) const {
  for (const PolicyAggregate& agg : per_policy) {
    if (agg.policy == name) return agg;
  }
  throw std::out_of_range("no aggregate for policy " + name);
}

std::uint64_t replication_seed(std::uint64_t base, const std::string& label,
                               int replication) {
  return derive_seed(derive_seed(base, hash_tag(label)),
                     static_cast<std::uint64_t>(replication));
}

SweepPointResult run_sweep_point(const std::string& label,
                                 const InstanceFactory& factory,
                                 const std::vector<std::string>& policies,
                                 const SweepOptions& options) {
  SweepPointResult result;
  result.label = label;
  result.per_policy.resize(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    result.per_policy[p].policy = policies[p];
  }

  const int reps = options.replications;
  // One outcome slot per (replication, policy); filled concurrently, merged
  // serially so aggregation order is deterministic.
  struct Slot {
    double max_stretch = 0.0;
    double mean_stretch = 0.0;
    double wall_seconds = 0.0;
    double reassignments = 0.0;
    double events = 0.0;
    double max_queue_depth = 0.0;
    obs::QuantileSketch stretch;  ///< per-job stretches of this replication
    obs::QuantileSketch flow;     ///< per-job flow times of this replication
  };
  std::vector<Slot> slots(static_cast<std::size_t>(reps) * policies.size());

  parallel_for(
      static_cast<std::size_t>(reps),
      [&](std::size_t rep) {
        const std::uint64_t seed =
            replication_seed(options.base_seed, label, static_cast<int>(rep));
        const Instance instance = factory(seed);
        // Draw the replication's fault plan once, outside the policy loop,
        // so every policy faces the identical unannounced faults.
        FaultPlan faults = options.engine.faults;
        if (options.fault_factory) faults = options.fault_factory(instance, seed);
        for (std::size_t p = 0; p < policies.size(); ++p) {
          RunOptions run_options;
          run_options.engine = options.engine;
          run_options.engine.faults = faults;
          // Trace sinks are single-run, single-threaded objects, so only
          // the first replication of the first policy keeps the sink. The
          // metrics registry is thread-safe and stays shared by every run,
          // accumulating sweep-wide totals.
          if (rep != 0 || p != 0) run_options.engine.trace = nullptr;
          run_options.validate = options.validate_first && rep == 0;
          const RunOutcome outcome =
              run_policy(instance, policies[p], run_options);
          Slot& slot = slots[rep * policies.size() + p];
          slot.max_stretch = outcome.metrics.max_stretch;
          slot.mean_stretch = outcome.metrics.mean_stretch;
          slot.wall_seconds = outcome.wall_seconds;
          slot.reassignments =
              static_cast<double>(outcome.stats.reassignments);
          slot.events = static_cast<double>(outcome.stats.events);
          slot.max_queue_depth =
              static_cast<double>(outcome.stats.max_queue_depth);
          for (const JobMetrics& jm : outcome.metrics.per_job) {
            slot.stretch.observe(jm.stretch);
            slot.flow.observe(jm.response);
          }
        }
      },
      options.threads);

  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const Slot& slot = slots[rep * policies.size() + p];
      PolicyAggregate& agg = result.per_policy[p];
      agg.max_stretch.add(slot.max_stretch);
      agg.mean_stretch.add(slot.mean_stretch);
      agg.wall_seconds.add(slot.wall_seconds);
      agg.reassignments.add(slot.reassignments);
      agg.events.add(slot.events);
      agg.stretch_sketch.merge(slot.stretch);
      agg.flow_sketch.merge(slot.flow);
      agg.queue_depth_sketch.observe(slot.max_queue_depth);
    }
  }
  return result;
}

}  // namespace ecs
