#include "exp/sweep.hpp"

#include <stdexcept>

#include "core/validate.hpp"
#include "sched/factory.hpp"
#include "sim/batch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ecs {

const PolicyAggregate& SweepPointResult::policy(
    const std::string& name) const {
  for (const PolicyAggregate& agg : per_policy) {
    if (agg.policy == name) return agg;
  }
  throw std::out_of_range("no aggregate for policy " + name);
}

std::uint64_t sweep_seed(std::uint64_t base, int point_index,
                         const std::string& label, int replication) {
  std::uint64_t seed = base;
  if (point_index >= 0) {
    // +1 keeps the index link distinct from any meaningful tag at 0 and
    // makes the chain structurally different from the index-less one.
    seed = derive_seed(seed, static_cast<std::uint64_t>(point_index) + 1);
  }
  seed = derive_seed(seed, hash_tag(label));
  return derive_seed(seed, static_cast<std::uint64_t>(replication));
}

std::uint64_t replication_seed(std::uint64_t base, const std::string& label,
                               int replication) {
  return sweep_seed(base, -1, label, replication);
}

namespace {

/// One outcome slot per (replication, policy); filled concurrently by
/// whichever driver runs the grid, merged serially so aggregation order is
/// deterministic regardless of thread interleaving.
struct RepSlot {
  double max_stretch = 0.0;
  double mean_stretch = 0.0;
  double wall_seconds = 0.0;
  double reassignments = 0.0;
  double events = 0.0;
  double max_queue_depth = 0.0;
  obs::QuantileSketch stretch;  ///< per-job stretches of this replication
  obs::QuantileSketch flow;     ///< per-job flow times of this replication
};

void fill_slot(RepSlot& slot, const ScheduleMetrics& metrics,
               const SimStats& stats, double wall_seconds) {
  slot.max_stretch = metrics.max_stretch;
  slot.mean_stretch = metrics.mean_stretch;
  slot.wall_seconds = wall_seconds;
  slot.reassignments = static_cast<double>(stats.reassignments);
  slot.events = static_cast<double>(stats.events);
  slot.max_queue_depth = static_cast<double>(stats.max_queue_depth);
  for (const JobMetrics& jm : metrics.per_job) {
    slot.stretch.observe(jm.stretch);
    slot.flow.observe(jm.response);
  }
}

/// Legacy task-per-replication driver: each task builds its instance and
/// runs every policy through run_policy (fresh policy + engine per run).
void run_point_tasks(const std::string& label, const InstanceFactory& factory,
                     const std::vector<std::string>& policies,
                     const SweepOptions& options,
                     std::vector<RepSlot>& slots) {
  parallel_for(
      static_cast<std::size_t>(options.replications),
      [&](std::size_t rep) {
        const std::uint64_t seed =
            sweep_seed(options.base_seed, options.point_index, label,
                       static_cast<int>(rep));
        const Instance instance = factory(seed);
        // Draw the replication's fault plan once, outside the policy loop,
        // so every policy faces the identical unannounced faults.
        FaultPlan faults = options.engine.faults;
        if (options.fault_factory) {
          faults = options.fault_factory(instance, seed);
        }
        for (std::size_t p = 0; p < policies.size(); ++p) {
          RunOptions run_options;
          run_options.engine = options.engine;
          run_options.engine.faults = faults;
          // Trace sinks are single-run, single-threaded objects, so only
          // the first replication of the first policy keeps the sink. The
          // metrics registry is thread-safe and stays shared by every run,
          // accumulating sweep-wide totals.
          if (rep != 0 || p != 0) run_options.engine.trace = nullptr;
          run_options.validate = options.validate_first && rep == 0;
          const RunOutcome outcome =
              run_policy(instance, policies[p], run_options);
          fill_slot(slots[rep * policies.size() + p], outcome.metrics,
                    outcome.stats, outcome.wall_seconds);
        }
      },
      options.threads);
}

/// Batch driver: each (replication, policy) pair is a world on a resident
/// engine core (sim/batch.hpp); the instance, the fault plan and the
/// validation contract per world match run_point_tasks exactly, so the two
/// drivers produce bit-identical aggregates (wall_seconds aside — it is
/// wall time; tests/test_exp.cpp pins the equality).
void run_point_batch(const std::string& label, const InstanceFactory& factory,
                     const std::vector<std::string>& policies,
                     const SweepOptions& options,
                     std::vector<RepSlot>& slots) {
  const std::size_t n_policies = policies.size();
  BatchOptions batch_options;
  batch_options.threads = options.threads;
  BatchEngine batch(
      n_policies,
      [&policies](std::size_t p) { return make_policy(policies[p]); },
      batch_options);
  batch.run(
      static_cast<std::size_t>(options.replications) * n_policies,
      [&](std::size_t index, Instance& instance, WorldSetup& setup) {
        const std::size_t rep = index / n_policies;
        const std::size_t p = index % n_policies;
        const std::uint64_t seed =
            sweep_seed(options.base_seed, options.point_index, label,
                       static_cast<int>(rep));
        instance = factory(seed);
        setup.policy = p;
        setup.config = options.engine;
        if (options.fault_factory) {
          setup.config.faults = options.fault_factory(instance, seed);
        }
        if (index != 0) setup.config.trace = nullptr;
        setup.config.record_schedule = options.validate_first && rep == 0;
        // The batch driver times whole worlds itself; the per-decision
        // policy timer's clock reads are pure overhead at this scale.
        setup.config.time_policy = false;
      },
      [&](std::size_t index, const Instance& instance, SimResult& result,
          double wall_seconds) {
        const std::size_t rep = index / n_policies;
        ScheduleMetrics metrics;
        if (options.validate_first && rep == 0) {
          // Re-derive the world's fault plan for the fault-aware validator
          // (the factories are deterministic in (instance, seed)), exactly
          // what the task driver hands run_policy.
          FaultPlan faults = options.engine.faults;
          if (options.fault_factory) {
            const std::uint64_t seed =
                sweep_seed(options.base_seed, options.point_index, label,
                           static_cast<int>(rep));
            faults = options.fault_factory(instance, seed);
          }
          require_valid_schedule(instance, result.schedule, faults);
          metrics = compute_metrics(instance, result.schedule);
        } else {
          metrics = metrics_from_completions(instance, result.completions);
        }
        fill_slot(slots[index], metrics, result.stats, wall_seconds);
      });
}

}  // namespace

SweepPointResult run_sweep_point(const std::string& label,
                                 const InstanceFactory& factory,
                                 const std::vector<std::string>& policies,
                                 const SweepOptions& options) {
  SweepPointResult result;
  result.label = label;
  result.per_policy.resize(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    result.per_policy[p].policy = policies[p];
  }

  const int reps = options.replications;
  std::vector<RepSlot> slots(static_cast<std::size_t>(reps) *
                             policies.size());
  if (options.driver == SweepDriver::kTasks) {
    run_point_tasks(label, factory, policies, options, slots);
  } else {
    run_point_batch(label, factory, policies, options, slots);
  }

  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const RepSlot& slot = slots[rep * policies.size() + p];
      PolicyAggregate& agg = result.per_policy[p];
      agg.max_stretch.add(slot.max_stretch);
      agg.mean_stretch.add(slot.mean_stretch);
      agg.wall_seconds.add(slot.wall_seconds);
      agg.reassignments.add(slot.reassignments);
      agg.events.add(slot.events);
      agg.stretch_sketch.merge(slot.stretch);
      agg.flow_sketch.merge(slot.flow);
      agg.queue_depth_sketch.observe(slot.max_queue_depth);
    }
  }
  return result;
}

}  // namespace ecs
