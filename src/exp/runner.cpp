#include "exp/runner.hpp"

#include <chrono>

#include "core/validate.hpp"
#include "sched/factory.hpp"

namespace ecs {

RunOutcome run_policy(const Instance& instance, Policy& policy,
                      const RunOptions& options) {
  RunOutcome outcome;
  outcome.policy = policy.name();

  EngineConfig config = options.engine;
  config.record_schedule = options.validate;

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult sim = simulate(instance, policy, config);
  const auto t1 = std::chrono::steady_clock::now();
  outcome.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.stats = sim.stats;

  if (options.validate) {
    require_valid_schedule(instance, sim.schedule, config.faults);
    outcome.validated = true;
    outcome.metrics = compute_metrics(instance, sim.schedule);
  } else {
    outcome.metrics = metrics_from_completions(instance, sim.completions);
  }
  return outcome;
}

RunOutcome run_policy(const Instance& instance, const std::string& policy_name,
                      const RunOptions& options) {
  const auto policy = make_policy(policy_name);
  return run_policy(instance, *policy, options);
}

}  // namespace ecs
