#include "exp/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ecs {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        // First failure wins and aborts the sweep: without the flag a
        // thrown replication let the remaining thousands run to completion
        // before the caller ever saw the error.
        abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ecs
