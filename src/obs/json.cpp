#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace ecs::obs::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::out_of_range("json: no member \"" + key + "\"");
  return *v;
}

double Value::as_number() const {
  if (type != Type::kNumber) throw std::runtime_error("json: not a number");
  return number;
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Value::as_string() const {
  if (type != Type::kString) throw std::runtime_error("json: not a string");
  return string;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          Value v;
          v.type = Value::Type::kBool;
          v.boolean = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          Value v;
          v.type = Value::Type::kBool;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writers; map them through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (result.ec != std::errc{}) fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double value, NonFinitePolicy policy) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) {
    if (policy == NonFinitePolicy::kClamp) {
      return value > 0 ? "1e308" : "-1e308";
    }
    return value > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double to_double(const Value& value) {
  switch (value.type) {
    case Value::Type::kNumber:
      return value.number;
    case Value::Type::kNull:
      return std::numeric_limits<double>::quiet_NaN();
    case Value::Type::kString:
      if (value.string == "Infinity") {
        return std::numeric_limits<double>::infinity();
      }
      if (value.string == "-Infinity") {
        return -std::numeric_limits<double>::infinity();
      }
      throw std::runtime_error("json: string is not a number: " +
                               value.string);
    default:
      throw std::runtime_error("json: not a number");
  }
}

}  // namespace ecs::obs::json
