// sketch.hpp - Mergeable quantile sketch with bounded relative error.
//
// The sweeps need tail quantiles of stretch / flow time / queue depth over
// hundreds of replications without retaining per-job samples, and the
// parallel_for workers each see only a slice of the replications — so the
// summary must be MERGEABLE: merging per-worker sketches must give exactly
// the sketch a single worker observing everything would hold.
//
// This is a DDSketch-style log-bucketed sketch. A value v > 0 lands in
// bucket i = ceil(log_gamma(v)) with gamma = (1 + alpha) / (1 - alpha);
// bucket i covers (gamma^(i-1), gamma^i] and reports the midpoint
// 2 * gamma^i / (gamma + 1), which is within a factor (1 ± alpha) of every
// value in the bucket. Hence EVERY quantile estimate carries a relative
// error of at most alpha — the guarantee the sweep reports cite. Merging
// adds bucket counts position-wise and is exact: merge order, like
// observation order, cannot change any estimate.
//
// Memory is one std::uint64_t per non-empty bucket span: values across
// 18 decades fit in a few thousand buckets at alpha = 0.01.
#pragma once

#include <cstdint>
#include <vector>

namespace ecs::obs {

class QuantileSketch {
 public:
  /// `alpha`: relative accuracy, in (0, 1). Defaults to 1% — p99 of a
  /// 10k-job stretch distribution lands within 1% of the exact value.
  explicit QuantileSketch(double alpha = kDefaultAlpha);

  static constexpr double kDefaultAlpha = 0.01;
  /// Values in [0, kMinTrackable] collapse into the exact zero bucket
  /// (relative error is meaningless at 0; queue depth is often 0).
  static constexpr double kMinTrackable = 1e-12;

  /// Records one observation. Negative values are clamped to 0 (the
  /// tracked quantities — stretch, flow time, queue depth — are
  /// non-negative by construction; a tiny negative from float noise should
  /// not throw mid-sweep). Non-finite values are counted in sum/min/max
  /// bookkeeping but not bucketed.
  void observe(double value);

  /// Adds another sketch's observations, exactly. Throws
  /// std::invalid_argument when the alphas differ (their buckets are
  /// incompatible).
  void merge(const QuantileSketch& other);

  /// Estimate of the q-quantile (q in [0, 1]), within relative error
  /// alpha(). Returns 0 when empty. q = 0 / q = 1 return the exact
  /// observed min / max.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Number of allocated bucket slots (diagnostics / memory accounting).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }

  void clear();

 private:
  [[nodiscard]] int bucket_index(double value) const;
  [[nodiscard]] double bucket_value(int index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;  ///< 1 / ln(gamma), cached for bucket_index
  std::uint64_t zero_count_ = 0;
  /// counts_[i] holds bucket (offset_ + i); dense between the extreme
  /// non-empty buckets.
  std::vector<std::uint64_t> counts_;
  int offset_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ecs::obs
