#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace ecs::obs {
namespace {

template <typename Store, typename... Args>
MetricsRegistry::Id get_or_create(std::map<std::string, MetricsRegistry::Id>& ids,
                                  Store& store, const std::string& name,
                                  Args&&... args) {
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  const MetricsRegistry::Id id = static_cast<MetricsRegistry::Id>(store.size());
  store.emplace_back(std::forward<Args>(args)...);
  ids.emplace(name, id);
  return id;
}

/// Lock-free max update for an atomic double.
void atomic_max(std::atomic<double>& slot, double value) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

/// CAS add for an atomic double (fetch_add on floating atomics is C++20;
/// the CAS loop keeps us independent of library support).
void atomic_add(std::atomic<double>& slot, double delta) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(counter_ids_, counters_, name);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(gauge_ids_, gauges_, name);
}

MetricsRegistry::Id MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(timer_ids_, timers_, name);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("histogram " + name + ": no buckets");
  }
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument("histogram " + name +
                                ": bounds must be strictly increasing");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(hist_ids_, histograms_, name, std::move(bounds));
}

MetricsRegistry::Id MetricsRegistry::sketch(const std::string& name,
                                            double alpha) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(sketch_ids_, sketches_, name, alpha);
}

void MetricsRegistry::add(Id id, std::uint64_t delta) noexcept {
  counters_[static_cast<std::size_t>(id)].value.fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(Id id, double value) noexcept {
  Gauge& g = gauges_[static_cast<std::size_t>(id)];
  g.last.store(value, std::memory_order_relaxed);
  atomic_max(g.max, value);
}

void MetricsRegistry::observe(Id id, double value) noexcept {
  Histogram& h = histograms_[static_cast<std::size_t>(id)];
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - h.bounds.begin());  // == size => overflow
  h.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(h.sum, value);
}

void MetricsRegistry::add_nanos(Id id, std::uint64_t nanos) noexcept {
  Timer& t = timers_[static_cast<std::size_t>(id)];
  t.nanos.fetch_add(nanos, std::memory_order_relaxed);
  t.count.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::sketch_observe(Id id, double value) {
  Sketch& s = sketches_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lock(s.mutex);
  s.sketch.observe(value);
}

void MetricsRegistry::sketch_merge(Id id, const QuantileSketch& other) {
  Sketch& s = sketches_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lock(s.mutex);
  s.sketch.merge(other);
}

namespace {

template <typename Map>
typename Map::mapped_type require_id(const Map& ids, const std::string& name,
                                     const char* family) {
  const auto it = ids.find(name);
  if (it == ids.end()) {
    throw std::out_of_range(std::string("no ") + family + " named " + name);
  }
  return it->second;
}

}  // namespace

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Id id = require_id(counter_ids_, name, "counter");
  return counters_[static_cast<std::size_t>(id)].value.load(
      std::memory_order_relaxed);
}

GaugeSnapshot MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Id id = require_id(gauge_ids_, name, "gauge");
  const Gauge& g = gauges_[static_cast<std::size_t>(id)];
  return {g.last.load(std::memory_order_relaxed),
          g.max.load(std::memory_order_relaxed)};
}

TimerSnapshot MetricsRegistry::timer_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Id id = require_id(timer_ids_, name, "timer");
  const Timer& t = timers_[static_cast<std::size_t>(id)];
  return {static_cast<double>(t.nanos.load(std::memory_order_relaxed)) * 1e-9,
          t.count.load(std::memory_order_relaxed)};
}

HistogramSnapshot MetricsRegistry::histogram_value(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Id id = require_id(hist_ids_, name, "histogram");
  const Histogram& h = histograms_[static_cast<std::size_t>(id)];
  HistogramSnapshot snap;
  snap.bounds = h.bounds;
  snap.counts.reserve(h.counts.size());
  for (const auto& c : h.counts) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = h.count.load(std::memory_order_relaxed);
  snap.sum = h.sum.load(std::memory_order_relaxed);
  return snap;
}

QuantileSketch MetricsRegistry::sketch_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Id id = require_id(sketch_ids_, name, "sketch");
  const Sketch& s = sketches_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> sketch_lock(s.mutex);
  return s.sketch;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = [](const std::string& name) {
    std::string quoted = "\"";
    quoted += json::escape(name);
    quoted += "\":";
    return quoted;
  };
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, id] : counter_ids_) {
    out << (first ? "" : ",") << "\n    " << key(name)
        << counters_[static_cast<std::size_t>(id)].value.load(
               std::memory_order_relaxed);
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, id] : gauge_ids_) {
    const Gauge& g = gauges_[static_cast<std::size_t>(id)];
    out << (first ? "" : ",") << "\n    " << key(name) << "{\"last\":"
        << json::number(g.last.load(std::memory_order_relaxed))
        << ",\"max\":" << json::number(g.max.load(std::memory_order_relaxed))
        << "}";
    first = false;
  }
  out << "\n  },\n  \"timers\": {";
  first = true;
  for (const auto& [name, id] : timer_ids_) {
    const Timer& t = timers_[static_cast<std::size_t>(id)];
    out << (first ? "" : ",") << "\n    " << key(name) << "{\"seconds\":"
        << json::number(
               static_cast<double>(t.nanos.load(std::memory_order_relaxed)) *
               1e-9)
        << ",\"count\":" << t.count.load(std::memory_order_relaxed) << "}";
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, id] : hist_ids_) {
    const Histogram& h = histograms_[static_cast<std::size_t>(id)];
    out << (first ? "" : ",") << "\n    " << key(name) << "{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i == 0 ? "" : ",") << json::number(h.bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out << (i == 0 ? "" : ",")
          << h.counts[i].load(std::memory_order_relaxed);
    }
    out << "],\"sum\":" << json::number(h.sum.load(std::memory_order_relaxed))
        << ",\"count\":" << h.count.load(std::memory_order_relaxed) << "}";
    first = false;
  }
  out << "\n  },\n  \"sketches\": {";
  first = true;
  for (const auto& [name, id] : sketch_ids_) {
    const Sketch& s = sketches_[static_cast<std::size_t>(id)];
    std::lock_guard<std::mutex> sketch_lock(s.mutex);
    const QuantileSketch& q = s.sketch;
    out << (first ? "" : ",") << "\n    " << key(name)
        << "{\"alpha\":" << json::number(q.alpha())
        << ",\"count\":" << q.count()
        << ",\"sum\":" << json::number(q.sum())
        << ",\"min\":" << json::number(q.min())
        << ",\"max\":" << json::number(q.max())
        << ",\"p50\":" << json::number(q.quantile(0.50))
        << ",\"p90\":" << json::number(q.quantile(0.90))
        << ",\"p99\":" << json::number(q.quantile(0.99))
        << ",\"p999\":" << json::number(q.quantile(0.999)) << "}";
    first = false;
  }
  out << "\n  }\n}\n";
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; anything else becomes _.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

/// Prometheus sample values: NaN and ±Inf are legal bare tokens.
std::string prom_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return json::number(value);
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, id] : counter_ids_) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " counter\n"
        << n << " "
        << counters_[static_cast<std::size_t>(id)].value.load(
               std::memory_order_relaxed)
        << "\n";
  }
  for (const auto& [name, id] : gauge_ids_) {
    const Gauge& g = gauges_[static_cast<std::size_t>(id)];
    const std::string n = prom_name(name);
    out << "# TYPE " << n << "_last gauge\n"
        << n << "_last " << prom_value(g.last.load(std::memory_order_relaxed))
        << "\n"
        << "# TYPE " << n << "_max gauge\n"
        << n << "_max " << prom_value(g.max.load(std::memory_order_relaxed))
        << "\n";
  }
  for (const auto& [name, id] : timer_ids_) {
    const Timer& t = timers_[static_cast<std::size_t>(id)];
    const std::string n = prom_name(name);
    out << "# TYPE " << n << "_seconds_total counter\n"
        << n << "_seconds_total "
        << prom_value(
               static_cast<double>(t.nanos.load(std::memory_order_relaxed)) *
               1e-9)
        << "\n"
        << "# TYPE " << n << "_count counter\n"
        << n << "_count " << t.count.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, id] : hist_ids_) {
    const Histogram& h = histograms_[static_cast<std::size_t>(id)];
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i].load(std::memory_order_relaxed);
      out << n << "_bucket{le=\"" << prom_value(h.bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += h.counts[h.bounds.size()].load(std::memory_order_relaxed);
    out << n << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
        << n << "_sum " << prom_value(h.sum.load(std::memory_order_relaxed))
        << "\n"
        << n << "_count " << h.count.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, id] : sketch_ids_) {
    const Sketch& s = sketches_[static_cast<std::size_t>(id)];
    std::lock_guard<std::mutex> sketch_lock(s.mutex);
    const QuantileSketch& q = s.sketch;
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " summary\n";
    constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
    for (const double qq : kQuantiles) {
      out << n << "{quantile=\"" << json::number(qq) << "\"} "
          << prom_value(q.quantile(qq)) << "\n";
    }
    out << n << "_sum " << prom_value(q.sum()) << "\n"
        << n << "_count " << q.count() << "\n"
        << "# TYPE " << n << "_min gauge\n"
        << n << "_min " << prom_value(q.min()) << "\n"
        << "# TYPE " << n << "_max gauge\n"
        << n << "_max " << prom_value(q.max()) << "\n";
  }
}

}  // namespace ecs::obs
