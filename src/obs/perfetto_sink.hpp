// perfetto_sink.hpp - Chrome trace_event JSON export.
//
// Produces a JSON file loadable by ui.perfetto.dev (or chrome://tracing):
//
//   * one track (thread) per processor: "edge j cpu", "cloud k cpu";
//   * one track per communication port: "edge j uplink port",
//     "edge j downlink port", "cloud k uplink port", "cloud k downlink
//     port" — a communication slice appears on both ports it occupies,
//     which makes one-port contention directly visible;
//   * flow arrows linking the uplink -> execution -> downlink chain of
//     every cloud run of a job (retransmitted communications join the same
//     chain);
//   * instant markers (releases, completions, preemptions, faults, ...) on
//     a dedicated "events" track and counter tracks for the sampled time
//     series (live max-stretch, ready-queue depth, pool utilization).
//
// Timestamps are simulated time scaled to microseconds (1 time unit = 1s).
// Events are buffered and written sorted by timestamp on end_trace, so
// per-track timestamps are monotone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ecs::obs {

/// Buffers the whole run and writes the trace_event JSON on end_trace.
/// The stream must outlive the sink. Not thread-safe; one run per sink.
class PerfettoTraceSink final : public TraceSink {
 public:
  explicit PerfettoTraceSink(std::ostream& out) : out_(&out) {}

  void begin_trace(const TraceMeta& meta) override;
  void record(const TraceRecord& rec) override;
  void end_trace(Time makespan) override;

 private:
  struct Pending {
    double ts = 0.0;        ///< microseconds, for the final sort
    std::string body;       ///< complete JSON object text
  };

  void push(double ts, std::string body);
  void emit_span(const TraceRecord& rec);
  void emit_instant(const TraceRecord& rec);
  void emit_counter(const TraceRecord& rec);
  void emit_flows();

  // Track ids (tids). Tid 0 is the instant-marker track; each edge then
  // owns three consecutive tids (cpu, uplink port, downlink port), each
  // cloud likewise.
  [[nodiscard]] int edge_cpu_tid(int edge) const { return 1 + 3 * edge; }
  [[nodiscard]] int edge_up_tid(int edge) const { return 2 + 3 * edge; }
  [[nodiscard]] int edge_down_tid(int edge) const { return 3 + 3 * edge; }
  [[nodiscard]] int cloud_cpu_tid(int cloud) const {
    return 1 + 3 * meta_.edge_count + 3 * cloud;
  }
  [[nodiscard]] int cloud_up_tid(int cloud) const {
    return 2 + 3 * meta_.edge_count + 3 * cloud;
  }
  [[nodiscard]] int cloud_down_tid(int cloud) const {
    return 3 + 3 * meta_.edge_count + 3 * cloud;
  }

  std::ostream* out_;
  TraceMeta meta_;
  std::vector<Pending> events_;
  std::vector<TraceRecord> cloud_spans_;  ///< for flow linking on end_trace
};

}  // namespace ecs::obs
