// provenance.hpp - Decision provenance: per-job causal chains.
//
// The engine, when EngineConfig::provenance is set, emits one
// TracePoint::kDirective instant for every directive it applies (and every
// deduplicated keep-decision), carrying the policy's ReasonCode. Together
// with the lifecycle instants the trace already has (release, preemption,
// fault abort, message loss, completion), those records tell the full
// causal story of a job: why it was placed where, what evicted it, and
// what its final stretch cost.
//
// ProvenanceLog distills that story from the trace stream. It is a
// TraceSink, so it can observe a live run directly (attach via
// EngineConfig::trace or a TeeTraceSink) or replay a parsed JSONL trace —
// tools/trace_inspect --explain=JOB does the latter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/reason.hpp"
#include "obs/trace.hpp"

namespace ecs::obs {

/// What one provenance step did to the job.
enum class ProvenanceKind : std::uint8_t {
  kRelease,      ///< job entered the system
  kAssign,       ///< first allocation (source was unassigned)
  kReassign,     ///< allocation changed; progress discarded
  kKeep,         ///< policy (re)confirmed the current allocation
  kPreempt,      ///< lost its resource while still needing it
  kFaultAbort,   ///< cloud crash wiped the run
  kUplinkLoss,   ///< upload corrupted; re-transmitted from zero
  kDownlinkLoss, ///< download corrupted; re-transmitted
  kComplete,     ///< job finished; value = realized stretch
  kReject,       ///< admission refused the arrival; value = resident count
  kShed,         ///< admission evicted it before it started; value = bound
};

[[nodiscard]] std::string to_string(ProvenanceKind kind);

/// One step of a job's lifecycle, reconstructed from a trace record.
struct ProvenanceRecord {
  ProvenanceKind kind = ProvenanceKind::kKeep;
  Time time = 0.0;
  JobId job = -1;
  int run = 0;                    ///< re-execution index at the event
  EdgeId origin = -1;             ///< job's origin edge
  int source = kAllocUnassigned;  ///< allocation before the step
  int target = kAllocUnassigned;  ///< allocation after the step
  ReasonCode reason = ReasonCode::kUnspecified;
  double value = 0.0;             ///< directive priority / stretch

  [[nodiscard]] bool operator==(const ProvenanceRecord&) const = default;
};

/// Human-readable allocation name: "edgeJ" / "cloudK" / "unassigned".
[[nodiscard]] std::string alloc_name(int alloc, EdgeId origin);

/// Maps a trace record onto its provenance meaning. Records that carry no
/// per-job lifecycle information (spans, counters, policy invocations,
/// cloud-level fault/recovery instants) map to nullopt.
[[nodiscard]] std::optional<ProvenanceRecord> provenance_from_trace(
    const TraceRecord& rec);

/// Collects per-job provenance chains from a trace stream.
///
/// Consecutive duplicates are dropped: a kDirective record followed by the
/// legacy kReassignment instant for the same move (same job, time, source,
/// target) yields one chain entry — the directive's, which carries the
/// reason. Traces recorded without provenance still produce chains from
/// the legacy instants alone, just without reasons for the moves.
class ProvenanceLog final : public TraceSink {
 public:
  void begin_trace(const TraceMeta& meta) override;
  void record(const TraceRecord& rec) override;
  void end_trace(Time makespan) override;

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }
  /// Number of job slots (max observed job id + 1, at least meta.jobs).
  [[nodiscard]] int job_count() const noexcept {
    return static_cast<int>(chains_.size());
  }
  /// The job's chain in event order; empty for ids never seen.
  [[nodiscard]] const std::vector<ProvenanceRecord>& chain(JobId job) const;

  /// True when the chain tells a complete story: a release, at least one
  /// explicit placement, and a completion, in that order.
  [[nodiscard]] bool complete_chain(JobId job) const;

  /// Realized stretch of the job (from its kComplete record).
  [[nodiscard]] std::optional<double> final_stretch(JobId job) const;

  /// Completed job with the largest realized stretch; -1 when none.
  [[nodiscard]] JobId worst_job() const;

  /// Prints the job's causal story, one step per line.
  void explain(JobId job, std::ostream& out) const;

 private:
  TraceMeta meta_;
  std::vector<std::vector<ProvenanceRecord>> chains_;
  Time makespan_ = 0.0;
};

}  // namespace ecs::obs
