// jsonl_sink.hpp - Lossless line-oriented trace export and import.
//
// One JSON object per line:
//
//   {"type":"meta","policy":"srpt","edges":2,"clouds":1,"jobs":10}
//   {"type":"span","point":"uplink","job":0,"run":0,"alloc":0,"origin":1,
//    "cloud":-1,"t0":0,"t1":1.5,"value":0,"reason":0}
//   {"type":"instant","point":"release","job":0,...}
//   {"type":"counter","point":"ready-queue-depth","value":3,...}
//   {"type":"end","makespan":42.5}
//
// Every record field is always written (defaults included) and times use 17
// significant digits, so a trace round-trips exactly: read_jsonl_trace
// returns records identical to the ones emitted (tests/test_obs.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ecs::obs {

/// Streams records to `out` as they arrive; nothing is buffered, so a
/// crashed run still leaves a readable prefix. The stream must outlive the
/// sink. Not thread-safe.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void begin_trace(const TraceMeta& meta) override;
  void record(const TraceRecord& rec) override;
  void end_trace(Time makespan) override;

 private:
  std::ostream* out_;
};

/// A fully parsed JSONL trace.
struct JsonlTrace {
  TraceMeta meta;
  std::vector<TraceRecord> records;
  Time makespan = 0.0;
  bool complete = false;  ///< the "end" line was present
};

/// Parses a JSONL trace stream; throws std::runtime_error on malformed
/// lines (blank lines are skipped).
[[nodiscard]] JsonlTrace read_jsonl_trace(std::istream& in);
[[nodiscard]] JsonlTrace read_jsonl_trace_file(const std::string& path);

}  // namespace ecs::obs
