#include "obs/watchdog.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ecs::obs {

namespace {

/// Stored-violation cap: a structurally broken run can violate at every
/// event; the count keeps counting, the storage stops growing.
constexpr std::size_t kMaxStoredViolations = 64;

std::string span_summary(const TraceRecord& rec) {
  std::ostringstream out;
  out << to_string(rec.point) << " job " << rec.job << " run " << rec.run
      << " on " << alloc_name(rec.alloc, rec.origin) << " [" << rec.begin
      << ", " << rec.end << "]";
  return out.str();
}

}  // namespace

std::string to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kPortConflict: return "port-conflict";
    case InvariantKind::kProcessorConflict: return "processor-conflict";
    case InvariantKind::kSelfOverlap: return "self-overlap";
    case InvariantKind::kPrecedence: return "precedence";
    case InvariantKind::kMigration: return "migration";
    case InvariantKind::kBeforeRelease: return "before-release";
    case InvariantKind::kRejectedActivity: return "rejected-activity";
  }
  return "?";
}

InvariantWatchdog::InvariantWatchdog(int provenance_depth)
    : depth_(std::max(provenance_depth, 0)) {}

void InvariantWatchdog::begin_trace(const TraceMeta& meta) {
  meta_ = meta;
  const std::size_t pe = static_cast<std::size_t>(std::max(meta.edge_count, 0));
  const std::size_t pc =
      static_cast<std::size_t>(std::max(meta.cloud_count, 0));
  const std::size_t n = static_cast<std::size_t>(std::max(meta.job_count, 0));
  edge_cpu_.assign(pe, Tail{});
  edge_send_.assign(pe, Tail{});
  edge_recv_.assign(pe, Tail{});
  cloud_cpu_.assign(pc, Tail{});
  cloud_send_.assign(pc, Tail{});
  cloud_recv_.assign(pc, Tail{});
  jobs_.assign(n, JobState{});
  rings_.assign(n, {});
  ring_next_.assign(n, 0);
  job_base_ = 0;
  job_start_ = 0;
  violations_.clear();
  total_violations_ = 0;
  records_seen_ = 0;
  spans_checked_ = 0;
}

void InvariantWatchdog::end_trace(Time makespan) { (void)makespan; }

std::int64_t InvariantWatchdog::job_index(JobId job) {
  if (job < job_base_) return -1;
  const std::size_t idx =
      job_start_ + static_cast<std::size_t>(job - job_base_);
  if (idx >= jobs_.size()) {
    jobs_.resize(idx + 1);
    rings_.resize(idx + 1);
    ring_next_.resize(idx + 1, 0);
  }
  return static_cast<std::int64_t>(idx);
}

std::int64_t InvariantWatchdog::job_lookup(JobId job) const {
  if (job < job_base_) return -1;
  const std::size_t idx =
      job_start_ + static_cast<std::size_t>(job - job_base_);
  return idx < jobs_.size() ? static_cast<std::int64_t>(idx) : -1;
}

void InvariantWatchdog::retire_job(std::int64_t idx) {
  jobs_[idx].gone = true;
  rings_[idx].clear();
  rings_[idx].shrink_to_fit();
  while (job_start_ < jobs_.size() && jobs_[job_start_].gone) {
    ++job_start_;
    ++job_base_;
  }
  if (job_start_ > 1024 && job_start_ * 2 > jobs_.size()) {
    const auto cut = static_cast<std::ptrdiff_t>(job_start_);
    jobs_.erase(jobs_.begin(), jobs_.begin() + cut);
    rings_.erase(rings_.begin(), rings_.begin() + cut);
    ring_next_.erase(ring_next_.begin(), ring_next_.begin() + cut);
    job_start_ = 0;
  }
}

InvariantWatchdog::Tail& InvariantWatchdog::tail(std::vector<Tail>& tails,
                                                 int index) {
  const std::size_t need = static_cast<std::size_t>(index) + 1;
  if (tails.size() < need) tails.resize(need);
  return tails[index];
}

void InvariantWatchdog::remember_provenance(const ProvenanceRecord& rec) {
  if (depth_ == 0 || rec.job < 0) return;
  const std::int64_t idx = job_index(rec.job);
  if (idx < 0) return;  // job already retired past the window
  std::vector<ProvenanceRecord>& ring = rings_[idx];
  if (ring.size() < static_cast<std::size_t>(depth_)) {
    ring.push_back(rec);
    ring_next_[idx] = static_cast<std::uint32_t>(ring.size()) %
                      static_cast<std::uint32_t>(depth_);
    return;
  }
  ring[ring_next_[idx]] = rec;
  ring_next_[idx] =
      (ring_next_[idx] + 1U) % static_cast<std::uint32_t>(depth_);
}

void InvariantWatchdog::append_ring(JobId job,
                                    std::vector<ProvenanceRecord>& out) const {
  if (job < 0) return;
  const std::int64_t idx = job_lookup(job);
  if (idx < 0) return;  // retired: its provenance ring was compacted away
  const std::vector<ProvenanceRecord>& ring = rings_[idx];
  if (ring.empty()) return;
  // Oldest first: the ring wraps at ring_next_ once full.
  const std::size_t n = ring.size();
  const std::size_t start =
      n < static_cast<std::size_t>(depth_) ? 0 : ring_next_[idx];
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring[(start + i) % n]);
  }
}

void InvariantWatchdog::flag(InvariantKind kind, const TraceRecord& rec,
                             JobId other_job, std::string detail) {
  ++total_violations_;
  if (violations_.size() >= kMaxStoredViolations) return;
  InvariantViolation v;
  v.kind = kind;
  v.offending = rec;
  v.other_job = other_job;
  v.detail = std::move(detail);
  append_ring(rec.job, v.provenance);
  if (other_job >= 0 && other_job != rec.job) {
    append_ring(other_job, v.provenance);
  }
  violations_.push_back(std::move(v));
}

void InvariantWatchdog::check_resource(std::vector<Tail>& tails, int index,
                                       const TraceRecord& rec,
                                       InvariantKind kind,
                                       const char* resource_name) {
  if (index < 0) return;
  Tail& t = tail(tails, index);
  // Spans close in non-decreasing end order, so this span overlaps some
  // earlier span on the resource iff it begins before the farthest end
  // seen (same-job overlaps are kSelfOverlap, reported once, elsewhere).
  if (t.job >= 0 && t.job != rec.job && time_lt(rec.begin, t.end)) {
    std::ostringstream detail;
    detail << span_summary(rec) << " overlaps job " << t.job << " on "
           << resource_name << " " << index << " (busy until " << t.end
           << ")";
    flag(kind, rec, t.job, detail.str());
  }
  if (rec.end > t.end) {
    t.end = rec.end;
    t.job = rec.job;
  }
}

void InvariantWatchdog::check_span(const TraceRecord& rec) {
  ++spans_checked_;
  const std::int64_t idx = job_index(rec.job);
  // A span for a job past the window base, or one whose entry is marked
  // gone, belongs to a job that was rejected, shed or already completed —
  // none of which may record activity.
  if (idx < 0 || jobs_[idx].gone) {
    std::ostringstream detail;
    detail << span_summary(rec) << " but the job was "
           << (idx >= 0 && jobs_[idx].refused
                   ? "rejected or shed by admission control"
                   : "already retired (completed, rejected or shed)")
           << " — it must record no further activity";
    flag(InvariantKind::kRejectedActivity, rec, -1, detail.str());
    return;
  }
  JobState& js = jobs_[idx];

  // Release: nothing of the job may happen before it entered the system.
  if (js.release > -kTimeInfinity && time_lt(rec.begin, js.release)) {
    std::ostringstream detail;
    detail << span_summary(rec) << " begins before release at "
           << js.release;
    flag(InvariantKind::kBeforeRelease, rec, -1, detail.str());
  }

  // Self-overlap: one job never does two things at once, across runs and
  // activity kinds.
  if (time_lt(rec.begin, js.busy_until)) {
    std::ostringstream detail;
    detail << span_summary(rec) << " overlaps the job's own activity ("
           << "busy until " << js.busy_until << ")";
    flag(InvariantKind::kSelfOverlap, rec, rec.job, detail.str());
  }
  js.busy_until = std::max(js.busy_until, rec.end);

  // Precedence and migration, per (job, run). A new run index resets the
  // summary: re-execution legitimately restarts anywhere from zero.
  RunState& rs = js.run;
  if (rs.run != rec.run) {
    rs = RunState{};
    rs.run = rec.run;
    rs.alloc = rec.alloc;
  } else if (rs.alloc != rec.alloc) {
    std::ostringstream detail;
    detail << span_summary(rec) << " but run " << rec.run
           << " already ran on " << alloc_name(rs.alloc, rec.origin)
           << " — progress migrated without a re-execution";
    flag(InvariantKind::kMigration, rec, -1, detail.str());
    rs.alloc = rec.alloc;  // keep checking against the new allocation
  }
  switch (rec.point) {
    case TracePoint::kUplink:
      if (time_gt(rec.end, rs.exec_min_begin)) {
        std::ostringstream detail;
        detail << span_summary(rec) << " ends after the run's execution "
               << "began at " << rs.exec_min_begin;
        flag(InvariantKind::kPrecedence, rec, -1, detail.str());
      }
      rs.up_max_end = std::max(rs.up_max_end, rec.end);
      break;
    case TracePoint::kExec:
      if (time_lt(rec.begin, rs.up_max_end)) {
        std::ostringstream detail;
        detail << span_summary(rec) << " begins before the run's uplink "
               << "finished at " << rs.up_max_end;
        flag(InvariantKind::kPrecedence, rec, -1, detail.str());
      }
      if (time_gt(rec.end, rs.down_min_begin)) {
        std::ostringstream detail;
        detail << span_summary(rec) << " ends after the run's downlink "
               << "began at " << rs.down_min_begin;
        flag(InvariantKind::kPrecedence, rec, -1, detail.str());
      }
      rs.exec_min_begin = std::min(rs.exec_min_begin, rec.begin);
      rs.exec_max_end = std::max(rs.exec_max_end, rec.end);
      break;
    case TracePoint::kDownlink:
      if (time_lt(rec.begin, rs.exec_max_end)) {
        std::ostringstream detail;
        detail << span_summary(rec) << " begins before the run's "
               << "execution finished at " << rs.exec_max_end;
        flag(InvariantKind::kPrecedence, rec, -1, detail.str());
      }
      rs.down_min_begin = std::min(rs.down_min_begin, rec.begin);
      break;
    default:
      break;
  }

  // Exclusive resources: processors and the one-port model.
  switch (rec.point) {
    case TracePoint::kExec:
      if (rec.alloc == kAllocEdge) {
        check_resource(edge_cpu_, rec.origin, rec,
                       InvariantKind::kProcessorConflict, "edge processor");
      } else if (is_cloud_alloc(rec.alloc)) {
        check_resource(cloud_cpu_, rec.alloc, rec,
                       InvariantKind::kProcessorConflict, "cloud processor");
      }
      break;
    case TracePoint::kUplink:
      // Uplink occupies the origin edge's send port and the target cloud's
      // receive port.
      check_resource(edge_send_, rec.origin, rec,
                     InvariantKind::kPortConflict, "send port of edge");
      if (is_cloud_alloc(rec.alloc)) {
        check_resource(cloud_recv_, rec.alloc, rec,
                       InvariantKind::kPortConflict,
                       "receive port of cloud");
      }
      break;
    case TracePoint::kDownlink:
      if (is_cloud_alloc(rec.alloc)) {
        check_resource(cloud_send_, rec.alloc, rec,
                       InvariantKind::kPortConflict, "send port of cloud");
      }
      check_resource(edge_recv_, rec.origin, rec,
                     InvariantKind::kPortConflict, "receive port of edge");
      break;
    default:
      break;
  }
}

void InvariantWatchdog::record(const TraceRecord& rec) {
  ++records_seen_;
  if (rec.kind == TraceKind::kSpan) {
    if (rec.job >= 0) check_span(rec);
    return;
  }
  if (rec.kind != TraceKind::kInstant || rec.job < 0) return;
  if (rec.point == TracePoint::kRelease) {
    const std::int64_t idx = job_index(rec.job);
    if (idx >= 0) jobs_[idx].release = rec.begin;
  }
  const std::optional<ProvenanceRecord> prov = provenance_from_trace(rec);
  if (prov.has_value()) remember_provenance(*prov);
  // Lifecycle exits: completed, rejected and shed jobs retire from the
  // window (after their provenance was remembered, so a violation arriving
  // in the same batch can still link it). This keeps per-job state O(live)
  // on unbounded streams and arms the kRejectedActivity check above.
  if (rec.point == TracePoint::kCompletion ||
      rec.point == TracePoint::kReject || rec.point == TracePoint::kShed) {
    const std::int64_t idx = job_index(rec.job);
    if (idx >= 0) {
      if (rec.point != TracePoint::kCompletion) jobs_[idx].refused = true;
      retire_job(idx);
    }
  }
}

void InvariantWatchdog::report(std::ostream& out) const {
  out << "watchdog: " << total_violations_ << " violation"
      << (total_violations_ == 1 ? "" : "s") << " in " << spans_checked_
      << " spans / " << records_seen_ << " records";
  if (!meta_.policy.empty()) out << " (policy " << meta_.policy << ")";
  out << "\n";
  if (violations_.size() < total_violations_) {
    out << "  (showing the first " << violations_.size() << ")\n";
  }
  for (const InvariantViolation& v : violations_) {
    out << "  [" << to_string(v.kind) << "] " << v.detail << "\n";
    for (const ProvenanceRecord& p : v.provenance) {
      out << "    provenance: job " << p.job << " t=" << p.time << " "
          << to_string(p.kind) << " -> " << alloc_name(p.target, p.origin);
      if (p.reason != ReasonCode::kUnspecified) {
        out << " [" << ecs::to_string(p.reason) << "]";
      }
      out << "\n";
    }
  }
}

}  // namespace ecs::obs
