#include "obs/provenance.hpp"

#include <algorithm>
#include <ostream>

namespace ecs::obs {

std::string to_string(ProvenanceKind kind) {
  switch (kind) {
    case ProvenanceKind::kRelease: return "release";
    case ProvenanceKind::kAssign: return "assign";
    case ProvenanceKind::kReassign: return "reassign";
    case ProvenanceKind::kKeep: return "keep";
    case ProvenanceKind::kPreempt: return "preempt";
    case ProvenanceKind::kFaultAbort: return "fault-abort";
    case ProvenanceKind::kUplinkLoss: return "uplink-loss";
    case ProvenanceKind::kDownlinkLoss: return "downlink-loss";
    case ProvenanceKind::kComplete: return "complete";
    case ProvenanceKind::kReject: return "reject";
    case ProvenanceKind::kShed: return "shed";
  }
  return "?";
}

std::string alloc_name(int alloc, EdgeId origin) {
  if (alloc == kAllocUnassigned) return "unassigned";
  if (alloc == kAllocEdge) {
    return origin >= 0 ? "edge" + std::to_string(origin) : "edge";
  }
  return "cloud" + std::to_string(alloc);
}

namespace {

/// Placement kind from the (source, target) allocation pair.
ProvenanceKind placement_kind(int source, int target) {
  if (target == source) return ProvenanceKind::kKeep;
  return source == kAllocUnassigned ? ProvenanceKind::kAssign
                                    : ProvenanceKind::kReassign;
}

}  // namespace

std::optional<ProvenanceRecord> provenance_from_trace(const TraceRecord& rec) {
  if (rec.kind != TraceKind::kInstant || rec.job < 0) return std::nullopt;
  ProvenanceRecord out;
  out.time = rec.begin;
  out.job = rec.job;
  out.run = rec.run;
  out.origin = rec.origin;
  switch (rec.point) {
    case TracePoint::kRelease:
      out.kind = ProvenanceKind::kRelease;
      return out;
    case TracePoint::kDirective:
      // Authoritative placement record: alloc = resolved target, cloud =
      // allocation before the directive, value = priority.
      out.kind = placement_kind(rec.cloud, rec.alloc);
      out.source = rec.cloud;
      out.target = rec.alloc;
      out.reason = reason_from_int(rec.reason);
      out.value = rec.value;
      return out;
    case TracePoint::kReassignment:
      // Legacy placement instant (traces without provenance): value holds
      // the previous allocation, alloc the new one. No reason available.
      out.kind = placement_kind(static_cast<int>(rec.value), rec.alloc);
      out.source = static_cast<int>(rec.value);
      out.target = rec.alloc;
      return out;
    case TracePoint::kPreemption:
      out.kind = ProvenanceKind::kPreempt;
      out.source = rec.alloc;
      out.target = rec.alloc;
      return out;
    case TracePoint::kFault:
      // Per-victim fault instant (job >= 0): the crash wiped this run.
      out.kind = ProvenanceKind::kFaultAbort;
      out.source = rec.alloc;
      out.target = kAllocUnassigned;
      return out;
    case TracePoint::kUplinkLoss:
      out.kind = ProvenanceKind::kUplinkLoss;
      out.source = rec.alloc;
      out.target = rec.alloc;
      return out;
    case TracePoint::kDownlinkLoss:
      out.kind = ProvenanceKind::kDownlinkLoss;
      out.source = rec.alloc;
      out.target = rec.alloc;
      return out;
    case TracePoint::kCompletion:
      out.kind = ProvenanceKind::kComplete;
      out.source = rec.alloc;
      out.target = rec.alloc;
      out.value = rec.value;  // realized stretch
      return out;
    case TracePoint::kReject:
      out.kind = ProvenanceKind::kReject;
      out.reason = reason_from_int(rec.reason);
      out.value = rec.value;  // resident count at refusal
      return out;
    case TracePoint::kShed:
      out.kind = ProvenanceKind::kShed;
      out.source = rec.alloc;
      out.target = kAllocUnassigned;
      out.reason = reason_from_int(rec.reason);
      out.value = rec.value;  // stretch lower bound at eviction
      return out;
    default:
      return std::nullopt;  // spans, counters, decisions, recoveries
  }
}

void ProvenanceLog::begin_trace(const TraceMeta& meta) {
  meta_ = meta;
  chains_.clear();
  chains_.resize(static_cast<std::size_t>(std::max(meta.job_count, 0)));
  makespan_ = 0.0;
}

void ProvenanceLog::record(const TraceRecord& rec) {
  const std::optional<ProvenanceRecord> prov = provenance_from_trace(rec);
  if (!prov.has_value()) return;
  if (static_cast<std::size_t>(prov->job) >= chains_.size()) {
    chains_.resize(static_cast<std::size_t>(prov->job) + 1);
  }
  std::vector<ProvenanceRecord>& chain = chains_[prov->job];
  // A kDirective and the legacy kReassignment instant describe the same
  // move; the directive (which carries the reason) arrives first and wins.
  if (!chain.empty() && rec.point == TracePoint::kReassignment) {
    const ProvenanceRecord& last = chain.back();
    if ((last.kind == ProvenanceKind::kAssign ||
         last.kind == ProvenanceKind::kReassign ||
         last.kind == ProvenanceKind::kKeep) &&
        last.time == prov->time && last.source == prov->source &&
        last.target == prov->target) {
      return;
    }
  }
  chain.push_back(*prov);
}

void ProvenanceLog::end_trace(Time makespan) { makespan_ = makespan; }

const std::vector<ProvenanceRecord>& ProvenanceLog::chain(JobId job) const {
  static const std::vector<ProvenanceRecord> kEmpty;
  if (job < 0 || static_cast<std::size_t>(job) >= chains_.size()) {
    return kEmpty;
  }
  return chains_[job];
}

bool ProvenanceLog::complete_chain(JobId job) const {
  const std::vector<ProvenanceRecord>& c = chain(job);
  if (c.empty()) return false;
  bool released = false;
  bool placed = false;
  bool completed = false;
  for (const ProvenanceRecord& r : c) {
    switch (r.kind) {
      case ProvenanceKind::kRelease:
        if (placed || completed) return false;  // out of order
        released = true;
        break;
      case ProvenanceKind::kAssign:
      case ProvenanceKind::kReassign:
        if (!released || completed) return false;
        placed = true;
        break;
      case ProvenanceKind::kComplete:
        if (!released || !placed || completed) return false;
        completed = true;
        break;
      default:
        if (completed) return false;  // activity after completion
        break;
    }
  }
  return released && placed && completed;
}

std::optional<double> ProvenanceLog::final_stretch(JobId job) const {
  const std::vector<ProvenanceRecord>& c = chain(job);
  for (auto it = c.rbegin(); it != c.rend(); ++it) {
    if (it->kind == ProvenanceKind::kComplete) return it->value;
  }
  return std::nullopt;
}

JobId ProvenanceLog::worst_job() const {
  JobId worst = -1;
  double worst_stretch = -1.0;
  for (std::size_t j = 0; j < chains_.size(); ++j) {
    const std::optional<double> s = final_stretch(static_cast<JobId>(j));
    if (s.has_value() && *s > worst_stretch) {
      worst_stretch = *s;
      worst = static_cast<JobId>(j);
    }
  }
  return worst;
}

void ProvenanceLog::explain(JobId job, std::ostream& out) const {
  const std::vector<ProvenanceRecord>& c = chain(job);
  out << "job " << job;
  if (!c.empty() && c.front().origin >= 0) {
    out << " (origin edge" << c.front().origin << ")";
  }
  out << ": " << c.size() << " provenance record"
      << (c.size() == 1 ? "" : "s") << "\n";
  if (c.empty()) {
    out << "  (no records: job id unseen in this trace)\n";
    return;
  }
  for (const ProvenanceRecord& r : c) {
    out << "  t=" << r.time << " run " << r.run << " "
        << to_string(r.kind);
    switch (r.kind) {
      case ProvenanceKind::kRelease:
        break;
      case ProvenanceKind::kAssign:
        out << " -> " << alloc_name(r.target, r.origin);
        break;
      case ProvenanceKind::kReassign:
        out << " " << alloc_name(r.source, r.origin) << " -> "
            << alloc_name(r.target, r.origin);
        break;
      case ProvenanceKind::kKeep:
        out << " " << alloc_name(r.target, r.origin);
        break;
      case ProvenanceKind::kPreempt:
      case ProvenanceKind::kUplinkLoss:
      case ProvenanceKind::kDownlinkLoss:
        out << " on " << alloc_name(r.source, r.origin);
        break;
      case ProvenanceKind::kFaultAbort:
        out << " on " << alloc_name(r.source, r.origin)
            << " (progress lost)";
        break;
      case ProvenanceKind::kComplete:
        out << " on " << alloc_name(r.source, r.origin)
            << " stretch=" << r.value;
        break;
      case ProvenanceKind::kReject:
        out << " (admission refused; " << r.value << " resident)";
        break;
      case ProvenanceKind::kShed:
        out << " (admission evicted; stretch bound " << r.value << ")";
        break;
    }
    if (r.reason != ReasonCode::kUnspecified) {
      out << " [" << ecs::to_string(r.reason) << "]";
    }
    out << "\n";
  }
  const std::optional<double> s = final_stretch(job);
  if (!s.has_value()) {
    out << "  (job did not complete before the trace ended)\n";
  }
}

}  // namespace ecs::obs
