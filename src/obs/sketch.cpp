#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ecs::obs {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument("QuantileSketch: alpha must be in (0, 1)");
  }
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

void QuantileSketch::clear() {
  zero_count_ = 0;
  counts_.clear();
  offset_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

int QuantileSketch::bucket_index(double value) const {
  // ceil(log_gamma(v)): bucket i covers (gamma^(i-1), gamma^i].
  return static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(int index) const {
  // Midpoint of (gamma^(i-1), gamma^i]: within (1 ± alpha) of any member.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::observe(double value) {
  if (std::isnan(value)) return;  // NaN: no meaningful rank
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (!std::isfinite(value)) return;  // +inf counted, held by max_ only
  if (value <= kMinTrackable) {
    ++zero_count_;
    return;
  }
  const int index = bucket_index(value);
  if (counts_.empty()) {
    offset_ = index;
    counts_.push_back(0);
  } else if (index < offset_) {
    counts_.insert(counts_.begin(),
                   static_cast<std::size_t>(offset_ - index), 0);
    offset_ = index;
  } else if (index >= offset_ + static_cast<int>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(index - offset_) + 1, 0);
  }
  ++counts_[static_cast<std::size_t>(index - offset_)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: incompatible alphas");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    counts_ = other.counts_;
    offset_ = other.offset_;
    return;
  }
  const int lo = std::min(offset_, other.offset_);
  const int hi = std::max(offset_ + static_cast<int>(counts_.size()),
                          other.offset_ + static_cast<int>(other.counts_.size()));
  if (lo < offset_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(offset_ - lo), 0);
    offset_ = lo;
  }
  if (hi > offset_ + static_cast<int>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(hi - offset_), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[static_cast<std::size_t>(other.offset_ - offset_) + i] +=
        other.counts_[i];
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the target observation among the sorted samples (0-based).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  if (rank < zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > rank) {
      // Clamp into the observed range: the edge buckets over-cover it.
      return std::clamp(bucket_value(offset_ + static_cast<int>(i)), min_,
                        max_);
    }
  }
  return max_;  // remaining rank mass is non-finite observations
}

}  // namespace ecs::obs
