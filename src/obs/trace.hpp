// trace.hpp - Structured tracing of one simulation run.
//
// The engine (sim/engine.cpp) can emit a stream of structured records into
// a TraceSink: activity *spans* (every uplink / execution / downlink
// interval, in simulated time), *instants* (releases, completions,
// preemptions, re-executions, faults, recoveries, message losses, policy
// decisions) and *counter samples* (live max-stretch, ready-queue depth,
// per-pool utilization) taken at event granularity.
//
// Tracing is strictly opt-in and zero-cost when disabled: the engine holds
// a nullable TraceSink* and every emission sits behind a null check, so an
// untraced simulation runs the exact same arithmetic in the exact same
// order as a traced one (tests/test_obs.cpp asserts bit-identical results).
//
// Sinks are single-run, single-threaded objects. Concrete sinks:
//   * MemoryTraceSink (here)          - buffers records, for tests;
//   * TeeTraceSink (here)             - fans out to several sinks;
//   * JsonlTraceSink (jsonl_sink.hpp) - one JSON object per line, lossless;
//   * PerfettoTraceSink (perfetto_sink.hpp) - Chrome trace_event JSON for
//     ui.perfetto.dev, one track per processor and per comm port.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/schedule.hpp"
#include "core/time.hpp"

namespace ecs::obs {

enum class TraceKind : std::uint8_t { kSpan, kInstant, kCounter };

/// What a record describes. The first block are span points, the second
/// instant points, the third counter (time-series) points.
enum class TracePoint : std::uint8_t {
  // Spans: one closed activity interval in simulated time.
  kUplink,
  kExec,
  kDownlink,
  // Instants.
  kRelease,      ///< job released (value unused)
  kCompletion,   ///< job finished; value = realized stretch
  kPreemption,   ///< job lost its resource while still needing it
  kReassignment, ///< allocation changed, progress discarded
  kFault,        ///< unannounced cloud crash (cloud set; job set per victim)
  kRecovery,     ///< crashed cloud repaired
  kUplinkLoss,   ///< in-flight uplink corrupted; upload restarts
  kDownlinkLoss, ///< in-flight downlink corrupted; download restarts
  kDecision,     ///< policy invocation; value = directive count
  kDirective,    ///< decision provenance: one applied directive (alloc =
                 ///< resolved target, cloud = previous allocation, value =
                 ///< priority, reason = policy's ReasonCode). Emitted only
                 ///< when EngineConfig::provenance (or a watchdog) is set.
  // Counters, sampled after each decision round.
  kLiveMaxStretch,   ///< max stretch over finished and in-flight jobs
  kReadyQueueDepth,  ///< live jobs holding no resource
  kEdgeUtilization,  ///< fraction of edge processors executing work
  kCloudUtilization, ///< fraction of cloud processors executing work
  // Admission-control instants (appended so earlier numeric values stay
  // stable in serialized traces; see EngineConfig::admission).
  kReject, ///< arrival refused at release; value = live count, reason set
  kShed,   ///< admitted never-started job evicted; value = stretch lower
           ///< bound at eviction, reason set
};

[[nodiscard]] std::string to_string(TracePoint point);
[[nodiscard]] std::string to_string(TraceKind kind);
/// Inverses of to_string; throw std::invalid_argument on unknown names.
[[nodiscard]] TracePoint parse_trace_point(const std::string& name);
[[nodiscard]] TraceKind parse_trace_kind(const std::string& name);

/// One flat trace record. Fields that do not apply to a record's kind keep
/// their defaults (-1 / 0), so records compare and serialize uniformly.
struct TraceRecord {
  TraceKind kind = TraceKind::kInstant;
  TracePoint point = TracePoint::kDecision;
  JobId job = -1;     ///< affected job; -1 for job-less records
  int run = 0;        ///< re-execution index of the job (flow linking)
  int alloc = kAllocUnassigned;  ///< allocation of a span (kAllocEdge/cloud)
  EdgeId origin = -1; ///< origin edge of the span's job
  int cloud = -1;     ///< cloud of a fault / recovery / loss instant
  Time begin = 0.0;   ///< span start; instant / sample time
  Time end = 0.0;     ///< span end; == begin for instants and counters
  double value = 0.0; ///< counter sample / stretch / directive count
  int reason = 0;     ///< ReasonCode of a kDirective record (0 otherwise)

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

/// Static facts about the traced run, delivered before the first record.
struct TraceMeta {
  std::string policy;
  int edge_count = 0;
  int cloud_count = 0;
  int job_count = 0;

  [[nodiscard]] bool operator==(const TraceMeta&) const = default;
};

/// Receives the record stream of one simulation run. begin_trace is called
/// once before the first record, end_trace once after the last (with the
/// makespan). Implementations need not be thread-safe: a sink observes one
/// run at a time.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin_trace(const TraceMeta& meta) { (void)meta; }
  virtual void record(const TraceRecord& rec) = 0;
  virtual void end_trace(Time makespan) { (void)makespan; }
};

/// Buffers everything in memory; the sink used by the test suite.
class MemoryTraceSink final : public TraceSink {
 public:
  void begin_trace(const TraceMeta& meta) override { meta_ = meta; }
  void record(const TraceRecord& rec) override { records_.push_back(rec); }
  void end_trace(Time makespan) override {
    makespan_ = makespan;
    ended_ = true;
  }

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }
  [[nodiscard]] bool ended() const noexcept { return ended_; }

 private:
  TraceMeta meta_;
  std::vector<TraceRecord> records_;
  Time makespan_ = 0.0;
  bool ended_ = false;
};

/// Forwards every call to a set of child sinks (e.g. JSONL + Perfetto from
/// one run). Does not own the children.
class TeeTraceSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }

  void begin_trace(const TraceMeta& meta) override {
    for (TraceSink* s : sinks_) s->begin_trace(meta);
  }
  void record(const TraceRecord& rec) override {
    for (TraceSink* s : sinks_) s->record(rec);
  }
  void end_trace(Time makespan) override {
    for (TraceSink* s : sinks_) s->end_trace(makespan);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace ecs::obs
