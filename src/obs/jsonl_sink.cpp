#include "obs/jsonl_sink.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace ecs::obs {

void JsonlTraceSink::begin_trace(const TraceMeta& meta) {
  *out_ << "{\"type\":\"meta\",\"policy\":\"" << json::escape(meta.policy)
        << "\",\"edges\":" << meta.edge_count
        << ",\"clouds\":" << meta.cloud_count << ",\"jobs\":" << meta.job_count
        << "}\n";
}

void JsonlTraceSink::record(const TraceRecord& rec) {
  *out_ << "{\"type\":\"" << to_string(rec.kind) << "\",\"point\":\""
        << to_string(rec.point) << "\",\"job\":" << rec.job
        << ",\"run\":" << rec.run << ",\"alloc\":" << rec.alloc
        << ",\"origin\":" << rec.origin << ",\"cloud\":" << rec.cloud
        << ",\"t0\":" << json::number(rec.begin)
        << ",\"t1\":" << json::number(rec.end)
        << ",\"value\":" << json::number(rec.value)
        << ",\"reason\":" << rec.reason << "}\n";
}

void JsonlTraceSink::end_trace(Time makespan) {
  *out_ << "{\"type\":\"end\",\"makespan\":" << json::number(makespan)
        << "}\n";
  out_->flush();
}

JsonlTrace read_jsonl_trace(std::istream& in) {
  JsonlTrace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value value;
    try {
      value = json::parse(line);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("jsonl trace line " +
                               std::to_string(line_number) + ": " + e.what());
    }
    const std::string& type = value.at("type").as_string();
    if (type == "meta") {
      trace.meta.policy = value.at("policy").as_string();
      trace.meta.edge_count = static_cast<int>(value.at("edges").as_int());
      trace.meta.cloud_count = static_cast<int>(value.at("clouds").as_int());
      trace.meta.job_count = static_cast<int>(value.at("jobs").as_int());
    } else if (type == "end") {
      trace.makespan = json::to_double(value.at("makespan"));
      trace.complete = true;
    } else {
      TraceRecord rec;
      rec.kind = parse_trace_kind(type);
      rec.point = parse_trace_point(value.at("point").as_string());
      rec.job = static_cast<JobId>(value.at("job").as_int());
      rec.run = static_cast<int>(value.at("run").as_int());
      rec.alloc = static_cast<int>(value.at("alloc").as_int());
      rec.origin = static_cast<EdgeId>(value.at("origin").as_int());
      rec.cloud = static_cast<int>(value.at("cloud").as_int());
      // Times / values may be non-finite (written as null / "Infinity").
      rec.begin = json::to_double(value.at("t0"));
      rec.end = json::to_double(value.at("t1"));
      rec.value = json::to_double(value.at("value"));
      // Absent in traces from before decision provenance existed.
      const json::Value* reason = value.find("reason");
      rec.reason = reason != nullptr ? static_cast<int>(reason->as_int()) : 0;
      trace.records.push_back(rec);
    }
  }
  return trace;
}

JsonlTrace read_jsonl_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file " + path);
  return read_jsonl_trace(in);
}

}  // namespace ecs::obs
