#include "obs/perfetto_sink.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace ecs::obs {
namespace {

constexpr double kMicrosPerTimeUnit = 1e6;

/// Chrome's trace_event JSON insists on plain numbers for ts/dur/values,
/// so non-finite doubles saturate instead of round-tripping as strings.
std::string pnum(double value) {
  return json::number(value, json::NonFinitePolicy::kClamp);
}

std::string metadata(const char* what, int tid, const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"" << what
     << "\",\"args\":{\"name\":\"" << json::escape(name) << "\"}}";
  return os.str();
}

std::string sort_index(int tid) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tid
     << "}}";
  return os.str();
}

}  // namespace

void PerfettoTraceSink::push(double ts, std::string body) {
  events_.push_back(Pending{ts, std::move(body)});
}

void PerfettoTraceSink::begin_trace(const TraceMeta& meta) {
  meta_ = meta;
  events_.clear();
  cloud_spans_.clear();
  push(-1.0, metadata("process_name", 0,
                      "edge-cloud simulation [" + meta.policy + "]"));
  push(-1.0, metadata("thread_name", 0, "events"));
  push(-1.0, sort_index(0));
  for (int j = 0; j < meta.edge_count; ++j) {
    const std::string e = "edge " + std::to_string(j);
    push(-1.0, metadata("thread_name", edge_cpu_tid(j), e + " cpu"));
    push(-1.0, metadata("thread_name", edge_up_tid(j), e + " uplink port"));
    push(-1.0,
         metadata("thread_name", edge_down_tid(j), e + " downlink port"));
    push(-1.0, sort_index(edge_cpu_tid(j)));
    push(-1.0, sort_index(edge_up_tid(j)));
    push(-1.0, sort_index(edge_down_tid(j)));
  }
  for (int k = 0; k < meta.cloud_count; ++k) {
    const std::string c = "cloud " + std::to_string(k);
    push(-1.0, metadata("thread_name", cloud_cpu_tid(k), c + " cpu"));
    push(-1.0, metadata("thread_name", cloud_up_tid(k), c + " uplink port"));
    push(-1.0,
         metadata("thread_name", cloud_down_tid(k), c + " downlink port"));
    push(-1.0, sort_index(cloud_cpu_tid(k)));
    push(-1.0, sort_index(cloud_up_tid(k)));
    push(-1.0, sort_index(cloud_down_tid(k)));
  }
}

void PerfettoTraceSink::record(const TraceRecord& rec) {
  switch (rec.kind) {
    case TraceKind::kSpan:
      emit_span(rec);
      break;
    case TraceKind::kInstant:
      emit_instant(rec);
      break;
    case TraceKind::kCounter:
      emit_counter(rec);
      break;
  }
}

void PerfettoTraceSink::emit_span(const TraceRecord& rec) {
  const double ts = rec.begin * kMicrosPerTimeUnit;
  const double dur = (rec.end - rec.begin) * kMicrosPerTimeUnit;
  // The tracks a span occupies: computation holds one cpu; a communication
  // holds the port on both ends (one-port model), so it appears on both.
  int tids[2] = {-1, -1};
  switch (rec.point) {
    case TracePoint::kUplink:
      tids[0] = edge_up_tid(rec.origin);
      tids[1] = cloud_up_tid(rec.alloc);
      break;
    case TracePoint::kExec:
      tids[0] = rec.alloc == kAllocEdge ? edge_cpu_tid(rec.origin)
                                        : cloud_cpu_tid(rec.alloc);
      break;
    case TracePoint::kDownlink:
      tids[0] = cloud_down_tid(rec.alloc);
      tids[1] = edge_down_tid(rec.origin);
      break;
    default:
      return;
  }
  for (const int tid : tids) {
    if (tid < 0) continue;
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
       << pnum(ts) << ",\"dur\":" << pnum(dur)
       << ",\"cat\":\"activity\",\"name\":\"J" << rec.job << " "
       << to_string(rec.point) << "\",\"args\":{\"job\":" << rec.job
       << ",\"run\":" << rec.run << ",\"alloc\":" << rec.alloc << "}}";
    push(ts, os.str());
  }
  if (is_cloud_alloc(rec.alloc)) cloud_spans_.push_back(rec);
}

void PerfettoTraceSink::emit_instant(const TraceRecord& rec) {
  const double ts = rec.begin * kMicrosPerTimeUnit;
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"p\",\"ts\":"
     << pnum(ts) << ",\"cat\":\"" << to_string(rec.point)
     << "\",\"name\":\"" << to_string(rec.point);
  if (rec.job >= 0) os << " J" << rec.job;
  if (rec.cloud >= 0) os << " cloud" << rec.cloud;
  os << "\",\"args\":{\"job\":" << rec.job << ",\"cloud\":" << rec.cloud
     << ",\"value\":" << pnum(rec.value) << "}}";
  push(ts, os.str());
}

void PerfettoTraceSink::emit_counter(const TraceRecord& rec) {
  const double ts = rec.begin * kMicrosPerTimeUnit;
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << pnum(ts)
     << ",\"name\":\"" << to_string(rec.point)
     << "\",\"args\":{\"value\":" << pnum(rec.value) << "}}";
  push(ts, os.str());
}

void PerfettoTraceSink::emit_flows() {
  // Chain every cloud run of a job: uplink(s) -> execution(s) ->
  // downlink(s). Flow events bind to the slice enclosing their timestamp
  // on the given track, so each step sits at its span's midpoint on the
  // span's cloud-side track.
  std::map<std::pair<JobId, int>, std::vector<TraceRecord>> runs;
  for (const TraceRecord& rec : cloud_spans_) {
    runs[{rec.job, rec.run}].push_back(rec);
  }
  for (auto& [key, spans] : runs) {
    if (spans.size() < 2) continue;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                       return a.begin < b.begin;
                     });
    std::string id = "J";
    id += std::to_string(key.first);
    id += '.';
    id += std::to_string(key.second);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const TraceRecord& rec = spans[i];
      const double mid = 0.5 * (rec.begin + rec.end) * kMicrosPerTimeUnit;
      int tid = cloud_cpu_tid(rec.alloc);
      if (rec.point == TracePoint::kUplink) tid = cloud_up_tid(rec.alloc);
      if (rec.point == TracePoint::kDownlink) tid = cloud_down_tid(rec.alloc);
      const char* ph = i == 0 ? "s" : (i + 1 == spans.size() ? "f" : "t");
      std::ostringstream os;
      os << "{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << pnum(mid)
         << ",\"cat\":\"job-flow\",\"name\":\"" << id << "\",\"id\":\"" << id
         << "\"";
      if (*ph == 'f') os << ",\"bp\":\"e\"";
      os << "}";
      push(mid, os.str());
    }
  }
}

void PerfettoTraceSink::end_trace(Time makespan) {
  emit_flows();
  {
    std::ostringstream os;
    os << "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"g\",\"ts\":"
       << pnum(makespan * kMicrosPerTimeUnit)
       << ",\"name\":\"makespan\",\"args\":{}}";
    push(makespan * kMicrosPerTimeUnit, os.str());
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.ts < b.ts;
                   });
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    *out_ << (i == 0 ? "\n" : ",\n") << events_[i].body;
  }
  *out_ << "\n]}\n";
  out_->flush();
  events_.clear();
  cloud_spans_.clear();
}

}  // namespace ecs::obs
