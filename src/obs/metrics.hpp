// metrics.hpp - A process-local metrics registry: counters, gauges,
// fixed-bucket histograms and phase timers.
//
// The registry is the aggregate companion of the trace stream (trace.hpp):
// where a trace answers "what happened when", the registry answers "how
// much, in total" — total preemptions, the stretch distribution, how long
// the engine spent inside the policy versus arbitration.
//
// Concurrency contract: instrument *registration* (counter()/gauge()/...)
// takes a mutex and should happen at setup time; *updates* (add, observe,
// gauge_set, add_nanos) are lock-free relaxed atomics, so one registry can
// be shared by every run of a multi-threaded sweep and accumulates totals
// across runs. Snapshots taken while writers are active are approximate.
// The exception is the sketch family (quantile sketches are bucket maps,
// not single words): sketch_observe/sketch_merge take a per-sketch mutex.
// Sweeps that care about the hot path keep a private QuantileSketch per
// worker and merge once at the end (obs/sketch.hpp; merging is exact).
//
// Like tracing, metrics are opt-in: the engine holds a nullable
// MetricsRegistry* and skips all bookkeeping (including clock reads) when
// it is null.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.hpp"

namespace ecs::obs {

struct HistogramSnapshot {
  /// Inclusive upper bounds of the finite buckets, strictly increasing.
  std::vector<double> bounds;
  /// counts[i] = observations v with bounds[i-1] < v <= bounds[i]; the
  /// final entry is the overflow bucket (> bounds.back()).
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total observations
  double sum = 0.0;         ///< sum of observed values
};

struct TimerSnapshot {
  double seconds = 0.0;     ///< accumulated wall time
  std::uint64_t count = 0;  ///< number of timed scopes
};

struct GaugeSnapshot {
  double last = 0.0;  ///< most recently set value
  double max = 0.0;   ///< maximum over all set values (0 when never set)
};

class MetricsRegistry {
 public:
  /// Instrument handle; each instrument family has its own id space.
  using Id = int;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (get-or-create by name; thread-safe, not hot-path) ---
  [[nodiscard]] Id counter(const std::string& name);
  [[nodiscard]] Id gauge(const std::string& name);
  [[nodiscard]] Id timer(const std::string& name);
  /// `bounds` are the inclusive upper bounds of the finite buckets and must
  /// be non-empty and strictly increasing. Re-registering an existing
  /// histogram returns it (the bounds argument is then ignored).
  [[nodiscard]] Id histogram(const std::string& name,
                             std::vector<double> bounds);
  /// Quantile sketch with relative accuracy `alpha` (obs/sketch.hpp).
  /// Re-registering an existing sketch returns it (alpha then ignored).
  [[nodiscard]] Id sketch(const std::string& name,
                          double alpha = QuantileSketch::kDefaultAlpha);

  // --- updates (lock-free, safe from any thread) ---
  void add(Id id, std::uint64_t delta = 1) noexcept;
  void gauge_set(Id id, double value) noexcept;  ///< updates last and max
  void observe(Id id, double value) noexcept;
  void add_nanos(Id id, std::uint64_t nanos) noexcept;

  // --- sketch updates (per-sketch mutex, safe from any thread) ---
  void sketch_observe(Id id, double value);
  /// Folds a privately accumulated sketch in (exact; see sketch.hpp).
  void sketch_merge(Id id, const QuantileSketch& other);

  // --- snapshots (by name; throw std::out_of_range on unknown names) ---
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] GaugeSnapshot gauge_value(const std::string& name) const;
  [[nodiscard]] TimerSnapshot timer_value(const std::string& name) const;
  [[nodiscard]] HistogramSnapshot histogram_value(
      const std::string& name) const;
  /// Copy of the named sketch (itself mergeable into other sketches).
  [[nodiscard]] QuantileSketch sketch_value(const std::string& name) const;

  /// Full JSON dump:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:{"last":..,"max":..},...},
  ///    "timers":{name:{"seconds":..,"count":..},...},
  ///    "histograms":{name:{"bounds":[..],"counts":[..],
  ///                        "sum":..,"count":..},...},
  ///    "sketches":{name:{"alpha":..,"count":..,"sum":..,"min":..,
  ///                      "max":..,"p50":..,"p90":..,"p99":..,
  ///                      "p999":..},...}}
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition (version 0.0.4): counters as `counter`,
  /// gauges as two `gauge` series (_last/_max), timers as
  /// `<name>_seconds_total` + `<name>_count`, histograms as cumulative
  /// `histogram` series with `le` labels, sketches as `summary` series
  /// with `quantile` labels (p50/p90/p99/p99.9) plus _sum/_count/_min/_max.
  /// Names are sanitized to the Prometheus charset ([a-zA-Z0-9_:]).
  void write_prometheus(std::ostream& out) const;

 private:
  struct Counter {
    std::atomic<std::uint64_t> value{0};
  };
  struct Gauge {
    std::atomic<double> last{0.0};
    std::atomic<double> max{0.0};
  };
  struct Timer {
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> count{0};
  };
  struct Histogram {
    explicit Histogram(std::vector<double> upper)
        : bounds(std::move(upper)), counts(bounds.size() + 1) {}
    std::vector<double> bounds;
    std::vector<std::atomic<std::uint64_t>> counts;  ///< + overflow bucket
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  struct Sketch {
    explicit Sketch(double alpha) : sketch(alpha) {}
    mutable std::mutex mutex;
    QuantileSketch sketch;
  };

  // Instruments live in deques so update paths can hold plain ids: deques
  // never relocate existing elements on growth.
  mutable std::mutex mutex_;  ///< guards the name maps and deque growth
  std::map<std::string, Id> counter_ids_, gauge_ids_, timer_ids_, hist_ids_,
      sketch_ids_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Timer> timers_;
  std::deque<Histogram> histograms_;
  std::deque<Sketch> sketches_;
};

/// RAII wall-clock scope feeding a registry timer. A null registry makes
/// the scope a true no-op: no clock is read.
class ScopeTimer {
 public:
  ScopeTimer(MetricsRegistry* registry, MetricsRegistry::Id id) noexcept
      : registry_(registry), id_(id) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
  ~ScopeTimer() {
    if (registry_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->add_nanos(
          id_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
    }
  }

 private:
  MetricsRegistry* registry_;
  MetricsRegistry::Id id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ecs::obs
