#include "obs/reason.hpp"

#include <stdexcept>

namespace ecs {

std::string to_string(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kUnspecified:
      return "unspecified";
    case ReasonCode::kProjectedBestCompletion:
      return "projected-best-completion";
    case ReasonCode::kQueuedBehindPriority:
      return "queued-behind-priority";
    case ReasonCode::kGreedyBestStretch:
      return "greedy-best-stretch";
    case ReasonCode::kGreedySwitchMarginHold:
      return "greedy-switch-margin-hold";
    case ReasonCode::kGreedyWaitForOwnResource:
      return "greedy-wait-for-own-resource";
    case ReasonCode::kSrptShortestRemaining:
      return "srpt-shortest-remaining";
    case ReasonCode::kSrptWaitForOwnResource:
      return "srpt-wait-for-own-resource";
    case ReasonCode::kDeadlineFeasibleLocal:
      return "deadline-feasible-local";
    case ReasonCode::kDeadlineInfeasibleOnEdge:
      return "deadline-infeasible-on-edge";
    case ReasonCode::kFcfsArrivalOrder:
      return "fcfs-arrival-order";
    case ReasonCode::kEdgeOnlyEdf:
      return "edge-only-edf";
    case ReasonCode::kFixedAssignment:
      return "fixed-assignment";
    case ReasonCode::kFailoverBlacklist:
      return "failover-blacklist";
    case ReasonCode::kFailoverBackoff:
      return "failover-backoff";
    case ReasonCode::kFailoverCrashEvacuation:
      return "failover-crash-evacuation";
    case ReasonCode::kFailoverDegradeToEdge:
      return "failover-degrade-to-edge";
    case ReasonCode::kAdmissionQueueFull:
      return "admission-queue-full";
    case ReasonCode::kAdmissionStretchHopeless:
      return "admission-stretch-hopeless";
    case ReasonCode::kAdmissionDeadlineInfeasible:
      return "admission-deadline-infeasible";
  }
  return "unknown";
}

namespace {

constexpr ReasonCode kAllReasons[] = {
    ReasonCode::kUnspecified,
    ReasonCode::kProjectedBestCompletion,
    ReasonCode::kQueuedBehindPriority,
    ReasonCode::kGreedyBestStretch,
    ReasonCode::kGreedySwitchMarginHold,
    ReasonCode::kGreedyWaitForOwnResource,
    ReasonCode::kSrptShortestRemaining,
    ReasonCode::kSrptWaitForOwnResource,
    ReasonCode::kDeadlineFeasibleLocal,
    ReasonCode::kDeadlineInfeasibleOnEdge,
    ReasonCode::kFcfsArrivalOrder,
    ReasonCode::kEdgeOnlyEdf,
    ReasonCode::kFixedAssignment,
    ReasonCode::kFailoverBlacklist,
    ReasonCode::kFailoverBackoff,
    ReasonCode::kFailoverCrashEvacuation,
    ReasonCode::kFailoverDegradeToEdge,
    ReasonCode::kAdmissionQueueFull,
    ReasonCode::kAdmissionStretchHopeless,
    ReasonCode::kAdmissionDeadlineInfeasible,
};

}  // namespace

ReasonCode parse_reason_code(const std::string& name) {
  for (ReasonCode r : kAllReasons) {
    if (to_string(r) == name) return r;
  }
  throw std::invalid_argument("unknown reason code: " + name);
}

ReasonCode reason_from_int(int value) noexcept {
  if (value < 0 ||
      value > static_cast<int>(ReasonCode::kAdmissionDeadlineInfeasible)) {
    return ReasonCode::kUnspecified;
  }
  return static_cast<ReasonCode>(value);
}

}  // namespace ecs
