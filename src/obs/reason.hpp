// reason.hpp - Machine-readable decision reason codes.
//
// Every Directive a policy emits carries a ReasonCode explaining *why* the
// policy chose that target (see sim/policy.hpp). The engine copies the code
// into the decision-provenance trace records (TracePoint::kDirective), so a
// job's final stretch can be traced back to the sequence of decisions that
// produced it (obs/provenance.hpp, tools/trace_inspect --explain).
//
// The enum lives in the obs library (not sim/) because the observability
// layer — provenance chains, the invariant watchdog, the JSONL reader —
// must interpret the codes without depending on the simulator; sim links
// against obs, not the other way around. Codes are stable small integers:
// they are serialized numerically in JSONL traces, so renumbering breaks
// old traces. Append only.
#pragma once

#include <cstdint>
#include <string>

namespace ecs {

enum class ReasonCode : std::uint8_t {
  kUnspecified = 0,        ///< policy predates reason codes / no annotation

  // Shared list-assignment reasons (sched/common.cpp).
  kProjectedBestCompletion = 1,  ///< target minimizes projected completion
  kQueuedBehindPriority = 2,     ///< would not start now; keep progress

  // Greedy (sched/greedy.cpp).
  kGreedyBestStretch = 3,        ///< resource minimizing this job's stretch
  kGreedySwitchMarginHold = 4,   ///< a move existed but missed the margin
  kGreedyWaitForOwnResource = 5, ///< own resource claimed; wait for it

  // SRPT (sched/srpt.cpp).
  kSrptShortestRemaining = 6,    ///< earliest uncontended completion
  kSrptWaitForOwnResource = 7,   ///< own resource claimed; wait for it

  // SSF-EDF (sched/ssf_edf.cpp).
  kDeadlineFeasibleLocal = 8,    ///< edge meets the deadline-driven target
  kDeadlineInfeasibleOnEdge = 9, ///< edge projection loses; delegate to cloud

  // FCFS (sched/fcfs.cpp).
  kFcfsArrivalOrder = 10,        ///< placement by release order

  // Edge-Only (sched/edge_only.cpp).
  kEdgeOnlyEdf = 11,             ///< per-edge EDF, never delegates

  // Fixed (sched/fixed.hpp).
  kFixedAssignment = 12,         ///< predetermined allocation replayed

  // Failover decorator (sched/failover.cpp).
  kFailoverBlacklist = 13,       ///< cloud written off after repeat faults
  kFailoverBackoff = 14,         ///< cloud inside its retry-backoff window
  kFailoverCrashEvacuation = 15, ///< cloud crashed and is still down
  kFailoverDegradeToEdge = 16,   ///< no healthy cloud (or edge faster)

  // Admission control (sim/engine.cpp, EngineConfig::admission). These are
  // engine decisions, not policy decisions: they annotate the
  // TracePoint::kReject / kShed instants and the SimResult admission log.
  kAdmissionQueueFull = 17,          ///< max_live / max_queue cap reached
  kAdmissionStretchHopeless = 18,    ///< shed: worst stretch lower bound
  kAdmissionDeadlineInfeasible = 19, ///< shed: stretch_limit already missed
};

/// Stable snake-case name for logs, explain output and JSON.
[[nodiscard]] std::string to_string(ReasonCode reason);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] ReasonCode parse_reason_code(const std::string& name);

/// Int -> enum with range check (for trace readers); out-of-range values
/// map to kUnspecified so old tools keep reading new traces.
[[nodiscard]] ReasonCode reason_from_int(int value) noexcept;

}  // namespace ecs
