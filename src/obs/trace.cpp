#include "obs/trace.hpp"

#include <stdexcept>

namespace ecs::obs {

std::string to_string(TracePoint point) {
  switch (point) {
    case TracePoint::kUplink:
      return "uplink";
    case TracePoint::kExec:
      return "exec";
    case TracePoint::kDownlink:
      return "downlink";
    case TracePoint::kRelease:
      return "release";
    case TracePoint::kCompletion:
      return "completion";
    case TracePoint::kPreemption:
      return "preemption";
    case TracePoint::kReassignment:
      return "reassignment";
    case TracePoint::kFault:
      return "fault";
    case TracePoint::kRecovery:
      return "recovery";
    case TracePoint::kUplinkLoss:
      return "uplink-loss";
    case TracePoint::kDownlinkLoss:
      return "downlink-loss";
    case TracePoint::kDecision:
      return "decision";
    case TracePoint::kDirective:
      return "directive";
    case TracePoint::kLiveMaxStretch:
      return "live-max-stretch";
    case TracePoint::kReadyQueueDepth:
      return "ready-queue-depth";
    case TracePoint::kEdgeUtilization:
      return "edge-utilization";
    case TracePoint::kCloudUtilization:
      return "cloud-utilization";
    case TracePoint::kReject:
      return "reject";
    case TracePoint::kShed:
      return "shed";
  }
  return "unknown";
}

std::string to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSpan:
      return "span";
    case TraceKind::kInstant:
      return "instant";
    case TraceKind::kCounter:
      return "counter";
  }
  return "unknown";
}

TracePoint parse_trace_point(const std::string& name) {
  static constexpr TracePoint kAll[] = {
      TracePoint::kUplink,         TracePoint::kExec,
      TracePoint::kDownlink,       TracePoint::kRelease,
      TracePoint::kCompletion,     TracePoint::kPreemption,
      TracePoint::kReassignment,   TracePoint::kFault,
      TracePoint::kRecovery,       TracePoint::kUplinkLoss,
      TracePoint::kDownlinkLoss,   TracePoint::kDecision,
      TracePoint::kDirective,
      TracePoint::kLiveMaxStretch, TracePoint::kReadyQueueDepth,
      TracePoint::kEdgeUtilization, TracePoint::kCloudUtilization,
      TracePoint::kReject,         TracePoint::kShed,
  };
  for (TracePoint p : kAll) {
    if (to_string(p) == name) return p;
  }
  throw std::invalid_argument("unknown trace point: " + name);
}

TraceKind parse_trace_kind(const std::string& name) {
  for (TraceKind k :
       {TraceKind::kSpan, TraceKind::kInstant, TraceKind::kCounter}) {
    if (to_string(k) == name) return k;
  }
  throw std::invalid_argument("unknown trace record kind: " + name);
}

}  // namespace ecs::obs
