// json.hpp - Minimal JSON support for the observability layer.
//
// The exporters hand-write their JSON (the formats are small and fixed),
// but reading traces back — the JSONL reader, tools/trace_inspect and the
// test suite's validity checks — needs a real parser. This is a tiny
// recursive-descent implementation covering the full JSON grammar; it
// favors clarity over speed, which is fine for offline trace analysis.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecs::obs::json {

/// A parsed JSON value. Object member order is preserved.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }

  /// First member with the given key; nullptr when absent (or not an
  /// object).
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Member lookup that throws std::out_of_range when the key is absent.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
};

/// Parses one JSON document. Throws std::runtime_error (with a byte
/// offset) on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string for embedding between JSON quotes (does not add the
/// quotes themselves).
[[nodiscard]] std::string escape(const std::string& raw);

/// How `number` renders values JSON cannot express as numbers (NaN, ±inf).
enum class NonFinitePolicy {
  /// Lossless: NaN -> null, ±inf -> the strings "Infinity" / "-Infinity".
  /// Pair with to_double() on the read side for an exact round trip. The
  /// default for our own formats (JSONL traces, metrics dumps).
  kStrings,
  /// NaN -> null, ±inf clamped to ±1e308. For sinks whose consumers insist
  /// on plain numbers (e.g. Chrome trace_event timestamps): the value is
  /// visibly saturated instead of silently wrapped, and NaN still surfaces
  /// as null rather than masquerading as 0.
  kClamp,
};

/// Formats a double as a JSON value: numbers at round-trip precision;
/// non-finite values per `policy` (never the silent 0 / ±1e308 mangling of
/// earlier versions).
[[nodiscard]] std::string number(double value,
                                 NonFinitePolicy policy =
                                     NonFinitePolicy::kStrings);

/// Reads a double written by number(): plain numbers pass through, null
/// -> NaN, "Infinity"/"-Infinity" -> ±inf. Throws std::runtime_error on
/// any other type or string.
[[nodiscard]] double to_double(const Value& value);

}  // namespace ecs::obs::json
