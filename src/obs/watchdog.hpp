// watchdog.hpp - Online invariant watchdog over the trace stream.
//
// core/validate.hpp checks a finished Schedule; the watchdog checks the
// SAME structural invariants *while the run executes*, flagging the
// violation at the offending event instead of at the end of the run. It is
// a TraceSink: attach it through EngineConfig::watchdog (sim/engine.hpp)
// and the engine tees its trace stream into it — the same nullable-observer
// pattern as trace/metrics, so a run without a watchdog is bit-identical
// and pays nothing.
//
// The stream arrives in non-decreasing close time (spans are emitted when
// they end, instants at their time). That ordering makes every check O(1)
// amortized per record: two spans on one resource overlap iff the later-
// closing one begins before the farthest end seen so far on that resource,
// so one {end, job} tail per port/processor suffices; precedence and
// migration need only a small per-(job, run) summary.
//
// Checked invariants:
//  * one-port full-duplex  - per edge, uplinks (send port) pairwise
//    disjoint and downlinks (receive port) pairwise disjoint; per cloud,
//    the mirrored receive/send ports (kPortConflict);
//  * processor exclusivity - executions on one edge or cloud processor
//    pairwise disjoint (kProcessorConflict);
//  * self-overlap          - one job never does two things at once
//    (kSelfOverlap);
//  * precedence            - per (job, run): uplink before execution
//    before downlink (kPrecedence);
//  * no migration          - one run never spans two allocations; moving
//    requires a new run from zero progress (kMigration);
//  * release               - no activity before the job's release
//    (kBeforeRelease);
//  * admission             - a job the engine rejected or shed, or that
//    already completed, records no further activity (kRejectedActivity).
//
// Each violation links the recent decision-provenance records of the jobs
// involved (obs/provenance.hpp), so the report answers not just "what
// broke" but "which decisions put those jobs there".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace ecs::obs {

enum class InvariantKind : std::uint8_t {
  kPortConflict,       ///< one-port model violated (send or receive port)
  kProcessorConflict,  ///< two executions overlap on one processor
  kSelfOverlap,        ///< one job doing two things at once
  kPrecedence,         ///< uplink/exec/downlink order violated in a run
  kMigration,          ///< one run observed on two allocations
  kBeforeRelease,      ///< activity before the job's release
  /// Activity recorded for a job that admission control rejected or shed,
  /// or that had already completed — such a job must have no further spans.
  kRejectedActivity,
};

[[nodiscard]] std::string to_string(InvariantKind kind);

/// One detected violation: the record whose arrival exposed it, the other
/// job involved (resource conflicts; -1 otherwise), and the recent
/// provenance of the jobs involved (offending job's records first).
struct InvariantViolation {
  InvariantKind kind = InvariantKind::kPrecedence;
  TraceRecord offending;
  JobId other_job = -1;
  std::string detail;
  std::vector<ProvenanceRecord> provenance;
};

class InvariantWatchdog final : public TraceSink {
 public:
  /// `provenance_depth`: how many recent provenance records to retain per
  /// job for linking into violations (0 disables linking).
  explicit InvariantWatchdog(int provenance_depth = 4);

  void begin_trace(const TraceMeta& meta) override;
  void record(const TraceRecord& rec) override;
  void end_trace(Time makespan) override;

  [[nodiscard]] bool ok() const noexcept { return total_violations_ == 0; }
  /// Total violations detected (may exceed violations().size(): storage is
  /// capped so a structurally broken run cannot exhaust memory).
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<InvariantViolation>& violations()
      const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t records_seen() const noexcept {
    return records_seen_;
  }
  [[nodiscard]] std::uint64_t spans_checked() const noexcept {
    return spans_checked_;
  }

  /// Human-readable report: verdict, then each stored violation with its
  /// linked provenance.
  void report(std::ostream& out) const;

 private:
  /// Farthest span end seen on one exclusive resource, and who holds it.
  struct Tail {
    Time end = -kTimeInfinity;
    JobId job = -1;
  };
  /// Precedence/migration summary of the job's current (latest) run.
  struct RunState {
    int run = -1;                  ///< -1: no span seen yet
    int alloc = kAllocUnassigned;  ///< allocation of the run's first span
    Time up_max_end = -kTimeInfinity;
    Time exec_min_begin = kTimeInfinity;
    Time exec_max_end = -kTimeInfinity;
    Time down_min_begin = kTimeInfinity;
  };
  /// Per-job facts that outlive runs.
  struct JobState {
    Time release = -kTimeInfinity;  ///< -inf until the kRelease instant
    Time busy_until = -kTimeInfinity;  ///< farthest end of any span
    bool refused = false;  ///< rejected or shed by admission control
    bool gone = false;     ///< completed or refused: window-compactable
    RunState run;
  };

  /// Index of `job` in the windowed per-job arrays, growing them forward as
  /// needed; -1 when the job already retired past the window base.
  [[nodiscard]] std::int64_t job_index(JobId job);
  /// Read-only variant: -1 when outside the window (never grows storage).
  [[nodiscard]] std::int64_t job_lookup(JobId job) const;
  /// Marks the job's entry compactable and slides the window base past the
  /// gone prefix (streaming runs retire jobs in roughly id order, keeping
  /// the watchdog's per-job memory O(live) like the engine's).
  void retire_job(std::int64_t idx);
  [[nodiscard]] Tail& tail(std::vector<Tail>& tails, int index);
  void check_span(const TraceRecord& rec);
  void check_resource(std::vector<Tail>& tails, int index,
                      const TraceRecord& rec, InvariantKind kind,
                      const char* resource_name);
  void flag(InvariantKind kind, const TraceRecord& rec, JobId other_job,
            std::string detail);
  void remember_provenance(const ProvenanceRecord& rec);
  void append_ring(JobId job, std::vector<ProvenanceRecord>& out) const;

  int depth_;
  std::vector<Tail> edge_cpu_, edge_send_, edge_recv_;
  std::vector<Tail> cloud_cpu_, cloud_send_, cloud_recv_;
  /// Windowed per-job arrays: entry `i` (i >= job_start_) describes job id
  /// job_base_ + (i - job_start_). Entries of completed / refused jobs are
  /// compacted away once they form the window prefix.
  std::vector<JobState> jobs_;
  /// Per-job ring of the last `depth_` provenance records, chronological
  /// order reconstructed via `ring_next_` (the slot to overwrite next).
  std::vector<std::vector<ProvenanceRecord>> rings_;
  std::vector<std::uint32_t> ring_next_;
  JobId job_base_ = 0;        ///< id of the first window entry
  std::size_t job_start_ = 0; ///< index of the first window entry in jobs_
  std::vector<InvariantViolation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t records_seen_ = 0;
  std::uint64_t spans_checked_ = 0;
  TraceMeta meta_;
};

}  // namespace ecs::obs
