// kang_instances.hpp - The paper's "Kang instances" (section VI-A), modeled
// on the measurements of Kang et al. [24] for deep-learning inference
// offloading from mobile devices.
//
// Each edge processor has a compute type (GPU or CPU) and a communication
// channel (Wi-Fi, LTE, or 3G):
//   * job execution time (work at cloud speed): normal, mean 6,
//     relative standard deviation 1/4;
//   * uplink time: normal with mean 95 (Wi-Fi), 180 (LTE) or 870 (3G),
//     relative standard deviation 1/4;
//   * downlink time: 0 (the paper: the place of delivery is irrelevant for
//     this workload);
//   * edge speed: 6/11 for GPU devices, 6/37 for CPU devices.
//
// The paper does not state how device types are distributed over the edge
// processors; we cycle deterministically through the six (compute, channel)
// combinations by default, which keeps every scenario's device mix balanced
// across replications, and offer a uniformly random assignment as an
// option.
#pragma once

#include <string>
#include <vector>

#include "core/platform.hpp"
#include "util/rng.hpp"

namespace ecs {

enum class ComputeType { kGpu, kCpu };
enum class ChannelType { kWifi, kLte, k3g };

[[nodiscard]] std::string to_string(ComputeType type);
[[nodiscard]] std::string to_string(ChannelType type);

struct KangEdgeProfile {
  ComputeType compute = ComputeType::kGpu;
  ChannelType channel = ChannelType::kWifi;
};

struct KangInstanceConfig {
  int n = 1000;          ///< number of jobs
  int edge_count = 20;   ///< paper: 20 or 100
  int cloud_count = 10;  ///< paper: 10
  double load = 0.05;

  double exec_mean = 6.0;
  double rel_stddev = 0.25;  ///< relative sigma of every normal draw
  double wifi_up_mean = 95.0;
  double lte_up_mean = 180.0;
  double threeg_up_mean = 870.0;
  double gpu_speed = 6.0 / 11.0;
  double cpu_speed = 6.0 / 37.0;

  /// false: cycle deterministically through the 6 device combinations;
  /// true: draw each edge's profile uniformly at random.
  bool randomize_profiles = false;
};

/// Mean uplink time of a channel under `cfg`.
[[nodiscard]] double channel_up_mean(const KangInstanceConfig& cfg,
                                     ChannelType channel);

/// Edge speed of a compute type under `cfg`.
[[nodiscard]] double compute_speed(const KangInstanceConfig& cfg,
                                   ComputeType compute);

/// Device profiles for the platform's edge processors.
[[nodiscard]] std::vector<KangEdgeProfile> make_kang_profiles(
    const KangInstanceConfig& cfg, Rng& rng);

/// Draws a full instance (platform + jobs); deterministic given Rng state.
[[nodiscard]] Instance make_kang_instance(const KangInstanceConfig& cfg,
                                          Rng& rng);

}  // namespace ecs
