#include "workloads/random_instances.hpp"

#include <stdexcept>

#include "workloads/load.hpp"

namespace ecs {

Platform make_random_platform(const RandomInstanceConfig& cfg) {
  std::vector<double> speeds;
  speeds.reserve(cfg.slow_edges + cfg.fast_edges);
  for (int i = 0; i < cfg.slow_edges; ++i) speeds.push_back(cfg.slow_speed);
  for (int i = 0; i < cfg.fast_edges; ++i) speeds.push_back(cfg.fast_speed);
  return Platform(std::move(speeds), cfg.cloud_count);
}

Instance make_random_instance(const RandomInstanceConfig& cfg, Rng& rng) {
  if (cfg.n < 1) {
    throw std::invalid_argument("make_random_instance: n must be >= 1");
  }
  if (!(cfg.work_min > 0.0) || cfg.work_max < cfg.work_min) {
    throw std::invalid_argument(
        "make_random_instance: need 0 < work_min <= work_max");
  }
  if (!(cfg.ccr > 0.0)) {
    throw std::invalid_argument("make_random_instance: ccr must be positive");
  }

  Instance instance;
  instance.platform = make_random_platform(cfg);
  const int edge_count = instance.platform.edge_count();
  if (edge_count == 0) {
    throw std::invalid_argument(
        "make_random_instance: platform needs at least one edge processor");
  }

  instance.jobs.reserve(cfg.n);
  for (int i = 0; i < cfg.n; ++i) {
    Job job;
    job.id = i;
    job.origin = static_cast<EdgeId>(rng.uniform_int(0, edge_count - 1));
    job.work = rng.uniform(cfg.work_min, cfg.work_max);
    job.up = rng.uniform(cfg.ccr * cfg.work_min, cfg.ccr * cfg.work_max);
    job.down = rng.uniform(cfg.ccr * cfg.work_min, cfg.ccr * cfg.work_max);
    instance.jobs.push_back(job);
  }
  assign_release_dates_for_load(instance, cfg.load, rng,
                                cfg.release_process);
  return instance;
}

}  // namespace ecs
