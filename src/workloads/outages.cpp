#include "workloads/outages.hpp"

#include <stdexcept>

namespace ecs {

std::vector<IntervalSet> make_cloud_outages(int cloud_count,
                                            const OutageConfig& config,
                                            Rng& rng) {
  if (config.fraction < 0.0 || config.fraction >= 1.0) {
    throw std::invalid_argument(
        "make_cloud_outages: fraction must lie in [0, 1)");
  }
  if (!(config.mean_duration > 0.0) || !(config.horizon > 0.0)) {
    throw std::invalid_argument(
        "make_cloud_outages: durations must be positive");
  }
  std::vector<IntervalSet> outages(cloud_count);
  if (config.fraction == 0.0) return outages;

  // Available gaps between outages have mean d * (1 - f) / f, which makes
  // the long-run unavailable fraction equal to f.
  const double mean_gap =
      config.mean_duration * (1.0 - config.fraction) / config.fraction;
  for (int k = 0; k < cloud_count; ++k) {
    // Start each cloud at a random phase so outages are not synchronized.
    double t = rng.uniform(0.0, 2.0 * mean_gap);
    while (t < config.horizon) {
      const double duration =
          rng.uniform(0.5 * config.mean_duration, 1.5 * config.mean_duration);
      outages[k].add(t, t + duration);
      t += duration;
      t += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap);
    }
  }
  return outages;
}

}  // namespace ecs
