#include "workloads/trace_io.hpp"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ecs {
namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + ": '" + s + "'");
  }
}

int parse_int(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + ": '" + s + "'");
  }
}

/// Rethrows a record-level parse error with "line N:" context so a corrupt
/// file points at the offending line, not just the field value.
[[noreturn]] void fail_at(std::int64_t line_no, const std::string& what) {
  throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                           ": " + what);
}

/// A stream that stopped for any reason other than clean EOF lost data —
/// e.g. an I/O error on a truncated or corrupt file. Reading must be loud
/// about it: silently treating it as end-of-input would drop records.
void require_clean_eof(const std::istream& in, std::int64_t line_no) {
  if (in.bad()) {
    throw std::runtime_error(
        "trace_io: read error after line " + std::to_string(line_no) +
        " (truncated or corrupt input)");
  }
}

}  // namespace

void save_instance(std::ostream& out, const Instance& instance) {
  out << "# edgecloud-stretch instance v1\n";
  out << std::setprecision(17);
  out << "edges";
  for (double s : instance.platform.edge_speeds()) out << "," << s;
  out << "\n";
  if (instance.platform.homogeneous_cloud()) {
    out << "clouds," << instance.platform.cloud_count() << "\n";
  } else {
    out << "cloud_speeds";
    for (double s : instance.platform.cloud_speeds()) out << "," << s;
    out << "\n";
  }
  for (std::size_t k = 0; k < instance.cloud_outages.size(); ++k) {
    for (const Interval& iv : instance.cloud_outages[k].intervals()) {
      out << "outage," << k << "," << iv.begin << "," << iv.end << "\n";
    }
  }
  for (const Job& job : instance.jobs) {
    out << "job," << job.id << "," << job.origin << "," << job.work << ","
        << job.release << "," << job.up << "," << job.down << "\n";
  }
}

void save_instance_file(const std::string& path, const Instance& instance) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace_io: cannot open for writing: " + path);
  }
  save_instance(out, instance);
}

namespace {

/// Shared parser: when `plan` is non-null, `fault,` records are collected
/// into it; otherwise they are rejected like any unknown record.
Instance load_instance_impl(std::istream& in, FaultPlan* plan) {
  Instance instance;
  std::vector<double> edge_speeds;
  std::vector<double> cloud_speeds;
  int clouds = 0;
  bool heterogeneous = false;
  bool saw_edges = false;
  bool saw_clouds = false;

  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split_csv(line);
    if (fields.empty()) continue;
    try {
    if (fields[0] == "edges") {
      edge_speeds.clear();
      for (std::size_t i = 1; i < fields.size(); ++i) {
        edge_speeds.push_back(parse_double(fields[i], "edge speed"));
      }
      saw_edges = true;
    } else if (fields[0] == "clouds") {
      if (fields.size() != 2) {
        throw std::runtime_error("malformed clouds line");
      }
      clouds = parse_int(fields[1], "cloud count");
      heterogeneous = false;
      saw_clouds = true;
    } else if (fields[0] == "cloud_speeds") {
      cloud_speeds.clear();
      for (std::size_t i = 1; i < fields.size(); ++i) {
        cloud_speeds.push_back(parse_double(fields[i], "cloud speed"));
      }
      heterogeneous = true;
      saw_clouds = true;
    } else if (fields[0] == "outage") {
      if (fields.size() != 4) {
        throw std::runtime_error("malformed outage line: " + line);
      }
      const int k = parse_int(fields[1], "outage cloud index");
      if (k < 0) {
        throw std::runtime_error("negative outage cloud index");
      }
      if (static_cast<std::size_t>(k) >= instance.cloud_outages.size()) {
        instance.cloud_outages.resize(k + 1);
      }
      instance.cloud_outages[k].add(parse_double(fields[2], "outage begin"),
                                    parse_double(fields[3], "outage end"));
    } else if (fields[0] == "fault" && plan != nullptr) {
      if (fields.size() != 5) {
        throw std::runtime_error("malformed fault line: " + line);
      }
      FaultSpec spec;
      try {
        spec.kind = parse_fault_kind(fields[1]);
      } catch (const std::invalid_argument&) {
        throw std::runtime_error("bad fault kind: '" + fields[1] + "'");
      }
      spec.cloud = parse_int(fields[2], "fault cloud index");
      spec.begin = parse_double(fields[3], "fault begin");
      spec.end = parse_double(fields[4], "fault end");
      plan->faults.push_back(spec);
    } else if (fields[0] == "job") {
      if (fields.size() != 7) {
        throw std::runtime_error("malformed job line: " + line);
      }
      Job job;
      job.id = parse_int(fields[1], "job id");
      job.origin = parse_int(fields[2], "origin");
      job.work = parse_double(fields[3], "work");
      job.release = parse_double(fields[4], "release");
      job.up = parse_double(fields[5], "up");
      job.down = parse_double(fields[6], "down");
      instance.jobs.push_back(job);
    } else {
      throw std::runtime_error("unknown record '" + fields[0] + "'");
    }
    } catch (const std::runtime_error& e) {
      fail_at(line_no, e.what());
    }
  }
  require_clean_eof(in, line_no);
  if (!saw_edges || !saw_clouds) {
    throw std::runtime_error(
        "trace_io: missing 'edges' or 'clouds' header line");
  }
  instance.platform = heterogeneous
                          ? Platform(std::move(edge_speeds),
                                     std::move(cloud_speeds))
                          : Platform(std::move(edge_speeds), clouds);
  if (!instance.cloud_outages.empty()) {
    if (static_cast<int>(instance.cloud_outages.size()) >
        instance.platform.cloud_count()) {
      throw std::runtime_error(
          "trace_io: outage references a nonexistent cloud processor");
    }
    instance.cloud_outages.resize(instance.platform.cloud_count());
  }
  require_valid_instance(instance);
  if (plan != nullptr) {
    plan->normalize();
    const auto problems = validate_fault_plan(*plan, instance.platform);
    if (!problems.empty()) {
      throw std::runtime_error("trace_io: invalid fault plan: " +
                               problems.front());
    }
  }
  return instance;
}

}  // namespace

Instance load_instance(std::istream& in) {
  return load_instance_impl(in, nullptr);
}

Instance load_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace_io: cannot open for reading: " + path);
  }
  return load_instance(in);
}

void save_fault_plan(std::ostream& out, const FaultPlan& plan) {
  out << std::setprecision(17);
  for (const FaultSpec& f : plan.faults) {
    out << "fault," << to_string(f.kind) << "," << f.cloud << "," << f.begin
        << "," << f.end << "\n";
  }
}

FaultPlan load_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split_csv(line);
    if (fields.empty()) continue;
    try {
      if (fields[0] != "fault" || fields.size() != 5) {
        throw std::runtime_error("expected a fault record, got: " + line);
      }
      FaultSpec spec;
      try {
        spec.kind = parse_fault_kind(fields[1]);
      } catch (const std::invalid_argument&) {
        throw std::runtime_error("bad fault kind: '" + fields[1] + "'");
      }
      spec.cloud = parse_int(fields[2], "fault cloud index");
      spec.begin = parse_double(fields[3], "fault begin");
      spec.end = parse_double(fields[4], "fault end");
      plan.faults.push_back(spec);
    } catch (const std::runtime_error& e) {
      fail_at(line_no, e.what());
    }
  }
  require_clean_eof(in, line_no);
  plan.normalize();
  return plan;
}

void save_faulty_instance(std::ostream& out, const Instance& instance,
                          const FaultPlan& plan) {
  save_instance(out, instance);
  save_fault_plan(out, plan);
}

void save_faulty_instance_file(const std::string& path,
                               const Instance& instance,
                               const FaultPlan& plan) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace_io: cannot open for writing: " + path);
  }
  save_faulty_instance(out, instance, plan);
}

std::pair<Instance, FaultPlan> load_faulty_instance(std::istream& in) {
  FaultPlan plan;
  Instance instance = load_instance_impl(in, &plan);
  return {std::move(instance), std::move(plan)};
}

std::pair<Instance, FaultPlan> load_faulty_instance_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace_io: cannot open for reading: " + path);
  }
  return load_faulty_instance(in);
}

void save_metrics_csv(std::ostream& out, const Instance& instance,
                      const Schedule& schedule,
                      const ScheduleMetrics& metrics) {
  out << "job,alloc,completion,response,stretch\n";
  out << std::setprecision(17);
  for (const JobMetrics& jm : metrics.per_job) {
    const int alloc = schedule.job(jm.id).final_run.alloc;
    out << jm.id << ",";
    if (alloc == kAllocEdge) {
      out << "edge" << instance.jobs[jm.id].origin;
    } else {
      out << "cloud" << alloc;
    }
    out << "," << jm.completion << "," << jm.response << "," << jm.stretch
        << "\n";
  }
}

}  // namespace ecs
