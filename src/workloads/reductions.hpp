// reductions.hpp - Constructive NP-hardness gadgets (paper section IV).
//
// The paper's complexity proofs are constructive reductions; this module
// implements them as instance builders so the test suite can exercise the
// heuristics and the exact solvers on adversarial inputs whose optimum is
// known analytically:
//
//  * Theorem 1: 2-Partition-Eq -> MMSH with 2 machines. Given 2n integers
//    a_1..a_2n with sum 2S, build 2n jobs of work nS + a_i plus two jobs of
//    work (n+1)S. A balanced equal-cardinality partition exists iff the
//    max-stretch (n^2+n+2)/(n+1) is achievable.
//
//  * Theorem 2: 3-Partition -> MMSH with n machines. Given 3n integers
//    summing to nB with B/4 < a_i < B/2, build 3n jobs of work a_i plus n
//    jobs of work B/2. A 3-partition exists iff max-stretch 3 is
//    achievable.
//
//  * Theorem 3: MMSH with p machines embeds into MinMaxStretch-EdgeCloud
//    with one unit-speed edge processor, p-1 cloud processors and zero
//    communication costs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.hpp"

namespace ecs {

struct MmshGadget {
  std::vector<double> works;
  int machines = 0;
  double target_stretch = 0.0;  ///< achievable iff the source instance is YES
};

/// Theorem 1 gadget. `a` must have even size 2n >= 2 and positive entries.
[[nodiscard]] MmshGadget mmsh_from_two_partition_eq(
    const std::vector<std::int64_t>& a);

/// Theorem 2 gadget. `a` must have size 3n, entries summing to n*B with
/// B/4 < a_i < B/2 (throws std::invalid_argument otherwise).
[[nodiscard]] MmshGadget mmsh_from_three_partition(
    const std::vector<std::int64_t>& a);

/// Theorem 3 embedding: an MMSH instance as a MinMaxStretch-EdgeCloud
/// instance (one edge at speed 1, machines-1 cloud processors, zero
/// communications, all release dates zero).
[[nodiscard]] Instance edge_cloud_from_mmsh(const std::vector<double>& works,
                                            int machines);

/// Checks whether a set of 2n integers admits an equal-cardinality,
/// equal-sum bipartition (exhaustive; for test-sized inputs).
[[nodiscard]] bool has_two_partition_eq(const std::vector<std::int64_t>& a);

/// Checks whether 3n integers admit a partition into n triples of equal sum
/// (exhaustive; for test-sized inputs).
[[nodiscard]] bool has_three_partition(const std::vector<std::int64_t>& a);

}  // namespace ecs
