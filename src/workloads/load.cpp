#include "workloads/load.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace ecs {

double release_horizon(double total_work, double total_speed, double load) {
  if (!(load > 0.0)) {
    throw std::invalid_argument("release_horizon: load must be positive");
  }
  if (!(total_speed > 0.0)) {
    throw std::invalid_argument(
        "release_horizon: total speed must be positive");
  }
  return total_work / (load * total_speed);
}

void assign_release_dates(std::vector<Job>& jobs, double horizon, Rng& rng) {
  for (Job& job : jobs) {
    job.release = rng.uniform(0.0, horizon);
  }
}

void assign_release_dates(std::vector<Job>& jobs, double horizon,
                          ReleaseProcess process, Rng& rng) {
  if (jobs.empty()) return;
  switch (process) {
    case ReleaseProcess::kUniform:
      assign_release_dates(jobs, horizon, rng);
      return;
    case ReleaseProcess::kPoisson: {
      // Exponential gaps with mean horizon / n keep the average rate of
      // the uniform process.
      const double mean_gap = horizon / static_cast<double>(jobs.size());
      std::exponential_distribution<double> gap(1.0 / mean_gap);
      double t = 0.0;
      for (Job& job : jobs) {
        t += gap(rng.engine());
        job.release = t;
      }
      return;
    }
    case ReleaseProcess::kBursty: {
      // Clusters of ~8 jobs released within one time unit, separated by
      // gaps sized to preserve the overall mean rate.
      constexpr int kBurstSize = 8;
      const double bursts =
          std::max(1.0, static_cast<double>(jobs.size()) / kBurstSize);
      const double mean_gap = horizon / bursts;
      double t = 0.0;
      std::size_t i = 0;
      while (i < jobs.size()) {
        t += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap);
        const std::size_t burst_end =
            std::min(jobs.size(), i + kBurstSize);
        for (; i < burst_end; ++i) {
          jobs[i].release = t + rng.uniform(0.0, 1.0);
        }
      }
      return;
    }
  }
}

void assign_release_dates_for_load(Instance& instance, double load, Rng& rng,
                                   ReleaseProcess process) {
  double total_work = 0.0;
  for (const Job& job : instance.jobs) total_work += job.work;
  const double horizon =
      release_horizon(total_work, instance.platform.total_speed(), load);
  assign_release_dates(instance.jobs, horizon, process, rng);
}

}  // namespace ecs
