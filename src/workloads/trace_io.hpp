// trace_io.hpp - CSV (de)serialization of instances and results.
//
// Format (version 1):
//
//   # edgecloud-stretch instance v1
//   edges,<s_0>,<s_1>,...
//   clouds,<P^c>                      (homogeneous cloud, speed 1)
//   cloud_speeds,<c_0>,<c_1>,...      (heterogeneous-cloud extension)
//   job,<id>,<origin>,<work>,<release>,<up>,<down>
//   ...
//
// The format is line-oriented, comment lines start with '#'. Instances
// round-trip exactly (values are printed with 17 significant digits).
#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.hpp"
#include "core/platform.hpp"

namespace ecs {

void save_instance(std::ostream& out, const Instance& instance);
void save_instance_file(const std::string& path, const Instance& instance);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] Instance load_instance(std::istream& in);
[[nodiscard]] Instance load_instance_file(const std::string& path);

/// Writes per-job results: id, alloc, completion, response, stretch.
void save_metrics_csv(std::ostream& out, const Instance& instance,
                      const Schedule& schedule,
                      const ScheduleMetrics& metrics);

}  // namespace ecs
