// trace_io.hpp - CSV (de)serialization of instances and results.
//
// Format (version 1):
//
//   # edgecloud-stretch instance v1
//   edges,<s_0>,<s_1>,...
//   clouds,<P^c>                      (homogeneous cloud, speed 1)
//   cloud_speeds,<c_0>,<c_1>,...      (heterogeneous-cloud extension)
//   outage,<cloud>,<begin>,<end>      (announced availability windows)
//   fault,<kind>,<cloud>,<begin>,<end>  (unannounced fault plan; kind is
//                                     crash | uplink-loss | downlink-loss)
//   job,<id>,<origin>,<work>,<release>,<up>,<down>
//   ...
//
// The format is line-oriented, comment lines start with '#'. Instances and
// fault plans round-trip exactly (values are printed with 17 significant
// digits), so a faulty run is replayable byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "sim/faults.hpp"

namespace ecs {

void save_instance(std::ostream& out, const Instance& instance);
void save_instance_file(const std::string& path, const Instance& instance);

/// Throws std::runtime_error on malformed input — including on `fault,`
/// records (use load_faulty_instance for those files).
[[nodiscard]] Instance load_instance(std::istream& in);
[[nodiscard]] Instance load_instance_file(const std::string& path);

/// Writes the fault plan as `fault,<kind>,<cloud>,<begin>,<end>` lines.
void save_fault_plan(std::ostream& out, const FaultPlan& plan);

/// Parses `fault,` lines (comments and blank lines skipped); any other
/// record kind is an error. The returned plan is normalized.
[[nodiscard]] FaultPlan load_fault_plan(std::istream& in);

/// Instance plus its unannounced fault plan in one stream — the full
/// replayable description of a faulty run.
void save_faulty_instance(std::ostream& out, const Instance& instance,
                          const FaultPlan& plan);
void save_faulty_instance_file(const std::string& path,
                               const Instance& instance,
                               const FaultPlan& plan);

[[nodiscard]] std::pair<Instance, FaultPlan> load_faulty_instance(
    std::istream& in);
[[nodiscard]] std::pair<Instance, FaultPlan> load_faulty_instance_file(
    const std::string& path);

/// Writes per-job results: id, alloc, completion, response, stretch.
void save_metrics_csv(std::ostream& out, const Instance& instance,
                      const Schedule& schedule,
                      const ScheduleMetrics& metrics);

}  // namespace ecs
