// outages.hpp - Cloud availability-window generation (the paper's
// future-work scenario: "cloud processors may be dynamically requested by
// other applications at certain time intervals").
//
// Each cloud processor independently alternates between available periods
// and outages. Durations are uniform around their means, and the means are
// chosen so that the expected unavailable fraction of the horizon equals
// `fraction`.
#pragma once

#include <vector>

#include "core/interval.hpp"
#include "util/rng.hpp"

namespace ecs {

struct OutageConfig {
  double fraction = 0.2;       ///< expected unavailable fraction in [0, 1)
  double mean_duration = 50.0; ///< expected length of one outage
  double horizon = 1000.0;     ///< time span to cover with the pattern
};

/// One IntervalSet of outages per cloud processor. Deterministic given the
/// Rng state. fraction == 0 yields empty sets.
[[nodiscard]] std::vector<IntervalSet> make_cloud_outages(
    int cloud_count, const OutageConfig& config, Rng& rng);

}  // namespace ecs
