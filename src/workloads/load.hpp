// load.hpp - Release-date control for a target system load (paper
// section VI-A).
//
// The paper draws release dates uniformly in [0, H] where the horizon H is
//
//     H = (sum of works) / (load * aggregate speed)
//
// so that `load` approximates the average number of jobs simultaneously in
// the system per unit of aggregate capacity: load 0.05 leaves the platform
// mostly idle between arrivals, load 2 oversubscribes it by 2x.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/platform.hpp"
#include "util/rng.hpp"

namespace ecs {

/// The paper's horizon formula. Requires positive load and total_speed.
[[nodiscard]] double release_horizon(double total_work, double total_speed,
                                     double load);

/// Release-date processes. The paper draws releases uniformly over the
/// horizon; the alternatives keep the same mean arrival rate and are used
/// by the arrival-model robustness ablation:
///  * kPoisson — exponential inter-arrival times (memoryless traffic);
///  * kBursty — arrivals in clusters: bursts of several jobs released
///    nearly together, separated by long gaps.
enum class ReleaseProcess { kUniform, kPoisson, kBursty };

/// Draws a uniform release date in [0, horizon] for every job.
void assign_release_dates(std::vector<Job>& jobs, double horizon, Rng& rng);

/// Draws release dates from the given process with mean rate
/// n / horizon. Job order is preserved (ids keep matching positions);
/// the dates themselves are sorted in time for the sequential processes.
void assign_release_dates(std::vector<Job>& jobs, double horizon,
                          ReleaseProcess process, Rng& rng);

/// Convenience: computes the horizon from the instance's own jobs and
/// platform, then assigns the release dates.
void assign_release_dates_for_load(
    Instance& instance, double load, Rng& rng,
    ReleaseProcess process = ReleaseProcess::kUniform);

}  // namespace ecs
