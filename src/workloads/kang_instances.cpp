#include "workloads/kang_instances.hpp"

#include <stdexcept>

#include "workloads/load.hpp"

namespace ecs {

std::string to_string(ComputeType type) {
  return type == ComputeType::kGpu ? "GPU" : "CPU";
}

std::string to_string(ChannelType type) {
  switch (type) {
    case ChannelType::kWifi:
      return "Wi-Fi";
    case ChannelType::kLte:
      return "LTE";
    case ChannelType::k3g:
      return "3G";
  }
  return "?";
}

double channel_up_mean(const KangInstanceConfig& cfg, ChannelType channel) {
  switch (channel) {
    case ChannelType::kWifi:
      return cfg.wifi_up_mean;
    case ChannelType::kLte:
      return cfg.lte_up_mean;
    case ChannelType::k3g:
      return cfg.threeg_up_mean;
  }
  return cfg.wifi_up_mean;
}

double compute_speed(const KangInstanceConfig& cfg, ComputeType compute) {
  return compute == ComputeType::kGpu ? cfg.gpu_speed : cfg.cpu_speed;
}

std::vector<KangEdgeProfile> make_kang_profiles(const KangInstanceConfig& cfg,
                                                Rng& rng) {
  static constexpr ComputeType kComputes[] = {ComputeType::kGpu,
                                              ComputeType::kCpu};
  static constexpr ChannelType kChannels[] = {ChannelType::kWifi,
                                              ChannelType::kLte,
                                              ChannelType::k3g};
  std::vector<KangEdgeProfile> profiles;
  profiles.reserve(cfg.edge_count);
  for (int j = 0; j < cfg.edge_count; ++j) {
    KangEdgeProfile profile;
    if (cfg.randomize_profiles) {
      profile.compute = kComputes[rng.uniform_int(0, 1)];
      profile.channel = kChannels[rng.uniform_int(0, 2)];
    } else {
      profile.compute = kComputes[(j / 3) % 2];
      profile.channel = kChannels[j % 3];
    }
    profiles.push_back(profile);
  }
  return profiles;
}

Instance make_kang_instance(const KangInstanceConfig& cfg, Rng& rng) {
  if (cfg.n < 1 || cfg.edge_count < 1) {
    throw std::invalid_argument(
        "make_kang_instance: need at least one job and one edge processor");
  }
  const std::vector<KangEdgeProfile> profiles = make_kang_profiles(cfg, rng);

  Instance instance;
  std::vector<double> speeds;
  speeds.reserve(cfg.edge_count);
  for (const KangEdgeProfile& p : profiles) {
    speeds.push_back(compute_speed(cfg, p.compute));
  }
  instance.platform = Platform(std::move(speeds), cfg.cloud_count);

  // Durations must stay positive; the truncation floor is far below the
  // means (mean/100), so the distribution shape is effectively untouched.
  const double exec_floor = cfg.exec_mean / 100.0;
  instance.jobs.reserve(cfg.n);
  for (int i = 0; i < cfg.n; ++i) {
    Job job;
    job.id = i;
    job.origin = static_cast<EdgeId>(rng.uniform_int(0, cfg.edge_count - 1));
    job.work = rng.truncated_normal(cfg.exec_mean,
                                    cfg.exec_mean * cfg.rel_stddev,
                                    exec_floor);
    const double up_mean = channel_up_mean(cfg, profiles[job.origin].channel);
    job.up = rng.truncated_normal(up_mean, up_mean * cfg.rel_stddev,
                                  up_mean / 100.0);
    job.down = 0.0;
    instance.jobs.push_back(job);
  }
  assign_release_dates_for_load(instance, cfg.load, rng);
  return instance;
}

}  // namespace ecs
