#include "workloads/reductions.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ecs {
namespace {

std::int64_t sum_of(const std::vector<std::int64_t>& a) {
  return std::accumulate(a.begin(), a.end(), std::int64_t{0});
}

}  // namespace

MmshGadget mmsh_from_two_partition_eq(const std::vector<std::int64_t>& a) {
  if (a.empty() || a.size() % 2 != 0) {
    throw std::invalid_argument(
        "mmsh_from_two_partition_eq: need a nonempty even-sized multiset");
  }
  for (std::int64_t v : a) {
    if (v <= 0) {
      throw std::invalid_argument(
          "mmsh_from_two_partition_eq: entries must be positive");
    }
  }
  const std::int64_t total = sum_of(a);
  if (total % 2 != 0) {
    throw std::invalid_argument(
        "mmsh_from_two_partition_eq: sum must be even (2S)");
  }
  const auto n = static_cast<std::int64_t>(a.size() / 2);
  const std::int64_t S = total / 2;

  MmshGadget gadget;
  gadget.machines = 2;
  gadget.works.reserve(a.size() + 2);
  for (std::int64_t v : a) {
    gadget.works.push_back(static_cast<double>(n * S + v));
  }
  gadget.works.push_back(static_cast<double>((n + 1) * S));
  gadget.works.push_back(static_cast<double>((n + 1) * S));
  gadget.target_stretch =
      static_cast<double>(n * n + n + 2) / static_cast<double>(n + 1);
  return gadget;
}

MmshGadget mmsh_from_three_partition(const std::vector<std::int64_t>& a) {
  if (a.empty() || a.size() % 3 != 0) {
    throw std::invalid_argument(
        "mmsh_from_three_partition: need 3n entries");
  }
  const auto n = static_cast<std::int64_t>(a.size() / 3);
  const std::int64_t total = sum_of(a);
  if (total % n != 0) {
    throw std::invalid_argument(
        "mmsh_from_three_partition: sum must be divisible by n");
  }
  const std::int64_t B = total / n;
  if (B % 2 != 0) {
    throw std::invalid_argument(
        "mmsh_from_three_partition: B must be even so that B/2 is integral");
  }
  for (std::int64_t v : a) {
    if (!(4 * v > B && 4 * v < 2 * B)) {
      throw std::invalid_argument(
          "mmsh_from_three_partition: entries must satisfy B/4 < a_i < B/2");
    }
  }

  MmshGadget gadget;
  gadget.machines = static_cast<int>(n);
  gadget.works.reserve(a.size() + n);
  for (std::int64_t v : a) gadget.works.push_back(static_cast<double>(v));
  for (std::int64_t i = 0; i < n; ++i) {
    gadget.works.push_back(static_cast<double>(B) / 2.0);
  }
  gadget.target_stretch = 3.0;
  return gadget;
}

Instance edge_cloud_from_mmsh(const std::vector<double>& works,
                              int machines) {
  if (machines < 1) {
    throw std::invalid_argument("edge_cloud_from_mmsh: machines must be >= 1");
  }
  Instance instance;
  instance.platform = Platform({1.0}, machines - 1);
  instance.jobs.reserve(works.size());
  for (std::size_t i = 0; i < works.size(); ++i) {
    Job job;
    job.id = static_cast<JobId>(i);
    job.origin = 0;
    job.work = works[i];
    job.release = 0.0;
    job.up = 0.0;
    job.down = 0.0;
    instance.jobs.push_back(job);
  }
  return instance;
}

bool has_two_partition_eq(const std::vector<std::int64_t>& a) {
  const std::size_t m = a.size();
  if (m == 0 || m % 2 != 0 || m > 24) return false;
  const std::int64_t total = sum_of(a);
  if (total % 2 != 0) return false;
  const std::int64_t target = total / 2;
  const std::size_t half = m / 2;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) != half) {
      continue;
    }
    std::int64_t s = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ULL << i)) s += a[i];
    }
    if (s == target) return true;
  }
  return false;
}

namespace {

bool three_partition_search(std::vector<std::int64_t> remaining,
                            std::int64_t B) {
  if (remaining.empty()) return true;
  // Fix the largest element, try every pair completing it to B.
  std::sort(remaining.begin(), remaining.end());
  const std::int64_t x = remaining.back();
  remaining.pop_back();
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    for (std::size_t j = i + 1; j < remaining.size(); ++j) {
      if (x + remaining[i] + remaining[j] != B) continue;
      std::vector<std::int64_t> next;
      next.reserve(remaining.size() - 2);
      for (std::size_t k = 0; k < remaining.size(); ++k) {
        if (k != i && k != j) next.push_back(remaining[k]);
      }
      if (three_partition_search(std::move(next), B)) return true;
    }
  }
  return false;
}

}  // namespace

bool has_three_partition(const std::vector<std::int64_t>& a) {
  if (a.empty() || a.size() % 3 != 0) return false;
  const auto n = static_cast<std::int64_t>(a.size() / 3);
  const std::int64_t total = sum_of(a);
  if (total % n != 0) return false;
  return three_partition_search(a, total / n);
}

}  // namespace ecs
