#include "workloads/arrivals.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ecs {

std::string to_string(ArrivalFamily family) {
  switch (family) {
    case ArrivalFamily::kPoisson: return "poisson";
    case ArrivalFamily::kDiurnal: return "diurnal";
    case ArrivalFamily::kBursty: return "bursty";
    case ArrivalFamily::kPareto: return "pareto";
    case ArrivalFamily::kTrace: return "trace";
  }
  return "?";
}

ArrivalFamily parse_arrival_family(const std::string& name) {
  if (name == "poisson") return ArrivalFamily::kPoisson;
  if (name == "diurnal") return ArrivalFamily::kDiurnal;
  if (name == "bursty") return ArrivalFamily::kBursty;
  if (name == "pareto") return ArrivalFamily::kPareto;
  if (name == "trace") return ArrivalFamily::kTrace;
  throw std::invalid_argument("unknown arrival family: '" + name + "'");
}

namespace {

void require_common(const ArrivalConfig& c) {
  if (c.n < 0) {
    throw std::invalid_argument("arrivals: n must be >= 0");
  }
  if (!(c.rate > 0.0)) {
    throw std::invalid_argument("arrivals: rate must be positive");
  }
  if (c.shape.edge_count < 1) {
    throw std::invalid_argument("arrivals: need at least one edge origin");
  }
  if (!(c.shape.work_min > 0.0) || c.shape.work_max < c.shape.work_min) {
    throw std::invalid_argument(
        "arrivals: need 0 < work_min <= work_max");
  }
  if (!(c.shape.ccr > 0.0)) {
    throw std::invalid_argument("arrivals: ccr must be positive");
  }
}

}  // namespace

SyntheticArrivalStream::SyntheticArrivalStream(const ArrivalConfig& config,
                                               std::uint64_t tag)
    : rng_(derive_seed(config.seed, tag)),
      n_(config.n),
      shape_(config.shape) {
  require_common(config);
}

std::optional<Job> SyntheticArrivalStream::next() {
  if (emitted_ >= n_) return std::nullopt;
  // Draw order is part of the determinism contract: gap first (however
  // many raw draws the family needs), then origin, work, up, down —
  // mirroring make_random_instance's per-job shape order.
  clock_ += next_gap();
  Job job;
  job.id = static_cast<JobId>(emitted_++);
  job.origin =
      static_cast<EdgeId>(rng_.uniform_int(0, shape_.edge_count - 1));
  job.work = rng_.uniform(shape_.work_min, shape_.work_max);
  job.up = rng_.uniform(shape_.ccr * shape_.work_min,
                        shape_.ccr * shape_.work_max);
  job.down = rng_.uniform(shape_.ccr * shape_.work_min,
                          shape_.ccr * shape_.work_max);
  job.release = clock_;
  return job;
}

PoissonArrivalStream::PoissonArrivalStream(const ArrivalConfig& config)
    : SyntheticArrivalStream(config, hash_tag("arrivals.poisson")),
      mean_gap_(1.0 / config.rate) {}

double PoissonArrivalStream::next_gap() {
  return rng_.exponential(mean_gap_);
}

DiurnalArrivalStream::DiurnalArrivalStream(const ArrivalConfig& config)
    : SyntheticArrivalStream(config, hash_tag("arrivals.diurnal")),
      rate_(config.rate),
      amplitude_(config.diurnal_amplitude),
      period_(config.diurnal_period),
      peak_rate_(config.rate * (1.0 + config.diurnal_amplitude)) {
  if (!(amplitude_ >= 0.0) || amplitude_ >= 1.0) {
    throw std::invalid_argument(
        "arrivals: diurnal amplitude must be in [0, 1)");
  }
  if (!(period_ > 0.0)) {
    throw std::invalid_argument("arrivals: diurnal period must be positive");
  }
}

double DiurnalArrivalStream::next_gap() {
  // Ogata thinning: candidate arrivals at the peak rate, accepted with
  // probability lambda(t)/peak. Exact for any bounded intensity.
  const Time start = thin_clock_;
  while (true) {
    thin_clock_ += rng_.exponential(1.0 / peak_rate_);
    const double lambda =
        rate_ * (1.0 + amplitude_ * std::sin(2.0 * std::numbers::pi *
                                             thin_clock_ / period_));
    if (rng_.uniform(0.0, peak_rate_) <= lambda) {
      return thin_clock_ - start;
    }
  }
}

BurstyArrivalStream::BurstyArrivalStream(const ArrivalConfig& config)
    : SyntheticArrivalStream(config, hash_tag("arrivals.bursty")),
      calm_sojourn_mean_(config.calm_sojourn_mean),
      burst_sojourn_mean_(config.burst_sojourn_mean) {
  if (!(config.burst_factor > 1.0)) {
    throw std::invalid_argument("arrivals: burst_factor must be > 1");
  }
  if (!(calm_sojourn_mean_ > 0.0) || !(burst_sojourn_mean_ > 0.0)) {
    throw std::invalid_argument(
        "arrivals: MMPP sojourn means must be positive");
  }
  // Solve the calm rate so the stationary time-averaged rate equals the
  // requested one:  rate = (lc*Tc + f*lc*Tb) / (Tc + Tb).
  calm_rate_ = config.rate * (calm_sojourn_mean_ + burst_sojourn_mean_) /
               (calm_sojourn_mean_ + config.burst_factor * burst_sojourn_mean_);
  burst_rate_ = config.burst_factor * calm_rate_;
  sojourn_left_ = rng_.exponential(calm_sojourn_mean_);
}

double BurstyArrivalStream::next_gap() {
  // Competition between the next arrival (at the current phase's rate) and
  // the phase switch; memorylessness lets us redraw the arrival after each
  // switch without biasing the process.
  double gap = 0.0;
  while (true) {
    const double rate = bursting_ ? burst_rate_ : calm_rate_;
    const double to_arrival = rng_.exponential(1.0 / rate);
    if (to_arrival <= sojourn_left_) {
      sojourn_left_ -= to_arrival;
      return gap + to_arrival;
    }
    gap += sojourn_left_;
    bursting_ = !bursting_;
    sojourn_left_ = rng_.exponential(bursting_ ? burst_sojourn_mean_
                                               : calm_sojourn_mean_);
  }
}

ParetoArrivalStream::ParetoArrivalStream(const ArrivalConfig& config)
    : SyntheticArrivalStream(config, hash_tag("arrivals.pareto")),
      alpha_(config.pareto_alpha) {
  if (!(alpha_ > 1.0)) {
    throw std::invalid_argument(
        "arrivals: pareto_alpha must be > 1 (finite mean gap)");
  }
  // Pareto(alpha, scale) has mean alpha*scale/(alpha-1); pick scale so the
  // mean gap is 1/rate.
  scale_ = (alpha_ - 1.0) / (alpha_ * config.rate);
}

double ParetoArrivalStream::next_gap() {
  // Inverse transform; 1 - U keeps the argument in (0, 1].
  const double u = 1.0 - rng_.uniform(0.0, 1.0);
  return scale_ * std::pow(u, -1.0 / alpha_);
}

TraceArrivalStream::TraceArrivalStream(std::string path)
    : path_(std::move(path)), in_(path_) {
  if (!in_) {
    throw std::runtime_error("arrivals: cannot open trace: " + path_);
  }
}

void TraceArrivalStream::fail(const std::string& what) const {
  throw std::runtime_error(path_ + ":" + std::to_string(line_no_) + ": " +
                           what);
}

std::optional<Job> TraceArrivalStream::next() {
  if (done_) return std::nullopt;
  std::string line;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    {
      std::stringstream ss(line);
      std::string field;
      while (std::getline(ss, field, ',')) fields.push_back(field);
    }
    if (fields.empty()) continue;
    if (fields[0] != "job") {
      fail("expected a job record, got '" + fields[0] + "'");
    }
    if (fields.size() != 7) {
      fail("malformed job record (want 7 fields, got " +
           std::to_string(fields.size()) + "): " + line);
    }
    const auto num = [&](const std::string& s, const char* what) {
      try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::invalid_argument(s);
        return v;
      } catch (const std::exception&) {
        fail(std::string("bad ") + what + ": '" + s + "'");
      }
    };
    Job job;
    job.id = static_cast<JobId>(num(fields[1], "job id"));
    job.origin = static_cast<EdgeId>(num(fields[2], "origin"));
    job.work = num(fields[3], "work");
    job.release = num(fields[4], "release");
    job.up = num(fields[5], "up");
    job.down = num(fields[6], "down");
    if (job.id < 0) fail("negative job id");
    if (job.release < last_release_) {
      fail("release dates must be non-decreasing (got " +
           std::to_string(job.release) + " after " +
           std::to_string(last_release_) + ")");
    }
    last_release_ = job.release;
    return job;
  }
  if (in_.bad()) {
    ++line_no_;
    fail("read error mid-trace (truncated or unreadable file)");
  }
  done_ = true;
  return std::nullopt;
}

std::unique_ptr<ArrivalStream> make_arrival_stream(
    const ArrivalConfig& config) {
  switch (config.family) {
    case ArrivalFamily::kPoisson:
      return std::make_unique<PoissonArrivalStream>(config);
    case ArrivalFamily::kDiurnal:
      return std::make_unique<DiurnalArrivalStream>(config);
    case ArrivalFamily::kBursty:
      return std::make_unique<BurstyArrivalStream>(config);
    case ArrivalFamily::kPareto:
      return std::make_unique<ParetoArrivalStream>(config);
    case ArrivalFamily::kTrace:
      if (config.trace_path.empty()) {
        throw std::invalid_argument("arrivals: trace family needs a path");
      }
      return std::make_unique<TraceArrivalStream>(config.trace_path);
  }
  throw std::invalid_argument("arrivals: unknown family");
}

}  // namespace ecs
