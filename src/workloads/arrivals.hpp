// arrivals.hpp - Deterministic seeded arrival families for streaming runs.
//
// Implements the ArrivalStream interface (sim/arrivals.hpp) with the
// synthetic traffic families of the overload study plus a trace-file
// reader:
//
//  * Poisson      — exponential inter-arrival gaps at a fixed rate; the
//                   streaming twin of ReleaseProcess::kPoisson.
//  * Diurnal      — non-homogeneous Poisson process whose intensity
//                   follows a sinusoidal day/night cycle,
//                   lambda(t) = rate * (1 + A sin(2 pi t / period)),
//                   sampled exactly by thinning against rate * (1 + A).
//  * Bursty       — two-state Markov-modulated Poisson process (MMPP):
//                   calm and burst phases with exponential sojourns; the
//                   burst phase arrives `burst_factor` times faster, and
//                   the calm rate is solved so the *time-averaged* rate
//                   still equals `rate`.
//  * Pareto       — heavy-tailed renewal process: inter-arrival gaps are
//                   Pareto(alpha, scale) with scale chosen so the mean
//                   gap is 1/rate (requires alpha > 1; alpha close to 1
//                   produces enormous gap outliers between packed runs).
//  * Trace        — jobs read incrementally from a `job,` CSV file
//                   (trace_io's record shape) in release order; memory
//                   stays O(1) in the trace length.
//
// All synthetic families emit sequential ids 0, 1, 2, ... with
// non-decreasing releases and draw per-job shapes (origin, work, up, down)
// exactly like make_random_instance: origin uniform over the edges, work ~
// U(work_min, work_max), up/down ~ U(ccr*work_min, ccr*work_max). Streams
// are deterministic functions of their config (seed included).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "sim/arrivals.hpp"
#include "util/rng.hpp"

namespace ecs {

enum class ArrivalFamily { kPoisson, kDiurnal, kBursty, kPareto, kTrace };

[[nodiscard]] std::string to_string(ArrivalFamily family);
/// Parses "poisson" | "diurnal" | "bursty" | "pareto" | "trace"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] ArrivalFamily parse_arrival_family(const std::string& name);

/// Per-job shape distribution shared by the synthetic families (matches
/// RandomInstanceConfig's defaults and draw semantics).
struct ArrivalShape {
  int edge_count = 20;    ///< origins drawn uniformly over [0, edge_count)
  double work_min = 1.0;
  double work_max = 19.0;
  double ccr = 1.0;
};

/// One config drives every family; family-specific knobs are ignored by the
/// others. `rate` is the long-run mean arrival rate (jobs per unit time)
/// for every synthetic family — overload sweeps vary only this knob.
struct ArrivalConfig {
  ArrivalFamily family = ArrivalFamily::kPoisson;
  std::int64_t n = 4000;     ///< jobs to emit (synthetic families)
  double rate = 1.0;         ///< mean arrival rate; must be > 0
  std::uint64_t seed = 1;
  ArrivalShape shape;

  // Diurnal (NHPP): relative amplitude in [0, 1) and cycle period.
  double diurnal_amplitude = 0.8;
  double diurnal_period = 1000.0;

  // Bursty (MMPP): the burst phase arrives burst_factor (> 1) times faster
  // than calm; sojourn times are exponential with the given means.
  double burst_factor = 8.0;
  double burst_sojourn_mean = 50.0;
  double calm_sojourn_mean = 200.0;

  // Pareto: tail index; must be > 1 so the mean gap exists.
  double pareto_alpha = 1.5;

  // Trace: path of a `job,` CSV file in release order.
  std::string trace_path;
};

/// Base for the synthetic families: owns the Rng, the arrival clock, and
/// the shape draws; subclasses only supply the next inter-arrival gap.
class SyntheticArrivalStream : public ArrivalStream {
 public:
  [[nodiscard]] std::optional<Job> next() final;
  [[nodiscard]] std::int64_t remaining() const final { return n_ - emitted_; }

 protected:
  SyntheticArrivalStream(const ArrivalConfig& config, std::uint64_t tag);

  /// Next inter-arrival gap (>= 0); called exactly once per emitted job,
  /// before the shape draws, so the draw order is part of the contract.
  [[nodiscard]] virtual double next_gap() = 0;

  Rng rng_;

 private:
  std::int64_t n_;
  ArrivalShape shape_;
  std::int64_t emitted_ = 0;
  Time clock_ = 0.0;
};

class PoissonArrivalStream final : public SyntheticArrivalStream {
 public:
  explicit PoissonArrivalStream(const ArrivalConfig& config);
  [[nodiscard]] std::string name() const override { return "poisson"; }

 protected:
  [[nodiscard]] double next_gap() override;

 private:
  double mean_gap_;
};

class DiurnalArrivalStream final : public SyntheticArrivalStream {
 public:
  explicit DiurnalArrivalStream(const ArrivalConfig& config);
  [[nodiscard]] std::string name() const override { return "diurnal"; }

 protected:
  [[nodiscard]] double next_gap() override;

 private:
  double rate_;
  double amplitude_;
  double period_;
  double peak_rate_;   ///< thinning envelope: rate * (1 + amplitude)
  Time thin_clock_ = 0.0;  ///< candidate-arrival clock (pre-thinning)
};

class BurstyArrivalStream final : public SyntheticArrivalStream {
 public:
  explicit BurstyArrivalStream(const ArrivalConfig& config);
  [[nodiscard]] std::string name() const override { return "bursty"; }

 protected:
  [[nodiscard]] double next_gap() override;

 private:
  double calm_rate_;
  double burst_rate_;
  double calm_sojourn_mean_;
  double burst_sojourn_mean_;
  bool bursting_ = false;
  double sojourn_left_;  ///< time until the next phase switch
};

class ParetoArrivalStream final : public SyntheticArrivalStream {
 public:
  explicit ParetoArrivalStream(const ArrivalConfig& config);
  [[nodiscard]] std::string name() const override { return "pareto"; }

 protected:
  [[nodiscard]] double next_gap() override;

 private:
  double alpha_;
  double scale_;
};

/// Streams `job,<id>,<origin>,<work>,<release>,<up>,<down>` lines from a
/// CSV file without materializing it. Blank lines and '#' comments are
/// skipped; any other content, a malformed job record, a release-order
/// violation, or a read error mid-file throws std::runtime_error with
/// "<path>:<line>:" context. A trailing line without '\n' is accepted.
class TraceArrivalStream final : public ArrivalStream {
 public:
  explicit TraceArrivalStream(std::string path);

  [[nodiscard]] std::string name() const override { return "trace"; }
  [[nodiscard]] std::optional<Job> next() override;

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string path_;
  std::ifstream in_;
  std::int64_t line_no_ = 0;
  Time last_release_ = -kTimeInfinity;
  bool done_ = false;
};

/// Builds the configured family; validates the config eagerly (throws
/// std::invalid_argument on bad parameters, std::runtime_error if the
/// trace file cannot be opened).
[[nodiscard]] std::unique_ptr<ArrivalStream> make_arrival_stream(
    const ArrivalConfig& config);

}  // namespace ecs
