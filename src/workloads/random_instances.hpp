// random_instances.hpp - The paper's random simulation scenarios
// (section VI-A, "Random instances").
//
// Platform: 20 cloud processors, 10 slow edge processors (speed 0.1) and
// 10 fast edge processors (speed 0.5). Execution and communication times
// follow the same distribution family (uniform), with the communication
// distribution scaled so that the ratio of expected values equals the
// Communication-to-Computation Ratio (CCR): CCR 0.1 is compute-intensive,
// CCR 10 communication-intensive. Release dates are uniform over the
// horizon that realizes the requested load (see load.hpp); job origins are
// uniform over the edge processors.
//
// The paper does not publish the absolute range of the work distribution
// (only its shape and the CCR coupling); we use U(1, 19) — mean 10 — and
// scale the per-direction communication times by CCR: up, dn ~
// U(CCR * 1, CCR * 19), making E[up]/E[w] = E[dn]/E[w] = CCR. Results are
// scale-free in this choice (stretch is a ratio), so the figures' shape is
// unaffected.
#pragma once

#include "core/platform.hpp"
#include "util/rng.hpp"
#include "workloads/load.hpp"

namespace ecs {

struct RandomInstanceConfig {
  int n = 4000;             ///< number of jobs (paper uses 4000)
  int cloud_count = 20;     ///< cloud processors
  int slow_edges = 10;      ///< edge processors at slow_speed
  double slow_speed = 0.1;
  int fast_edges = 10;      ///< edge processors at fast_speed
  double fast_speed = 0.5;
  double work_min = 1.0;    ///< uniform work range
  double work_max = 19.0;
  double ccr = 1.0;         ///< Communication-to-Computation Ratio
  double load = 0.05;       ///< paper default load
  /// Release-date process (the paper uses uniform; the alternatives feed
  /// the arrival-model robustness ablation).
  ReleaseProcess release_process = ReleaseProcess::kUniform;
};

/// The fixed platform of the random scenarios.
[[nodiscard]] Platform make_random_platform(const RandomInstanceConfig& cfg);

/// Draws a full instance; deterministic given the Rng state.
[[nodiscard]] Instance make_random_instance(const RandomInstanceConfig& cfg,
                                            Rng& rng);

}  // namespace ecs
