// soa.hpp - Data-oriented state pools for the simulation engine.
//
// The engine's per-job dynamic state lives here as structure-of-arrays
// component pools (one parallel array per field) instead of the historical
// vector<JobState> AoS layout. Three components:
//
//  * StatePool   - the per-slot job state: the hot progress fields
//                  (rem_up / rem_work / rem_down / rate / last_update) and
//                  the warm allocation / lifecycle fields, each in its own
//                  dense array indexed by state slot. The pool also owns the
//                  policy-facing AoS snapshot (`policy_view()`): SimView and
//                  the policies keep reading `const JobState&`, and the
//                  engine publish()es the slots whose state changed before
//                  every decision round — so the read API of the policy
//                  layer is unchanged while the engine hot path walks dense
//                  arrays.
//  * LiveIndex   - sparse-set index of the live (released, unfinished)
//                  jobs: a dense array of (id, slot) pairs with O(1)
//                  swap-erase plus a slot -> dense-position table. Erasure
//                  needs no id -> slot lookup because the dense entries
//                  carry both.
//  * IdMap       - open-addressing id -> slot hash map for the streaming
//                  engine. Replaces the dense id window, whose storage grew
//                  with the *span* of in-flight ids (unbounded when one old
//                  job stays live while later ids churn); the map's
//                  capacity tracks the *count* of tracked ids, so streaming
//                  memory is O(peak_live) under any completion order.
//
// All three are deterministic: iteration order of LiveIndex depends only on
// the insert/erase sequence, and IdMap is only ever probed point-wise.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "core/job.hpp"
#include "core/time.hpp"
#include "sim/state.hpp"
#include "util/rng.hpp"

namespace ecs::soa {

/// SoA component pool of per-job engine state, one slot per tracked job.
/// Slot contents mirror JobState field for field; the composite helpers
/// (next_activity, advance_progress, ...) use the exact expressions of the
/// JobState originals so the SoA engine is bit-identical to the AoS one.
class StatePool {
 public:
  /// Resizes to `n` slots, every one reset to the default state. Keeps the
  /// arrays' capacity, so a reused pool allocates nothing on re-prepare.
  void reset(std::size_t n) {
    job_.assign(n, Job{});
    best_time_.assign(n, 0.0);
    alloc_.assign(n, kAllocUnassigned);
    rem_up_.assign(n, 0.0);
    rem_work_.assign(n, 0.0);
    rem_down_.assign(n, 0.0);
    active_.assign(n, Activity::kNone);
    rate_.assign(n, 0.0);
    last_update_.assign(n, 0.0);
    was_active_.assign(n, 0);
    released_.assign(n, 0);
    done_.assign(n, 0);
    completion_.assign(n, -1.0);
    reassignments_.assign(n, 0);
    view_.assign(n, JobState{});
  }

  /// Appends one default slot (streaming growth); returns its index.
  std::int32_t grow() {
    const std::int32_t slot = static_cast<std::int32_t>(job_.size());
    job_.emplace_back();
    best_time_.push_back(0.0);
    alloc_.push_back(kAllocUnassigned);
    rem_up_.push_back(0.0);
    rem_work_.push_back(0.0);
    rem_down_.push_back(0.0);
    active_.push_back(Activity::kNone);
    rate_.push_back(0.0);
    last_update_.push_back(0.0);
    was_active_.push_back(0);
    released_.push_back(0);
    done_.push_back(0);
    completion_.push_back(-1.0);
    reassignments_.push_back(0);
    view_.emplace_back();
    return slot;
  }

  /// Resets one slot to the default state (slot recycling).
  void clear_slot(std::int32_t s) {
    job_[s] = Job{};
    best_time_[s] = 0.0;
    alloc_[s] = kAllocUnassigned;
    rem_up_[s] = 0.0;
    rem_work_[s] = 0.0;
    rem_down_[s] = 0.0;
    active_[s] = Activity::kNone;
    rate_[s] = 0.0;
    last_update_[s] = 0.0;
    was_active_[s] = 0;
    released_[s] = 0;
    done_[s] = 0;
    completion_[s] = -1.0;
    reassignments_[s] = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return job_.size(); }

  // Component accessors (slot-indexed).
  [[nodiscard]] Job& job(std::int32_t s) noexcept { return job_[s]; }
  [[nodiscard]] const Job& job(std::int32_t s) const noexcept {
    return job_[s];
  }
  [[nodiscard]] double& best_time(std::int32_t s) noexcept {
    return best_time_[s];
  }
  [[nodiscard]] double best_time(std::int32_t s) const noexcept {
    return best_time_[s];
  }
  [[nodiscard]] int& alloc(std::int32_t s) noexcept { return alloc_[s]; }
  [[nodiscard]] int alloc(std::int32_t s) const noexcept { return alloc_[s]; }
  [[nodiscard]] double& rem_up(std::int32_t s) noexcept { return rem_up_[s]; }
  [[nodiscard]] double rem_up(std::int32_t s) const noexcept {
    return rem_up_[s];
  }
  [[nodiscard]] double& rem_work(std::int32_t s) noexcept {
    return rem_work_[s];
  }
  [[nodiscard]] double rem_work(std::int32_t s) const noexcept {
    return rem_work_[s];
  }
  [[nodiscard]] double& rem_down(std::int32_t s) noexcept {
    return rem_down_[s];
  }
  [[nodiscard]] double rem_down(std::int32_t s) const noexcept {
    return rem_down_[s];
  }
  [[nodiscard]] Activity& active(std::int32_t s) noexcept {
    return active_[s];
  }
  [[nodiscard]] Activity active(std::int32_t s) const noexcept {
    return active_[s];
  }
  [[nodiscard]] double& rate(std::int32_t s) noexcept { return rate_[s]; }
  [[nodiscard]] Time& last_update(std::int32_t s) noexcept {
    return last_update_[s];
  }
  [[nodiscard]] std::uint8_t& was_active(std::int32_t s) noexcept {
    return was_active_[s];
  }
  [[nodiscard]] std::uint8_t& released(std::int32_t s) noexcept {
    return released_[s];
  }
  [[nodiscard]] std::uint8_t& done(std::int32_t s) noexcept {
    return done_[s];
  }
  [[nodiscard]] Time& completion(std::int32_t s) noexcept {
    return completion_[s];
  }
  [[nodiscard]] int& reassignments(std::int32_t s) noexcept {
    return reassignments_[s];
  }

  [[nodiscard]] bool live(std::int32_t s) const noexcept {
    return released_[s] != 0 && done_[s] == 0;
  }

  /// The next activity slot `s` needs on its current allocation; identical
  /// logic to JobState::next_activity.
  [[nodiscard]] Activity next_activity(std::int32_t s) const noexcept {
    if (alloc_[s] == kAllocUnassigned || done_[s] != 0) {
      return Activity::kNone;
    }
    if (alloc_[s] == kAllocEdge) {
      return amount_done(rem_work_[s]) ? Activity::kNone : Activity::kCompute;
    }
    if (!amount_done(rem_up_[s])) return Activity::kUplink;
    if (!amount_done(rem_work_[s])) return Activity::kCompute;
    if (!amount_done(rem_down_[s])) return Activity::kDownlink;
    return Activity::kNone;
  }

  [[nodiscard]] bool all_amounts_done(std::int32_t s) const noexcept {
    if (alloc_[s] == kAllocEdge) return amount_done(rem_work_[s]);
    return amount_done(rem_up_[s]) && amount_done(rem_work_[s]) &&
           amount_done(rem_down_[s]);
  }

  /// Materializes the active activity's progress up to `to`; identical
  /// arithmetic to JobState::advance_progress (same ops, same order).
  void advance_progress(std::int32_t s, Time to) noexcept {
    const double dt = std::max(0.0, to - last_update_[s]);
    switch (active_[s]) {
      case Activity::kUplink:
        rem_up_[s] = clamp_amount(rem_up_[s] - dt * rate_[s]);
        break;
      case Activity::kCompute:
        rem_work_[s] = clamp_amount(rem_work_[s] - dt * rate_[s]);
        break;
      case Activity::kDownlink:
        rem_down_[s] = clamp_amount(rem_down_[s] - dt * rate_[s]);
        break;
      case Activity::kNone:
        return;  // idle: nothing progresses, the anchor stays put
    }
    last_update_[s] = to;
  }

  // --- policy-facing AoS snapshot (the SimView facade) ---

  /// The AoS mirror handed to SimView. Entry `s` is authoritative as of the
  /// last publish(s); the engine publishes every slot whose state may have
  /// changed (live set, event batch, out-of-band sheds) before each policy
  /// call, so the snapshot is exact wherever a policy can legally look.
  [[nodiscard]] const std::vector<JobState>& policy_view() const noexcept {
    return view_;
  }

  /// Copies slot `s`'s components into the AoS snapshot entry.
  void publish(std::int32_t s) {
    JobState& d = view_[s];
    d.job = job_[s];
    d.best_time = best_time_[s];
    d.alloc = alloc_[s];
    d.rem_up = rem_up_[s];
    d.rem_work = rem_work_[s];
    d.rem_down = rem_down_[s];
    d.active = active_[s];
    d.rate = rate_[s];
    d.last_update = last_update_[s];
    d.was_active = was_active_[s] != 0;
    d.released = released_[s] != 0;
    d.done = done_[s] != 0;
    d.completion = completion_[s];
    d.reassignments = reassignments_[s];
  }

  void publish_all() {
    for (std::int32_t s = 0; s < static_cast<std::int32_t>(size()); ++s) {
      publish(s);
    }
  }

 private:
  std::vector<Job> job_;
  std::vector<double> best_time_;
  std::vector<int> alloc_;
  std::vector<double> rem_up_;
  std::vector<double> rem_work_;
  std::vector<double> rem_down_;
  std::vector<Activity> active_;
  std::vector<double> rate_;
  std::vector<Time> last_update_;
  std::vector<std::uint8_t> was_active_;
  std::vector<std::uint8_t> released_;
  std::vector<std::uint8_t> done_;
  std::vector<Time> completion_;
  std::vector<int> reassignments_;
  std::vector<JobState> view_;  ///< published AoS snapshot for SimView
};

/// Sparse-set index of the live jobs. The dense array carries (id, slot)
/// pairs so iteration hands both without a map lookup; `pos_` maps a state
/// slot back to its dense position for O(1) swap-erase.
class LiveIndex {
 public:
  struct Entry {
    JobId id;
    std::int32_t slot;
  };

  /// Clears the index and sizes the slot -> position table for `slots`.
  void reset(std::size_t slots) {
    dense_.clear();
    pos_.assign(slots, -1);
  }

  /// Tracks one more state slot (streaming growth).
  void grow() { pos_.push_back(-1); }

  void insert(JobId id, std::int32_t slot) {
    assert(pos_[slot] < 0);
    pos_[slot] = static_cast<std::int32_t>(dense_.size());
    dense_.push_back(Entry{id, slot});
  }

  void erase(std::int32_t slot) {
    const std::int32_t p = pos_[slot];
    assert(p >= 0);
    const Entry moved = dense_.back();
    dense_[p] = moved;
    pos_[moved.slot] = p;
    dense_.pop_back();
    pos_[slot] = -1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return dense_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dense_.empty(); }
  [[nodiscard]] const Entry* begin() const noexcept { return dense_.data(); }
  [[nodiscard]] const Entry* end() const noexcept {
    return dense_.data() + dense_.size();
  }

 private:
  std::vector<Entry> dense_;          ///< live (id, slot) pairs, unordered
  std::vector<std::int32_t> pos_;     ///< slot -> dense index, -1 = not live
};

/// Open-addressing id -> slot hash map (linear probing, power-of-two
/// capacity, SplitMix64-mixed keys, backward-shift deletion — no
/// tombstones, so lookup cost stays O(1) under sustained insert/erase
/// churn). Capacity grows with the number of *simultaneously tracked* ids
/// and never with their numeric span, which is the streaming engine's
/// O(peak_live) memory bound.
class IdMap {
 public:
  /// find() result when the id is not tracked. Matches the engine's
  /// kSlotRetired sentinel: absent ids are retired, rejected or unseen.
  static constexpr std::int32_t kAbsent = -1;

  void clear() {
    keys_.assign(keys_.empty() ? kMinCapacity : keys_.size(), kEmptyKey);
    slots_.assign(keys_.size(), kAbsent);
    size_ = 0;
  }

  [[nodiscard]] std::int32_t find(JobId id) const noexcept {
    if (keys_.empty()) return kAbsent;
    std::size_t i = index_of(id);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == id) return slots_[i];
      i = (i + 1) & mask();
    }
    return kAbsent;
  }

  /// Inserts a new id (must not be present).
  void insert(JobId id, std::int32_t slot) {
    if (keys_.empty()) clear();
    if ((size_ + 1) * 4 > keys_.size() * 3) rehash(keys_.size() * 2);
    std::size_t i = index_of(id);
    while (keys_[i] != kEmptyKey) {
      assert(keys_[i] != id);
      i = (i + 1) & mask();
    }
    keys_[i] = id;
    slots_[i] = slot;
    ++size_;
  }

  /// Erases a present id via backward-shift deletion (Knuth's Algorithm R):
  /// subsequent probe-chain members whose ideal bucket precedes the hole
  /// slide back, so no tombstone is left behind.
  void erase(JobId id) {
    std::size_t i = index_of(id);
    while (keys_[i] != id) {
      assert(keys_[i] != kEmptyKey);
      i = (i + 1) & mask();
    }
    std::size_t j = i;
    while (true) {
      keys_[i] = kEmptyKey;
      while (true) {
        j = (j + 1) & mask();
        if (keys_[j] == kEmptyKey) {
          --size_;
          return;
        }
        const std::size_t ideal = index_of(keys_[j]);
        // The entry at j may fill the hole at i unless its ideal bucket
        // lies cyclically within (i, j] — moving it would then break its
        // own probe chain.
        const bool stuck = i < j ? (ideal > i && ideal <= j)
                                 : (ideal > i || ideal <= j);
        if (!stuck) break;
      }
      keys_[i] = keys_[j];
      slots_[i] = slots_[j];
      i = j;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

 private:
  static constexpr JobId kEmptyKey = -1;
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t mask() const noexcept { return keys_.size() - 1; }
  [[nodiscard]] std::size_t index_of(JobId id) const noexcept {
    return static_cast<std::size_t>(
               mix64(static_cast<std::uint64_t>(id))) &
           mask();
  }

  void rehash(std::size_t new_capacity) {
    std::vector<JobId> old_keys = std::move(keys_);
    std::vector<std::int32_t> old_slots = std::move(slots_);
    keys_.assign(new_capacity, kEmptyKey);
    slots_.assign(new_capacity, kAbsent);
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) insert(old_keys[i], old_slots[i]);
    }
  }

  std::vector<JobId> keys_;           ///< kEmptyKey marks an empty bucket
  std::vector<std::int32_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace ecs::soa
