// engine.hpp - Event-driven simulator for MinMaxStretch-EdgeCloud.
//
// The engine advances continuous time from event to event. An event is a
// job release or the completion of an activity (uplink, execution,
// downlink). At each event it queries the policy for directives, applies
// allocation changes (implementing the paper's re-execution rule), then
// activates activities in priority order subject to the model's resource
// constraints:
//
//  * each edge / cloud processor executes at most one job at a time
//    (preemption happens naturally when priorities change);
//  * one-port full-duplex: an edge processor participates in at most one
//    uplink (its send port) and one downlink (its receive port) at a time,
//    a cloud processor in at most one incoming uplink (receive port) and
//    one outgoing downlink (send port); communications are preemptible;
//  * computation overlaps communication freely;
//  * per job: uplink completes before execution starts, execution before
//    the downlink starts.
//
// Between events every active activity progresses linearly, so the next
// event time is computed analytically. The event loop is O(live + active)
// per event, independent of the instance size: the engine tracks explicit
// live/active job sets, accounts progress lazily per activity (rate +
// last-update anchor) and keeps predicted activity end times in a
// lazy-deletion min-heap (see DESIGN.md §5, "Engine internals").
//
// The full activity history is recorded into a core::Schedule, which the
// section III-B validator can then check independently — the engine and
// the validator are two separate implementations of the model, and the
// test suite plays them against each other.
#pragma once

#include <cstdint>
#include <memory>

#include "core/platform.hpp"
#include "core/schedule.hpp"
#include "sim/faults.hpp"
#include "sim/policy.hpp"

namespace ecs {

namespace obs {
class InvariantWatchdog;
class MetricsRegistry;
class TraceSink;
}  // namespace obs

struct EngineConfig {
  /// Hard cap on processed events; 0 selects max(10'000, 512 * n). The cap
  /// exists to turn a thrashing policy (endless re-executions) into a
  /// diagnosable error instead of a hang.
  std::uint64_t max_events = 0;
  /// Record the full interval history. Disable to save memory on very large
  /// instances when only completion times are needed.
  bool record_schedule = true;
  /// Unannounced faults (see sim/faults.hpp). The ENGINE owns the plan —
  /// policies never see it and learn of a fault only through the
  /// EventKind::kFault / kRecovery events it triggers. Empty = fault-free.
  FaultPlan faults;
  /// Optional structured trace of the run (obs/trace.hpp): activity spans,
  /// instants and time-series samples at event granularity. Not owned; must
  /// outlive simulate(). Sinks are single-run, single-threaded objects.
  /// Null (the default) costs nothing: every emission sits behind a null
  /// check and a traced run is bit-identical to an untraced one.
  obs::TraceSink* trace = nullptr;
  /// Optional metrics registry (obs/metrics.hpp): engine-phase timers,
  /// stretch / queue-wait histograms, and counters mirroring SimStats. Not
  /// owned; thread-safe, so one registry may be shared across the runs of a
  /// parallel sweep to accumulate totals. Null = no bookkeeping.
  obs::MetricsRegistry* metrics = nullptr;
  /// Emit decision provenance: one TracePoint::kDirective instant per
  /// applied directive (reassignments always; keep-decisions deduplicated —
  /// re-confirming the same target for the same reason at every event is
  /// noise). Requires a trace destination (`trace` or `watchdog`); with
  /// neither it is inert. Off by default: provenance inflates traces and
  /// the engine's hot path must stay allocation-free when observability is
  /// off.
  bool provenance = false;
  /// Optional online invariant watchdog (obs/watchdog.hpp): checks the
  /// one-port, precedence, no-migration, exclusivity and release invariants
  /// at the offending event. Not owned; must outlive simulate(). Setting a
  /// watchdog routes the trace stream into it (even when `trace` is null)
  /// and implies `provenance`, so violations can link the decisions that
  /// caused them. Null (the default) costs nothing.
  obs::InvariantWatchdog* watchdog = nullptr;
};

struct SimStats {
  std::uint64_t events = 0;        ///< releases + activity completions
  std::uint64_t decisions = 0;     ///< policy invocations
  std::uint64_t reassignments = 0; ///< progress-discarding moves
  std::uint64_t fault_aborts = 0;  ///< jobs aborted by cloud crashes
  std::uint64_t message_losses = 0;///< communications corrupted in flight
  /// Times a live job lost its resource while still needing it (a directive
  /// of higher priority, an announced outage boundary, or an unannounced
  /// crash freezing its cloud) without its allocation changing.
  std::uint64_t preemptions = 0;
  /// Uplink transmissions restarted from zero after an uplink message loss.
  std::uint64_t uplink_retransmits = 0;
  /// Downlink transmissions restarted after a downlink message loss (the
  /// execution result survives on the cloud; only the download is re-paid).
  std::uint64_t downlink_retransmits = 0;
  /// Largest number of live jobs simultaneously holding no resource
  /// observed after any decision round.
  std::uint64_t max_queue_depth = 0;
  double policy_seconds = 0.0;     ///< wall time spent inside the policy
};

struct SimResult {
  Schedule schedule;          ///< interval history (if recorded)
  std::vector<Time> completions;  ///< C_i per job (always filled)
  /// Every kFault / kRecovery event fired during the run, in order — the
  /// realized fault trace, for replay and debugging.
  std::vector<Event> fault_log;
  SimStats stats;
};

/// Runs `policy` over `instance` until every job completes.
/// Throws std::runtime_error on policy stalls (every live job left
/// unallocated with no pending event) or when the event cap is hit.
[[nodiscard]] SimResult simulate(const Instance& instance, Policy& policy,
                                 const EngineConfig& config = {});

}  // namespace ecs
