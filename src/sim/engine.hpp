// engine.hpp - Event-driven simulator for MinMaxStretch-EdgeCloud.
//
// The engine advances continuous time from event to event. An event is a
// job release or the completion of an activity (uplink, execution,
// downlink). At each event it queries the policy for directives, applies
// allocation changes (implementing the paper's re-execution rule), then
// activates activities in priority order subject to the model's resource
// constraints:
//
//  * each edge / cloud processor executes at most one job at a time
//    (preemption happens naturally when priorities change);
//  * one-port full-duplex: an edge processor participates in at most one
//    uplink (its send port) and one downlink (its receive port) at a time,
//    a cloud processor in at most one incoming uplink (receive port) and
//    one outgoing downlink (send port); communications are preemptible;
//  * computation overlaps communication freely;
//  * per job: uplink completes before execution starts, execution before
//    the downlink starts.
//
// Between events every active activity progresses linearly, so the next
// event time is computed analytically. The event loop is O(live + active)
// per event, independent of the instance size: the engine tracks explicit
// live/active job sets, accounts progress lazily per activity (rate +
// last-update anchor) and keeps predicted activity end times in a
// lazy-deletion min-heap (see DESIGN.md §5, "Engine internals").
//
// The full activity history is recorded into a core::Schedule, which the
// section III-B validator can then check independently — the engine and
// the validator are two separate implementations of the model, and the
// test suite plays them against each other.
#pragma once

#include <cstdint>
#include <memory>

#include "core/platform.hpp"
#include "core/schedule.hpp"
#include "sim/faults.hpp"
#include "sim/policy.hpp"

namespace ecs {

namespace obs {
class InvariantWatchdog;
class MetricsRegistry;
class TraceSink;
}  // namespace obs

class ArrivalStream;

/// How admission control resolves an arrival that would exceed a cap.
enum class AdmissionRule : std::uint8_t {
  /// Refuse the arriving job (FIFO protection: residents keep their seat).
  kRejectNewest,
  /// Evict the resident never-started job with the worst stretch lower
  /// bound — but only when that bound is worse than the arrival's (1.0 at
  /// its own release) — then admit the arrival; otherwise reject it.
  kRejectHopeless,
  /// Before the cap check, shed every resident never-started job whose
  /// best achievable stretch already exceeds stretch_limit (its deadline
  /// release + stretch_limit * best_time can no longer be met); arrivals
  /// that still exceed a cap are rejected.
  kShedInfeasible,
};

/// Overload protection (see docs/MODEL.md, "Admission control"). All caps
/// are evaluated at release instants, before the job becomes visible to the
/// policy: a rejected job fires no kRelease event and acquires no state, so
/// a run with admission disabled is bit-identical to one without the
/// feature. Only never-started jobs are ever shed, preserving the invariant
/// that a rejected or shed job has no recorded activity.
struct AdmissionConfig {
  /// Cap on resident (admitted, unfinished) jobs; 0 = unbounded.
  std::uint64_t max_live = 0;
  /// Cap on resident jobs holding no resource at the arrival instant;
  /// 0 = unbounded. Checked in O(live) per arrival, so prefer max_live for
  /// very high arrival rates.
  std::uint64_t max_queue = 0;
  AdmissionRule rule = AdmissionRule::kRejectNewest;
  /// Stretch bound used by kShedInfeasible; <= 0 disables shedding.
  double stretch_limit = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return max_live > 0 || max_queue > 0 ||
           (rule == AdmissionRule::kShedInfeasible && stretch_limit > 0.0);
  }
};

/// One admission decision that refused service: a rejection at arrival or
/// the eviction (shed) of an admitted, never-started job.
struct AdmissionRecord {
  JobId job = -1;
  Time time = 0.0;
  ReasonCode reason = ReasonCode::kUnspecified;
  bool shed = false;  ///< false = rejected at arrival, true = evicted later
};

struct EngineConfig {
  /// Hard cap on processed events; 0 (the default) disables the absolute
  /// cap in favour of the events-since-completion watchdog below — an
  /// absolute cap is meaningless for an unbounded stream. Setting it keeps
  /// the historical behaviour: the run dies once total events exceed it.
  std::uint64_t max_events = 0;
  /// Progress watchdog: abort when this many events fire without a single
  /// job completing; 0 selects max(100'000, 512 * live). This turns a
  /// thrashing policy (endless re-executions) into a diagnosable error
  /// instead of a hang, even when the total event count is unbounded.
  std::uint64_t stall_events = 0;
  /// Overload protection; disabled by default (admission.enabled() false).
  AdmissionConfig admission;
  /// Record the full interval history. Disable to save memory on very large
  /// instances when only completion times are needed.
  bool record_schedule = true;
  /// Fill SimResult::completions. Disable (together with record_schedule)
  /// for soak-scale streaming runs where only the stats matter — with both
  /// off a streaming run's memory is O(live), independent of total jobs.
  bool record_completions = true;
  /// Measure the wall time spent inside the policy (two steady-clock reads
  /// per decision round, accumulated into SimStats::policy_seconds). The
  /// batch driver turns this off — at thousands of tiny replications the
  /// clock reads are measurable, and the driver times whole runs itself —
  /// so policy_seconds reads 0 there. Never affects simulation results.
  bool time_policy = true;
  /// Fill SimResult::admission_log (one record per rejection or shed).
  /// Under sustained overload the log grows with the REFUSED count, not the
  /// live set, so soak-scale runs must turn it off along with the two
  /// switches above; the rejections/sheds counters in SimStats (and the
  /// kReject/kShed trace instants) are unaffected.
  bool record_admission = true;
  /// Unannounced faults (see sim/faults.hpp). The ENGINE owns the plan —
  /// policies never see it and learn of a fault only through the
  /// EventKind::kFault / kRecovery events it triggers. Empty = fault-free.
  FaultPlan faults;
  /// Optional structured trace of the run (obs/trace.hpp): activity spans,
  /// instants and time-series samples at event granularity. Not owned; must
  /// outlive simulate(). Sinks are single-run, single-threaded objects.
  /// Null (the default) costs nothing: every emission sits behind a null
  /// check and a traced run is bit-identical to an untraced one.
  obs::TraceSink* trace = nullptr;
  /// Optional metrics registry (obs/metrics.hpp): engine-phase timers,
  /// stretch / queue-wait histograms, and counters mirroring SimStats. Not
  /// owned; thread-safe, so one registry may be shared across the runs of a
  /// parallel sweep to accumulate totals. Null = no bookkeeping.
  obs::MetricsRegistry* metrics = nullptr;
  /// Emit decision provenance: one TracePoint::kDirective instant per
  /// applied directive (reassignments always; keep-decisions deduplicated —
  /// re-confirming the same target for the same reason at every event is
  /// noise). Requires a trace destination (`trace` or `watchdog`); with
  /// neither it is inert. Off by default: provenance inflates traces and
  /// the engine's hot path must stay allocation-free when observability is
  /// off.
  bool provenance = false;
  /// Optional online invariant watchdog (obs/watchdog.hpp): checks the
  /// one-port, precedence, no-migration, exclusivity and release invariants
  /// at the offending event. Not owned; must outlive simulate(). Setting a
  /// watchdog routes the trace stream into it (even when `trace` is null)
  /// and implies `provenance`, so violations can link the decisions that
  /// caused them. Null (the default) costs nothing.
  obs::InvariantWatchdog* watchdog = nullptr;
};

struct SimStats {
  std::uint64_t events = 0;        ///< releases + activity completions
  std::uint64_t decisions = 0;     ///< policy invocations
  std::uint64_t reassignments = 0; ///< progress-discarding moves
  std::uint64_t fault_aborts = 0;  ///< jobs aborted by cloud crashes
  std::uint64_t message_losses = 0;///< communications corrupted in flight
  /// Times a live job lost its resource while still needing it (a directive
  /// of higher priority, an announced outage boundary, or an unannounced
  /// crash freezing its cloud) without its allocation changing.
  std::uint64_t preemptions = 0;
  /// Uplink transmissions restarted from zero after an uplink message loss.
  std::uint64_t uplink_retransmits = 0;
  /// Downlink transmissions restarted after a downlink message loss (the
  /// execution result survives on the cloud; only the download is re-paid).
  std::uint64_t downlink_retransmits = 0;
  /// Largest number of live jobs simultaneously holding no resource
  /// observed after any decision round.
  std::uint64_t max_queue_depth = 0;
  /// High-water mark of the live set — the run's true working-set size.
  /// Under streaming this is the memory bound: it tracks load, not total n.
  std::uint64_t peak_live = 0;
  /// Streaming only: high-water mark of the id -> slot map (live jobs plus
  /// completed jobs awaiting their one-round retirement grace). The memory
  /// regression tests pin peak_tracked = O(peak_live) under adversarial
  /// completion orders; 0 in materialized runs.
  std::uint64_t peak_tracked = 0;
  std::uint64_t admitted = 0;    ///< jobs released past admission control
  std::uint64_t completed = 0;   ///< admitted jobs that finished
  std::uint64_t rejections = 0;  ///< arrivals refused at release
  std::uint64_t sheds = 0;       ///< admitted never-started jobs evicted
  double max_stretch = 0.0;      ///< max realized stretch over completed jobs
  double policy_seconds = 0.0;     ///< wall time spent inside the policy
};

struct SimResult {
  Schedule schedule;          ///< interval history (if recorded)
  /// C_i per job when record_completions (the default); -1 marks a job that
  /// never completed (rejected or shed by admission control).
  std::vector<Time> completions;
  /// Every kFault / kRecovery event fired during the run, in order — the
  /// realized fault trace, for replay and debugging.
  std::vector<Event> fault_log;
  /// Every admission rejection and shed, in order. Empty when admission is
  /// disabled.
  std::vector<AdmissionRecord> admission_log;
  SimStats stats;
};

/// Runs `policy` over `instance` until every admitted job completes.
/// Throws std::runtime_error on policy stalls (every live job left
/// unallocated with no pending event), when the explicit event cap is hit,
/// or when the progress watchdog trips.
[[nodiscard]] SimResult simulate(const Instance& instance, Policy& policy,
                                 const EngineConfig& config = {});

/// Streaming run: jobs arrive from `arrivals` over the platform and outage
/// calendar of `base`, whose own job list must be empty. Completed jobs
/// retire (their per-job state is recycled) so memory is O(peak_live), not
/// O(total jobs), once record_schedule / record_completions are off. With
/// admission disabled the run is bit-identical to simulate() over the
/// materialized instance (tests/test_streaming.cpp pins this).
[[nodiscard]] SimResult simulate_stream(const Instance& base,
                                        ArrivalStream& arrivals,
                                        Policy& policy,
                                        const EngineConfig& config = {});

}  // namespace ecs
