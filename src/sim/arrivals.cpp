#include "sim/arrivals.hpp"

#include <algorithm>

namespace ecs {

InstanceArrivalStream::InstanceArrivalStream(const Instance& instance)
    : instance_(&instance) {
  order_.resize(instance.jobs.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<JobId>(i);
  }
  std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
    const Time ra = instance.jobs[a].release;
    const Time rb = instance.jobs[b].release;
    return ra != rb ? ra < rb : instance.jobs[a].id < instance.jobs[b].id;
  });
}

std::optional<Job> InstanceArrivalStream::next() {
  if (pos_ >= order_.size()) return std::nullopt;
  return instance_->jobs[order_[pos_++]];
}

}  // namespace ecs
