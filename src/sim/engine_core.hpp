// engine_core.hpp - The reusable engine behind simulate(), simulate_stream()
// and the batch driver (sim/batch.hpp).
//
// EngineCore is the event loop of engine.hpp's contract, restructured for
// reuse: a default-constructed core is prepare()d against an (instance,
// policy, config) triple, stepped to completion, harvested with
// finish_into(), and then prepared again for the next run — every internal
// buffer keeps its capacity across runs, so a resident core performs zero
// steady-state allocations per replication. simulate() uses a throwaway
// core; BatchEngine keeps one per world slot.
//
// This header is internal (namespace ecs::detail): the supported entry
// points remain simulate() / simulate_stream() / BatchEngine. Tests include
// it to pin the reuse contract (a reused core is bit-identical to a fresh
// one).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"
#include "sim/soa.hpp"

namespace ecs {

class ArrivalStream;

namespace detail {

/// Metric-instrument handles, resolved once per run so the hot path never
/// touches the registry's name maps. Only valid when a registry is set.
struct EngineInstruments {
  using Id = obs::MetricsRegistry::Id;
  Id events, decisions, reassignments, preemptions, fault_aborts;
  Id uplink_retransmits, downlink_retransmits, message_losses;
  Id rejections, sheds;       ///< admission-control refusals
  Id queue_depth;             ///< gauge; its max mirrors max_queue_depth
  Id peak_live;               ///< gauge; live-set high-water mark
  Id stretch, queue_wait;     ///< histograms
  Id phase_policy, phase_allocate, phase_activate, phase_faults;  ///< timers

  explicit EngineInstruments(obs::MetricsRegistry& registry);
};

/// Per-job recording of the currently open activity interval plus the
/// in-progress run record.
struct ActivityRecorder {
  RunRecord current;
  Activity open_activity = Activity::kNone;
  Time open_start = 0.0;

  void open(Activity activity, Time now) {
    open_activity = activity;
    open_start = now;
  }

  void close(Time now) {
    if (open_activity == Activity::kNone) return;
    switch (open_activity) {
      case Activity::kUplink:
        current.uplink.add(open_start, now);
        break;
      case Activity::kCompute:
        current.exec.add(open_start, now);
        break;
      case Activity::kDownlink:
        current.downlink.add(open_start, now);
        break;
      case Activity::kNone:
        break;
    }
    open_activity = Activity::kNone;
  }

  [[nodiscard]] bool has_history() const noexcept {
    return !current.uplink.empty() || !current.exec.empty() ||
           !current.downlink.empty();
  }
};

/// Busy markers for one decision round: which job holds each resource.
struct BusyMap {
  std::vector<JobId> edge_cpu, edge_send, edge_recv;
  std::vector<JobId> cloud_cpu, cloud_send, cloud_recv;

  void resize(const Platform& platform) {
    edge_cpu.assign(platform.edge_count(), -1);
    edge_send.assign(platform.edge_count(), -1);
    edge_recv.assign(platform.edge_count(), -1);
    cloud_cpu.assign(platform.cloud_count(), -1);
    cloud_send.assign(platform.cloud_count(), -1);
    cloud_recv.assign(platform.cloud_count(), -1);
  }

  void clear() {
    std::fill(edge_cpu.begin(), edge_cpu.end(), -1);
    std::fill(edge_send.begin(), edge_send.end(), -1);
    std::fill(edge_recv.begin(), edge_recv.end(), -1);
    std::fill(cloud_cpu.begin(), cloud_cpu.end(), -1);
    std::fill(cloud_send.begin(), cloud_send.end(), -1);
    std::fill(cloud_recv.begin(), cloud_recv.end(), -1);
  }
};

/// One wake-up of the fault timeline: a crash start, a crash repair
/// (recovery), or a message-loss instant.
struct FaultWake {
  Time time = 0.0;
  std::size_t spec = 0;  ///< index into the plan
  bool recovery = false;
};

/// Versioned entry of the lazy-deletion min-heap over predicted activity
/// end times, keyed by state *slot* (== job id in materialized mode). An
/// entry is valid while its version matches the slot's current one AND the
/// slot's job is still mid-activity; preemption, completion, re-execution,
/// fault aborts and slot retirement never search the heap — they simply
/// leave the entry behind to be skipped (or compacted away) later.
struct HeapEntry {
  Time time = 0.0;
  std::int32_t slot = -1;
  std::uint32_t version = 0;
};

class EngineCore {
 public:
  EngineCore() = default;
  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  /// Binds the core to one run and resets every piece of run state (buffer
  /// capacity survives). Materialized mode: all jobs come from `instance`,
  /// slot == job id. Streaming mode (stream != nullptr): `instance` carries
  /// the platform and outage calendar only; jobs arrive from the stream and
  /// completed jobs retire, so per-job state is O(peak_live). The caller is
  /// responsible for policy.reset() — simulate() and BatchEngine both call
  /// it immediately before prepare(), preserving the historical order.
  void prepare(const Instance& instance, ArrivalStream* stream,
               Policy& policy, const EngineConfig& config);

  /// Runs at most `rounds` decision rounds (0 = unbounded); returns done().
  /// Chunked stepping is what lets a batch driver interleave worlds.
  bool step_rounds(std::uint64_t rounds);

  [[nodiscard]] bool done() const noexcept {
    if (!prepared_) return true;
    return streaming_ ? remaining_jobs_ <= 0 && !pending_.has_value()
                      : remaining_jobs_ <= 0;
  }

  /// Harvests the run into `out` (reusing its buffer capacity where
  /// possible) and emits the end-of-run observability records. Call once,
  /// after done().
  void finish_into(SimResult& out);

  /// Convenience: steps to completion and returns the harvested result.
  SimResult run();

 private:
  void init();
  [[nodiscard]] std::int32_t find_slot(JobId id) const noexcept;
  void advance_stream();
  void heap_push(std::int32_t slot, Time end);
  [[nodiscard]] bool heap_entry_valid(const HeapEntry& e) const;
  [[nodiscard]] Time next_activity_end();
  void maybe_compact_heap();
  void fire_releases();
  void admit(const Job& job);
  std::int32_t acquire_slot(const Job& job);
  bool admission_allows(const Job& job);
  [[nodiscard]] std::uint64_t queued_count() const;
  [[nodiscard]] double stretch_lower_bound(std::int32_t slot) const;
  [[nodiscard]] bool sheddable(std::int32_t slot) const;
  void shed_infeasible(double limit);
  bool shed_most_hopeless();
  void reject(const Job& job);
  void shed(JobId id, ReasonCode reason);
  void retire_slot(std::int32_t slot);
  void flush_retired();
  void trace_close_span(std::int32_t slot);
  void trace_instant(obs::TracePoint point, std::int32_t slot, int cloud,
                     double value);
  void trace_directive(std::int32_t slot, int source, int target,
                       const Directive& d);
  void trace_keep_directive(const Directive& d);
  void trace_counter(obs::TracePoint point, double value);
  void step();
  void publish_policy_view();
  void decide_and_activate();
  void sample_counters(std::uint64_t waiting);
  void apply_directive(const Directive& d);
  void note_preemption(std::int32_t slot);
  void try_activate(std::int32_t slot);
  [[nodiscard]] Time activity_end(std::int32_t slot) const;
  void advance_to_next_event();
  [[nodiscard]] std::string describe_live_jobs() const;
  void fire_faults();
  void abort_jobs_on_cloud(CloudId crashed);
  void corrupt_in_flight_message(const FaultSpec& spec);
  void push_fault_event(const Event& event);

  const Instance* instance_ = nullptr;
  const Platform* platform_ = nullptr;
  Policy* policy_ = nullptr;
  EngineConfig config_;
  BusyMap busy_;
  ArrivalStream* stream_ = nullptr;  ///< null in materialized mode
  bool streaming_ = false;
  bool prepared_ = false;
  bool record_schedule_ = true;  ///< cached config flag; gates the recorders

  soa::StatePool pool_;  ///< SoA per-slot state + policy-facing snapshot
  std::vector<ActivityRecorder> recorders_;
  std::vector<std::pair<JobId, RunRecord>> abandoned_runs_;
  std::vector<JobId> release_order_;
  std::size_t next_release_ = 0;
  std::vector<Time> boundaries_;  ///< sorted outage begin/end wake-ups
  std::size_t next_boundary_ = 0;
  std::vector<FaultWake> wakes_;  ///< sorted fault-timeline wake-ups
  std::size_t next_wake_ = 0;
  std::vector<char> cloud_down_;  ///< crashed-and-not-yet-repaired flags
  std::vector<Event> fault_log_;  ///< realized kFault/kRecovery trace
  int remaining_jobs_ = 0;
  Time now_ = 0.0;
  std::vector<Event> events_;
  SimStats stats_;

  // --- active-set core: everything the per-event hot path touches ---
  /// Slots of jobs mid-activity, job-id-sorted per round (slot == id
  /// outside streaming, so this is id-sorted there too).
  std::vector<std::int32_t> active_ids_;
  soa::LiveIndex live_;            ///< sparse-set (id, slot) live index
  std::vector<JobId> live_sorted_; ///< per-round sorted copy of the live ids
  std::vector<HeapEntry> heap_;    ///< lazy-deletion end-time min-heap
  std::vector<std::uint32_t> entry_version_;  ///< current heap version per slot
  std::vector<std::uint32_t> seen_round_;     ///< round stamp per slot
  std::uint32_t round_ = 0;
  std::vector<JobId> victims_;  ///< scratch for crash-abort / shed collection
  /// Slots mutated outside the live set since the last publish (sheds):
  /// their snapshot entries refresh on the next decision round.
  std::vector<std::int32_t> dirty_slots_;

  // --- streaming mode (engaged iff streaming_) ---
  static constexpr std::int32_t kSlotRetired = -1;  ///< no state: id is done
  std::optional<Job> pending_;       ///< next arrival, not yet released
  Time last_arrival_ = -kTimeInfinity;
  JobId next_id_ = 0;                ///< one past the largest id ever seen
  soa::IdMap id_map_;                ///< id -> slot for tracked ids
  std::vector<std::int32_t> free_slots_;    ///< recycled state slots
  std::vector<std::int32_t> retire_queue_;  ///< completed, one round grace
  std::vector<std::pair<JobId, Time>> completion_log_;
  std::vector<std::pair<JobId, RunRecord>> final_runs_;

  // --- admission control ---
  bool admission_on_ = false;
  std::vector<AdmissionRecord> admission_log_;

  // --- progress watchdog ---
  static constexpr std::uint64_t kStallFloor = 100'000;
  std::uint64_t events_since_completion_ = 0;

  // Scratch buffers reused across decision rounds.
  std::vector<std::pair<double, JobId>> order_;
  std::vector<Directive> directives_;  ///< policy output, reused per round

  // --- observability (null sinks = everything below stays idle) ---
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::optional<EngineInstruments> ids_;  ///< engaged iff metrics_ != nullptr
  obs::TeeTraceSink tee_;  ///< user sink + watchdog, when a watchdog is set
  bool provenance_on_ = false;
  /// Sentinel for "no directive emitted yet" in last_dir_target_ (any
  /// value no allocation can take).
  static constexpr int kDirectiveNone = std::numeric_limits<int>::min();
  std::vector<int> last_dir_target_;  ///< keep-dedup state (provenance only)
  std::vector<int> last_dir_reason_;

  /// Open trace span per job. Tracked separately from ActivityRecorder
  /// because recorder intervals close and reopen on every decision round,
  /// while a trace span runs until a true boundary: completion, preemption,
  /// reassignment, fault abort, or message loss.
  struct SpanState {
    Activity activity = Activity::kNone;
    int alloc = kAllocUnassigned;
    Time begin = 0.0;
  };
  std::vector<SpanState> spans_;  ///< sized only when tracing
  std::vector<int> run_index_;    ///< bumped per reassignment / fault abort
  std::vector<char> started_;     ///< first activation already observed
  std::uint64_t granted_ = 0;     ///< resources granted this decision round
};

}  // namespace detail
}  // namespace ecs
