// state.hpp - Dynamic per-job state inside the event-driven simulator.
//
// A live job is, at any instant, either idle (waiting for a resource) or
// performing exactly one activity: its uplink communication, its execution,
// or its downlink communication. The state tracks the remaining amounts for
// the job's *current* allocation; the paper's re-execution rule (no
// migration, restart from scratch allowed) is implemented by resetting these
// amounts whenever the allocation changes.
#pragma once

#include <string>

#include "core/job.hpp"
#include "core/schedule.hpp"
#include "core/time.hpp"

namespace ecs {

enum class Activity { kNone, kUplink, kCompute, kDownlink };

[[nodiscard]] std::string to_string(Activity activity);

/// The four event kinds of the paper (section V): release, end of uplink,
/// end of execution, end of downlink — plus the fault extension's two:
/// kFault (an unannounced cloud crash or a lost message; this is the first
/// time a policy learns about it) and kRecovery (a crashed cloud came back).
enum class EventKind {
  kRelease,
  kUplinkDone,
  kComputeDone,
  kDownlinkDone,
  kFault,
  kRecovery,
};

struct Event {
  EventKind kind;
  JobId job;  ///< affected job; -1 for cloud-level kFault / kRecovery
  Time time;
  /// Cloud processor involved in a kFault / kRecovery event; -1 otherwise.
  int cloud = -1;
};

[[nodiscard]] std::string to_string(EventKind kind);

struct JobState {
  Job job;                      ///< static parameters (copy for locality)
  double best_time = 0.0;       ///< min(t^e, t^c): stretch denominator
  int alloc = kAllocUnassigned; ///< current allocation (kAllocEdge / cloud)
  double rem_up = 0.0;          ///< remaining uplink time (cloud alloc only)
  double rem_work = 0.0;        ///< remaining work, in work units
  double rem_down = 0.0;        ///< remaining downlink time
  Activity active = Activity::kNone;  ///< what the job is doing right now
  /// Lazy progress accounting (engine bookkeeping; policies should treat
  /// both fields as opaque). While `active != kNone` the activity consumes
  /// its remaining amount at `rate` units per unit of simulated time, and
  /// the rem_* fields are authoritative only as of `last_update`. The
  /// engine materializes the elapsed progress with advance_progress() —
  /// per event this touches the *active* jobs only, never the whole
  /// instance, which is what makes the event loop O(active) per event.
  double rate = 0.0;
  Time last_update = 0.0;
  /// Engine bookkeeping: the job was mid-activity when the current decision
  /// round began. Consumed by arbitration to detect preemptions in O(1);
  /// policies should ignore it.
  bool was_active = false;
  bool released = false;
  bool done = false;
  Time completion = -1.0;
  int reassignments = 0;        ///< times progress was discarded

  [[nodiscard]] bool live() const noexcept { return released && !done; }

  /// The next activity the job needs on its current allocation, given its
  /// remaining amounts; kNone when everything is finished (or unallocated).
  [[nodiscard]] Activity next_activity() const noexcept {
    if (alloc == kAllocUnassigned || done) return Activity::kNone;
    if (alloc == kAllocEdge) {
      return amount_done(rem_work) ? Activity::kNone : Activity::kCompute;
    }
    if (!amount_done(rem_up)) return Activity::kUplink;
    if (!amount_done(rem_work)) return Activity::kCompute;
    if (!amount_done(rem_down)) return Activity::kDownlink;
    return Activity::kNone;
  }

  /// True when every amount of the current allocation is exhausted.
  [[nodiscard]] bool all_amounts_done() const noexcept {
    if (alloc == kAllocEdge) return amount_done(rem_work);
    return amount_done(rem_up) && amount_done(rem_work) &&
           amount_done(rem_down);
  }

  /// Materializes the active activity's progress up to `to`: subtracts
  /// rate * elapsed from the remaining amount of the current activity and
  /// moves the accounting anchor. A no-op for idle jobs.
  void advance_progress(Time to) noexcept;
};

}  // namespace ecs
