// arrivals.hpp - Streaming job arrivals for the engine.
//
// simulate_stream (engine.hpp) consumes releases from an ArrivalStream
// instead of a fully materialized Instance, so a run's memory footprint is
// a function of the number of *live* jobs, never of the total job count.
// The interface lives in sim/ (the engine's layer); the deterministic
// seeded arrival families — Poisson, diurnal NHPP, bursty MMPP,
// heavy-tailed Pareto, trace-file-driven — live in workloads/arrivals.hpp
// on top of it.
//
// Stream contract (enforced by the engine where cheap):
//  * next() returns jobs with non-decreasing release dates; ties are
//    consumed in emission order (matching the materialized engine's
//    (release, id) order when ids are assigned in release order);
//  * job ids are unique and non-negative; the synthetic families emit
//    sequential ids 0, 1, 2, ... so the engine's id -> slot window stays
//    O(live);
//  * next() after exhaustion keeps returning nullopt;
//  * streams are deterministic: same construction, same sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"

namespace ecs {

/// Produces the job sequence of one streaming simulation.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Next job in release order, or nullopt when the stream is exhausted.
  [[nodiscard]] virtual std::optional<Job> next() = 0;

  /// Jobs not yet emitted by next(); -1 when unknown (e.g. a stream read
  /// incrementally from disk). Used only for trace metadata.
  [[nodiscard]] virtual std::int64_t remaining() const { return -1; }
};

/// Adapts a materialized Instance's job list into a stream: emits the jobs
/// sorted by (release, id), ids untouched. This is the equivalence bridge —
/// simulate_stream over it must match simulate over the instance bit for
/// bit — and the migration path for instance files.
class InstanceArrivalStream final : public ArrivalStream {
 public:
  /// `instance` is not owned and must outlive the stream.
  explicit InstanceArrivalStream(const Instance& instance);

  [[nodiscard]] std::string name() const override { return "instance"; }
  [[nodiscard]] std::optional<Job> next() override;
  [[nodiscard]] std::int64_t remaining() const override {
    return static_cast<std::int64_t>(order_.size() - pos_);
  }

 private:
  const Instance* instance_;
  std::vector<JobId> order_;  ///< indices into instance_->jobs, release order
  std::size_t pos_ = 0;
};

}  // namespace ecs
