#include "sim/projection.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ecs {

RemainingAmounts remaining_on(const JobState& state, int target) {
  assert(target != kTargetKeep);
  RemainingAmounts rem;
  if (target == state.alloc) {
    rem.up = clamp_amount(state.rem_up);
    rem.work = clamp_amount(state.rem_work);
    rem.down = clamp_amount(state.rem_down);
    return rem;
  }
  // Re-execution from scratch (progress on the old resource is lost; when
  // the target is a different cloud processor the uplink must be resent).
  if (target == kAllocEdge) {
    rem.work = state.job.work;
  } else {
    rem.up = state.job.up;
    rem.work = state.job.work;
    rem.down = state.job.down;
  }
  return rem;
}

Time advance_through_outages(const IntervalSet* outages, Time start,
                             double duration) {
  // A zero-length leg does not need the resource at all: it must not be
  // pushed through an outage the cursor happens to sit inside.
  if (duration <= 0.0) return start;
  if (outages == nullptr || outages->empty()) return start + duration;
  Time cursor = start;
  double left = duration;
  for (const Interval& iv : outages->intervals()) {
    if (time_le(iv.end, cursor)) continue;  // outage already past
    // Available window before this outage.
    if (time_lt(cursor, iv.begin)) {
      const double window = iv.begin - cursor;
      if (left <= window + kAmountEpsilon) return cursor + left;
      left -= window;
    }
    cursor = std::max(cursor, iv.end);  // suspended through the outage
  }
  return cursor + left;
}

Time uncontended_completion(const Platform& platform, const JobState& state,
                            int target, Time now) {
  const RemainingAmounts rem = remaining_on(state, target);
  if (target == kAllocEdge) {
    return now + rem.work / platform.edge_speed(state.job.origin);
  }
  return now + rem.up + rem.work / platform.cloud_speed(target) + rem.down;
}

Time uncontended_completion(const Instance& instance, const JobState& state,
                            int target, Time now) {
  if (target == kAllocEdge || instance.cloud_outages.empty()) {
    return uncontended_completion(instance.platform, state, target, now);
  }
  const RemainingAmounts rem = remaining_on(state, target);
  const IntervalSet* outages = &instance.cloud_outages.at(target);
  // Uplink, execution and downlink all involve the cloud processor, so
  // each leg suspends during its outages.
  Time cursor = advance_through_outages(outages, now, rem.up);
  cursor = advance_through_outages(
      outages, cursor, rem.work / instance.platform.cloud_speed(target));
  cursor = advance_through_outages(outages, cursor, rem.down);
  return cursor;
}

CloudId fastest_cloud(const Platform& platform) {
  CloudId best = -1;
  double speed = 0.0;
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    if (platform.cloud_speed(k) > speed) {
      speed = platform.cloud_speed(k);
      best = k;
    }
  }
  return best;
}

Time best_uncontended_completion(const Platform& platform,
                                 const JobState& state, Time now) {
  Time best = uncontended_completion(platform, state, kAllocEdge, now);
  if (platform.cloud_count() > 0) {
    // Idle cloud processors of equal speed are interchangeable; the
    // fastest one is the best fresh representative. The current
    // allocation (if any) is probed separately to account for progress.
    best = std::min(best, uncontended_completion(
                              platform, state, fastest_cloud(platform), now));
    if (is_cloud_alloc(state.alloc)) {
      best = std::min(best,
                      uncontended_completion(platform, state, state.alloc, now));
    }
  }
  return best;
}

ResourceClock::ResourceClock(const Platform& platform, Time now)
    : edge_cpu_(platform.edge_count(), now),
      edge_send_(platform.edge_count(), now),
      edge_recv_(platform.edge_count(), now),
      cloud_cpu_(platform.cloud_count(), now),
      cloud_send_(platform.cloud_count(), now),
      cloud_recv_(platform.cloud_count(), now),
      now_(now) {}

ResourceClock::ResourceClock(const Instance& instance, Time now)
    : ResourceClock(instance.platform, now) {
  if (!instance.cloud_outages.empty()) {
    outages_ = &instance.cloud_outages;
  }
}

ResourceClock::Projection ResourceClock::project_detail(
    const Platform& platform, const JobState& state, int target) const {
  const RemainingAmounts rem = remaining_on(state, target);
  const EdgeId o = state.job.origin;
  Projection p{};
  if (target == kAllocEdge) {
    p.up_end = edge_cpu_[o];
    p.exec_end = edge_cpu_[o] + rem.work / platform.edge_speed(o);
    p.done = p.exec_end;
    return p;
  }
  const CloudId k = target;
  const IntervalSet* outages = outages_of(k);
  // An already-uploaded job (rem.up == 0) has no uplink leg: it must not
  // inherit delays from other jobs' committed uplinks on the same ports
  // (commit() guards the port clocks the same way).
  const Time cursor = rem.up > 0.0
                          ? std::max(edge_send_[o], cloud_recv_[k])
                          : now_;
  p.up_end = advance_through_outages(outages, cursor, rem.up);
  p.exec_end =
      advance_through_outages(outages, std::max(p.up_end, cloud_cpu_[k]),
                              rem.work / platform.cloud_speed(k));
  if (rem.down > 0.0) {
    const Time dn_start =
        std::max({p.exec_end, cloud_send_[k], edge_recv_[o]});
    p.done = advance_through_outages(outages, dn_start, rem.down);
  } else {
    p.done = p.exec_end;
  }
  return p;
}

Time ResourceClock::project(const Platform& platform, const JobState& state,
                            int target) const {
  return project_detail(platform, state, target).done;
}

Time ResourceClock::commit(const Platform& platform, const JobState& state,
                           int target) {
  const Projection p = project_detail(platform, state, target);
  const EdgeId o = state.job.origin;
  if (target == kAllocEdge) {
    edge_cpu_[o] = p.exec_end;
    return p.done;
  }
  const CloudId k = target;
  const RemainingAmounts rem = remaining_on(state, target);
  if (rem.up > 0.0) {
    edge_send_[o] = p.up_end;
    cloud_recv_[k] = p.up_end;
  }
  cloud_cpu_[k] = p.exec_end;
  if (rem.down > 0.0) {
    cloud_send_[k] = p.done;
    edge_recv_[o] = p.done;
  }
  return p.done;
}

bool ResourceClock::starts_now(const Platform& /*platform*/,
                               const JobState& state, int target,
                               Time now) const {
  const RemainingAmounts rem = remaining_on(state, target);
  const EdgeId o = state.job.origin;
  if (target == kAllocEdge) {
    return time_le(edge_cpu_[o], now);
  }
  const CloudId k = target;
  // Nothing starts on a cloud inside one of its availability outages.
  if (const IntervalSet* outages = outages_of(k);
      outages != nullptr && outages->contains(now)) {
    return false;
  }
  if (rem.up > 0.0) {
    return time_le(edge_send_[o], now) && time_le(cloud_recv_[k], now);
  }
  if (rem.work > 0.0) {
    return time_le(cloud_cpu_[k], now);
  }
  return time_le(cloud_send_[k], now) && time_le(edge_recv_[o], now);
}

std::pair<int, Time> ResourceClock::best_target(
    const Platform& platform, const JobState& state) const {
  int best_target_id = kAllocEdge;
  Time best = project(platform, state, kAllocEdge);
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    const Time done = project(platform, state, k);
    if (done < best - kDecisionMargin) {
      best = done;
      best_target_id = k;
    }
  }
  return {best_target_id, best};
}

}  // namespace ecs
