#include "sim/projection.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ecs {

RemainingAmounts remaining_on(const JobState& state, int target) {
  assert(target != kTargetKeep);
  RemainingAmounts rem;
  if (target == state.alloc) {
    rem.up = clamp_amount(state.rem_up);
    rem.work = clamp_amount(state.rem_work);
    rem.down = clamp_amount(state.rem_down);
    return rem;
  }
  // Re-execution from scratch (progress on the old resource is lost; when
  // the target is a different cloud processor the uplink must be resent).
  if (target == kAllocEdge) {
    rem.work = state.job.work;
  } else {
    rem.up = state.job.up;
    rem.work = state.job.work;
    rem.down = state.job.down;
  }
  return rem;
}

Time advance_through_outages(const IntervalSet* outages, Time start,
                             double duration) {
  // A zero-length leg does not need the resource at all: it must not be
  // pushed through an outage the cursor happens to sit inside.
  if (duration <= 0.0) return start;
  if (outages == nullptr || outages->empty()) return start + duration;
  Time cursor = start;
  double left = duration;
  for (const Interval& iv : outages->intervals()) {
    if (time_le(iv.end, cursor)) continue;  // outage already past
    // Available window before this outage.
    if (time_lt(cursor, iv.begin)) {
      const double window = iv.begin - cursor;
      if (left <= window + kAmountEpsilon) return cursor + left;
      left -= window;
    }
    cursor = std::max(cursor, iv.end);  // suspended through the outage
  }
  return cursor + left;
}

Time uncontended_completion(const Platform& platform, const JobState& state,
                            int target, Time now) {
  const RemainingAmounts rem = remaining_on(state, target);
  if (target == kAllocEdge) {
    return now + rem.work / platform.edge_speed(state.job.origin);
  }
  return now + rem.up + rem.work / platform.cloud_speed(target) + rem.down;
}

Time uncontended_completion(const Instance& instance, const JobState& state,
                            int target, Time now) {
  if (target == kAllocEdge || instance.cloud_outages.empty()) {
    return uncontended_completion(instance.platform, state, target, now);
  }
  const RemainingAmounts rem = remaining_on(state, target);
  const IntervalSet* outages = &instance.cloud_outages.at(target);
  // Uplink, execution and downlink all involve the cloud processor, so
  // each leg suspends during its outages.
  Time cursor = advance_through_outages(outages, now, rem.up);
  cursor = advance_through_outages(
      outages, cursor, rem.work / instance.platform.cloud_speed(target));
  cursor = advance_through_outages(outages, cursor, rem.down);
  return cursor;
}

CloudId fastest_cloud(const Platform& platform) {
  CloudId best = -1;
  double speed = 0.0;
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    if (platform.cloud_speed(k) > speed) {
      speed = platform.cloud_speed(k);
      best = k;
    }
  }
  return best;
}

Time best_uncontended_completion(const Platform& platform,
                                 const JobState& state, Time now) {
  Time best = uncontended_completion(platform, state, kAllocEdge, now);
  if (platform.cloud_count() > 0) {
    // Idle cloud processors of equal speed are interchangeable; the
    // fastest one is the best fresh representative. The current
    // allocation (if any) is probed separately to account for progress.
    best = std::min(best, uncontended_completion(
                              platform, state, fastest_cloud(platform), now));
    if (is_cloud_alloc(state.alloc)) {
      best = std::min(best,
                      uncontended_completion(platform, state, state.alloc, now));
    }
  }
  return best;
}

ResourceClock::ResourceClock(const Platform& platform, Time now) {
  bind(platform, now);
}

ResourceClock::ResourceClock(const Instance& instance, Time now) {
  bind(instance, now);
}

void ResourceClock::bind(const Platform& platform, Time now) {
  const auto edges = static_cast<std::size_t>(platform.edge_count());
  const auto clouds = static_cast<std::size_t>(platform.cloud_count());
  const auto size_lane = [](Lane& lane, std::size_t n) {
    lane.time.assign(n, 0.0);
    lane.epoch.assign(n, 0);
  };
  size_lane(edge_cpu_, edges);
  size_lane(edge_send_, edges);
  size_lane(edge_recv_, edges);
  size_lane(cloud_cpu_, clouds);
  size_lane(cloud_send_, clouds);
  size_lane(cloud_recv_, clouds);
  outages_ = nullptr;
  epoch_ = 0;
  reset(now);
}

void ResourceClock::bind(const Instance& instance, Time now) {
  bind(instance.platform, now);
  if (!instance.cloud_outages.empty()) {
    outages_ = &instance.cloud_outages;
  }
}

void ResourceClock::reset(Time now) noexcept {
  now_ = now;
  if (++epoch_ == 0) {
    // Epoch wrap: stale tags from 2^32 resets ago could read as current.
    // Wipe them (rare: once per 4 billion resets) and restart at 1.
    for (Lane* lane : {&edge_cpu_, &edge_send_, &edge_recv_, &cloud_cpu_,
                       &cloud_send_, &cloud_recv_}) {
      std::fill(lane->epoch.begin(), lane->epoch.end(), 0U);
    }
    epoch_ = 1;
  }
}

ResourceClock::Projection ResourceClock::project_detail(
    const Platform& platform, const JobState& state, int target) const {
  const RemainingAmounts rem = remaining_on(state, target);
  const auto o = static_cast<std::size_t>(state.job.origin);
  Projection p{};
  if (target == kAllocEdge) {
    p.up_end = rd(edge_cpu_, o);
    p.exec_end = rd(edge_cpu_, o) + rem.work / platform.edge_speed(state.job.origin);
    p.done = p.exec_end;
    return p;
  }
  const CloudId k = target;
  const auto kc = static_cast<std::size_t>(k);
  const IntervalSet* outages = outages_of(k);
  // An already-uploaded job (rem.up == 0) has no uplink leg: it must not
  // inherit delays from other jobs' committed uplinks on the same ports
  // (commit() guards the port clocks the same way).
  const Time cursor = rem.up > 0.0
                          ? std::max(rd(edge_send_, o), rd(cloud_recv_, kc))
                          : now_;
  p.up_end = advance_through_outages(outages, cursor, rem.up);
  p.exec_end =
      advance_through_outages(outages, std::max(p.up_end, rd(cloud_cpu_, kc)),
                              rem.work / platform.cloud_speed(k));
  if (rem.down > 0.0) {
    const Time dn_start =
        std::max({p.exec_end, rd(cloud_send_, kc), rd(edge_recv_, o)});
    p.done = advance_through_outages(outages, dn_start, rem.down);
  } else {
    p.done = p.exec_end;
  }
  return p;
}

Time ResourceClock::project(const Platform& platform, const JobState& state,
                            int target) const {
  return project_detail(platform, state, target).done;
}

Time ResourceClock::commit(const Platform& platform, const JobState& state,
                           int target) {
  const Projection p = project_detail(platform, state, target);
  const auto o = static_cast<std::size_t>(state.job.origin);
  if (target == kAllocEdge) {
    wr(edge_cpu_, o, p.exec_end);
    return p.done;
  }
  const auto kc = static_cast<std::size_t>(target);
  const RemainingAmounts rem = remaining_on(state, target);
  if (rem.up > 0.0) {
    wr(edge_send_, o, p.up_end);
    wr(cloud_recv_, kc, p.up_end);
  }
  wr(cloud_cpu_, kc, p.exec_end);
  if (rem.down > 0.0) {
    wr(cloud_send_, kc, p.done);
    wr(edge_recv_, o, p.done);
  }
  return p.done;
}

bool ResourceClock::starts_now(const Platform& /*platform*/,
                               const JobState& state, int target,
                               Time now) const {
  const RemainingAmounts rem = remaining_on(state, target);
  const auto o = static_cast<std::size_t>(state.job.origin);
  if (target == kAllocEdge) {
    return time_le(rd(edge_cpu_, o), now);
  }
  const CloudId k = target;
  const auto kc = static_cast<std::size_t>(k);
  // Nothing starts on a cloud inside one of its availability outages.
  if (const IntervalSet* outages = outages_of(k);
      outages != nullptr && outages->contains(now)) {
    return false;
  }
  if (rem.up > 0.0) {
    return time_le(rd(edge_send_, o), now) && time_le(rd(cloud_recv_, kc), now);
  }
  if (rem.work > 0.0) {
    return time_le(rd(cloud_cpu_, kc), now);
  }
  return time_le(rd(cloud_send_, kc), now) && time_le(rd(edge_recv_, o), now);
}

std::pair<int, Time> ResourceClock::best_target(
    const Platform& platform, const JobState& state) const {
  int best_target_id = kAllocEdge;
  Time best = project(platform, state, kAllocEdge);
  for (CloudId k = 0; k < platform.cloud_count(); ++k) {
    const Time done = project(platform, state, k);
    if (done < best - kDecisionMargin) {
      best = done;
      best_target_id = k;
    }
  }
  return {best_target_id, best};
}

}  // namespace ecs
