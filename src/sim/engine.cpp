#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace ecs {
namespace {

/// Metric-instrument handles, resolved once per run so the hot path never
/// touches the registry's name maps. Only valid when a registry is set.
struct Instruments {
  using Id = obs::MetricsRegistry::Id;
  Id events, decisions, reassignments, preemptions, fault_aborts;
  Id uplink_retransmits, downlink_retransmits, message_losses;
  Id queue_depth;             ///< gauge; its max mirrors max_queue_depth
  Id stretch, queue_wait;     ///< histograms
  Id phase_policy, phase_allocate, phase_activate, phase_faults;  ///< timers

  explicit Instruments(obs::MetricsRegistry& registry)
      : events(registry.counter("engine.events")),
        decisions(registry.counter("engine.decisions")),
        reassignments(registry.counter("engine.reassignments")),
        preemptions(registry.counter("engine.preemptions")),
        fault_aborts(registry.counter("engine.fault_aborts")),
        uplink_retransmits(registry.counter("engine.uplink_retransmits")),
        downlink_retransmits(registry.counter("engine.downlink_retransmits")),
        message_losses(registry.counter("engine.message_losses")),
        queue_depth(registry.gauge("engine.ready_queue_depth")),
        stretch(registry.histogram(
            "job.stretch", {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0,
                            24.0, 32.0, 64.0, 128.0})),
        queue_wait(registry.histogram(
            "job.queue_wait",
            {0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0})),
        phase_policy(registry.timer("engine.phase.policy")),
        phase_allocate(registry.timer("engine.phase.allocate")),
        phase_activate(registry.timer("engine.phase.activate")),
        phase_faults(registry.timer("engine.phase.faults")) {}
};

[[nodiscard]] obs::TracePoint span_point(Activity activity) {
  switch (activity) {
    case Activity::kUplink:
      return obs::TracePoint::kUplink;
    case Activity::kDownlink:
      return obs::TracePoint::kDownlink;
    case Activity::kCompute:
    case Activity::kNone:
      break;
  }
  return obs::TracePoint::kExec;
}

/// Per-job recording of the currently open activity interval plus the
/// in-progress run record.
struct Recorder {
  RunRecord current;
  Activity open_activity = Activity::kNone;
  Time open_start = 0.0;

  void open(Activity activity, Time now) {
    open_activity = activity;
    open_start = now;
  }

  void close(Time now) {
    if (open_activity == Activity::kNone) return;
    switch (open_activity) {
      case Activity::kUplink:
        current.uplink.add(open_start, now);
        break;
      case Activity::kCompute:
        current.exec.add(open_start, now);
        break;
      case Activity::kDownlink:
        current.downlink.add(open_start, now);
        break;
      case Activity::kNone:
        break;
    }
    open_activity = Activity::kNone;
  }

  [[nodiscard]] bool has_history() const noexcept {
    return !current.uplink.empty() || !current.exec.empty() ||
           !current.downlink.empty();
  }
};

/// Busy markers for one decision round: which job holds each resource.
struct BusyMap {
  std::vector<JobId> edge_cpu, edge_send, edge_recv;
  std::vector<JobId> cloud_cpu, cloud_send, cloud_recv;

  explicit BusyMap(const Platform& platform)
      : edge_cpu(platform.edge_count(), -1),
        edge_send(platform.edge_count(), -1),
        edge_recv(platform.edge_count(), -1),
        cloud_cpu(platform.cloud_count(), -1),
        cloud_send(platform.cloud_count(), -1),
        cloud_recv(platform.cloud_count(), -1) {}

  void clear() {
    std::fill(edge_cpu.begin(), edge_cpu.end(), -1);
    std::fill(edge_send.begin(), edge_send.end(), -1);
    std::fill(edge_recv.begin(), edge_recv.end(), -1);
    std::fill(cloud_cpu.begin(), cloud_cpu.end(), -1);
    std::fill(cloud_send.begin(), cloud_send.end(), -1);
    std::fill(cloud_recv.begin(), cloud_recv.end(), -1);
  }
};

/// One wake-up of the fault timeline: a crash start, a crash repair
/// (recovery), or a message-loss instant.
struct FaultWake {
  Time time = 0.0;
  std::size_t spec = 0;  ///< index into the plan
  bool recovery = false;
};

/// Versioned entry of the lazy-deletion min-heap over predicted activity
/// end times. An entry is valid while its version matches the job's
/// current one AND the job is still mid-activity; preemption, completion,
/// re-execution and fault aborts never search the heap — they simply leave
/// the entry behind to be skipped (or compacted away) later.
struct HeapEntry {
  Time time = 0.0;
  JobId job = -1;
  std::uint32_t version = 0;
};

/// std::push_heap-style comparator making heap_.front() the earliest end.
[[nodiscard]] bool heap_later(const HeapEntry& a, const HeapEntry& b) {
  return a.time > b.time;
}

class Engine {
 public:
  Engine(const Instance& instance, Policy& policy, const EngineConfig& config)
      : instance_(instance),
        platform_(instance.platform),
        policy_(policy),
        config_(config),
        busy_(instance.platform),
        trace_(config.trace),
        metrics_(config.metrics) {
    // A watchdog taps the trace stream through an internal tee, so it
    // works with or without a user trace sink attached.
    if (config.watchdog != nullptr) {
      tee_.add(config.trace);
      tee_.add(config.watchdog);
      trace_ = &tee_;
    }
    provenance_on_ =
        (config.provenance || config.watchdog != nullptr) && trace_ != nullptr;
    if (metrics_ != nullptr) ids_.emplace(*metrics_);
    require_valid_instance(instance_);
    config_.faults.normalize();
    require_valid_fault_plan(config_.faults, platform_);
    max_events_ = config_.max_events != 0
                      ? config_.max_events
                      : std::max<std::uint64_t>(
                            10'000, 512ULL * instance_.jobs.size());
  }

  SimResult run() {
    init();
    while (remaining_jobs_ > 0) {
      step();
    }
    return finish();
  }

 private:
  void init() {
    const int n = instance_.job_count();
    states_.resize(n);
    recorders_.resize(n);
    started_.assign(n, 0);
    live_pos_.assign(n, -1);
    entry_version_.assign(n, 0);
    seen_round_.assign(n, 0);
    live_ids_.reserve(16);
    active_ids_.reserve(16);
    if (trace_ != nullptr) {
      spans_.assign(n, SpanState{});
      run_index_.assign(n, 0);
      if (provenance_on_) {
        last_dir_target_.assign(n, kDirectiveNone);
        last_dir_reason_.assign(n, 0);
      }
      obs::TraceMeta meta;
      meta.policy = policy_.name();
      meta.edge_count = platform_.edge_count();
      meta.cloud_count = platform_.cloud_count();
      meta.job_count = n;
      trace_->begin_trace(meta);
    }
    for (int i = 0; i < n; ++i) {
      JobState& s = states_[i];
      s.job = instance_.jobs[i];
      s.best_time = platform_.best_time(s.job);
    }
    // Outage boundaries (cloud availability windows): every begin and end
    // is a wake-up point where the engine re-arbitrates, so an in-flight
    // activity on a cloud that becomes unavailable is preempted exactly at
    // the boundary and can resume at the next one.
    for (const IntervalSet& outages : instance_.cloud_outages) {
      for (const Interval& iv : outages.intervals()) {
        boundaries_.push_back(iv.begin);
        boundaries_.push_back(iv.end);
      }
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    next_boundary_ = 0;

    // Fault timeline: a wake-up per crash start, crash repair, and loss
    // instant, so every fault lands exactly on an engine event. Recoveries
    // sort before same-instant faults (a cloud repaired at t can crash
    // again at t, never the other way around).
    cloud_down_.assign(platform_.cloud_count(), 0);
    for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
      const FaultSpec& spec = config_.faults.faults[f];
      wakes_.push_back(FaultWake{spec.begin, f, false});
      if (spec.kind == FaultKind::kCrash) {
        wakes_.push_back(FaultWake{spec.end, f, true});
      }
    }
    std::sort(wakes_.begin(), wakes_.end(),
              [](const FaultWake& a, const FaultWake& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.recovery != b.recovery) return a.recovery;
                return a.spec < b.spec;
              });
    next_wake_ = 0;

    release_order_.resize(n);
    for (int i = 0; i < n; ++i) release_order_[i] = i;
    std::sort(release_order_.begin(), release_order_.end(),
              [&](JobId a, JobId b) {
                const Time ra = states_[a].job.release;
                const Time rb = states_[b].job.release;
                return ra != rb ? ra < rb : a < b;
              });
    next_release_ = 0;
    remaining_jobs_ = n;
    // Jump to the first release; faults scheduled earlier fire now (no job
    // existed to be hit, but the down/up state and the monitoring events
    // must be correct from the very first decision).
    now_ = n > 0 ? states_[release_order_[0]].job.release : 0.0;
    fire_faults();
    fire_releases();
    stats_.events += events_.size();
  }

  // --- live set: released-and-unfinished job ids, O(1) insert/erase ---

  void live_insert(JobId id) {
    live_pos_[id] = static_cast<std::int32_t>(live_ids_.size());
    live_ids_.push_back(id);
  }

  void live_erase(JobId id) {
    const std::int32_t pos = live_pos_[id];
    const JobId moved = live_ids_.back();
    live_ids_[pos] = moved;
    live_pos_[moved] = pos;
    live_ids_.pop_back();
    live_pos_[id] = -1;
  }

  // --- lazy-deletion heap over predicted activity end times ---

  void heap_push(JobId id, Time end) {
    heap_.push_back(HeapEntry{end, id, ++entry_version_[id]});
    std::push_heap(heap_.begin(), heap_.end(), &heap_later);
  }

  [[nodiscard]] bool heap_entry_valid(const HeapEntry& e) const {
    return e.version == entry_version_[e.job] &&
           states_[e.job].active != Activity::kNone;
  }

  /// Skims invalidated tops and returns the earliest valid activity end
  /// (infinity when nothing is running).
  [[nodiscard]] Time next_activity_end() {
    while (!heap_.empty() && !heap_entry_valid(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), &heap_later);
      heap_.pop_back();
    }
    return heap_.empty() ? kTimeInfinity : heap_.front().time;
  }

  /// Keeps the heap proportional to the active set: once stale entries
  /// dominate, drop them all in one O(size) sweep (amortized O(1)/push).
  void maybe_compact_heap() {
    if (heap_.size() < 64 || heap_.size() < 4 * active_ids_.size()) return;
    std::erase_if(heap_,
                  [this](const HeapEntry& e) { return !heap_entry_valid(e); });
    std::make_heap(heap_.begin(), heap_.end(), &heap_later);
  }

  /// Releases every job whose release date is <= now (within tolerance).
  void fire_releases() {
    while (next_release_ < release_order_.size()) {
      JobState& s = states_[release_order_[next_release_]];
      if (!time_le(s.job.release, now_)) break;
      s.released = true;
      live_insert(s.job.id);
      events_.push_back(Event{EventKind::kRelease, s.job.id, now_});
      if (trace_ != nullptr) {
        trace_instant(obs::TracePoint::kRelease, s.job.id, -1, 0.0);
      }
      ++next_release_;
    }
  }

  // --- trace emission helpers; callers guard on trace_ != nullptr ---

  /// Closes the job's open activity span, emitting it ending at `now_`.
  void trace_close_span(JobId id) {
    SpanState& span = spans_[id];
    if (span.activity == Activity::kNone) return;
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kSpan;
    rec.point = span_point(span.activity);
    rec.job = id;
    rec.run = run_index_[id];
    rec.alloc = span.alloc;
    rec.origin = states_[id].job.origin;
    rec.begin = span.begin;
    rec.end = now_;
    trace_->record(rec);
    span.activity = Activity::kNone;
  }

  void trace_instant(obs::TracePoint point, JobId job, int cloud,
                     double value) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = point;
    rec.job = job;
    rec.cloud = cloud;
    rec.begin = rec.end = now_;
    rec.value = value;
    if (job >= 0) {
      rec.run = run_index_[job];
      rec.origin = states_[job].job.origin;
      rec.alloc = states_[job].alloc;
    }
    trace_->record(rec);
  }

  /// Emits one decision-provenance instant (TracePoint::kDirective):
  /// alloc = resolved target, cloud = allocation before the directive,
  /// value = priority, reason = the policy's ReasonCode. Caller guards on
  /// provenance_on_.
  void trace_directive(JobId job, int source, int target,
                       const Directive& d) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = obs::TracePoint::kDirective;
    rec.job = job;
    rec.run = run_index_[job];
    rec.origin = states_[job].job.origin;
    rec.alloc = target;
    rec.cloud = source;
    rec.begin = rec.end = now_;
    rec.value = d.priority;
    rec.reason = static_cast<int>(d.reason);
    trace_->record(rec);
    last_dir_target_[job] = target;
    last_dir_reason_[job] = static_cast<int>(d.reason);
  }

  /// Provenance for a directive that does not move the job (kTargetKeep or
  /// an explicit re-confirmation of the current allocation). Policies emit
  /// these at EVERY event, so identical repeats are deduplicated: a keep is
  /// recorded when its resolved target or reason differs from the job's
  /// last emitted directive.
  void trace_keep_directive(const Directive& d) {
    if (d.job < 0 || d.job >= static_cast<JobId>(states_.size())) return;
    const JobState& s = states_[d.job];
    if (!s.live()) return;
    if (last_dir_target_[d.job] == s.alloc &&
        last_dir_reason_[d.job] == static_cast<int>(d.reason)) {
      return;
    }
    trace_directive(d.job, s.alloc, s.alloc, d);
  }

  void trace_counter(obs::TracePoint point, double value) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kCounter;
    rec.point = point;
    rec.begin = rec.end = now_;
    rec.value = value;
    trace_->record(rec);
  }

  void step() {
    decide_and_activate();
    advance_to_next_event();
  }

  void decide_and_activate() {
    // 1. Ask the policy what to do about the events that just fired. The
    //    sorted live index gives SimView::live_jobs() in O(live) and, below,
    //    the id-ordered implicit-keep walk the old full-state scan provided.
    live_sorted_.assign(live_ids_.begin(), live_ids_.end());
    std::sort(live_sorted_.begin(), live_sorted_.end());
    const SimView view(instance_, states_, now_, &live_sorted_);
    const auto t0 = std::chrono::steady_clock::now();
    // One buffer, reused round after round: with the per-policy workspaces
    // (DESIGN.md §6) the steady-state policy hot path allocates nothing.
    std::vector<Directive>& directives = directives_;
    directives.clear();
    policy_.decide(view, events_, directives);
    const auto t1 = std::chrono::steady_clock::now();
    stats_.policy_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++stats_.decisions;
    if (metrics_ != nullptr) {
      metrics_->add_nanos(
          ids_->phase_policy,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
    }
    if (trace_ != nullptr) {
      trace_instant(obs::TracePoint::kDecision, -1, -1,
                    static_cast<double>(directives.size()));
    }
    events_.clear();

    // 2. Close all open intervals; they will reopen seamlessly below
    //    (IntervalSet::add merges touching pieces). A job still mid-activity
    //    is flagged so arbitration can spot preemptions: only these jobs —
    //    at most one per processor or port — can lose a resource they still
    //    need. The flag is consumed inside this round (apply_directive or
    //    try_activate), never carried over. Only members of the active set
    //    can be mid-activity; entries already stopped by a completion,
    //    fault abort or message loss are skipped.
    for (const JobId id : active_ids_) {
      JobState& s = states_[id];
      if (s.active != Activity::kNone) {
        s.was_active = true;
        recorders_[id].close(now_);
        s.active = Activity::kNone;
      }
    }
    active_ids_.clear();

    // 3. Apply allocation changes (the re-execution rule).
    {
      const obs::ScopeTimer timer(metrics_,
                                  metrics_ != nullptr ? ids_->phase_allocate
                                                      : 0);
      for (const Directive& d : directives) {
        apply_directive(d);
      }
    }

    // 4. Activate activities in priority order. Jobs without an explicit
    //    directive keep their allocation at the lowest priority, ordered by
    //    id, so the engine stays work-conserving and deterministic.
    granted_ = 0;
    {
      const obs::ScopeTimer timer(metrics_,
                                  metrics_ != nullptr ? ids_->phase_activate
                                                      : 0);
      order_.clear();
      for (const Directive& d : directives) {
        if (d.job >= 0 && d.job < static_cast<JobId>(states_.size()) &&
            states_[d.job].live()) {
          order_.push_back({d.priority, d.job});
        }
      }
      // Round stamps replace a per-round O(n) boolean reset: a job is
      // "seen" iff its stamp equals the current round's.
      if (++round_ == 0) {  // wrap: old stamps could collide, wipe them
        seen_round_.assign(seen_round_.size(), 0);
        round_ = 1;
      }
      for (const auto& [prio, id] : order_) seen_round_[id] = round_;
      for (const JobId id : live_sorted_) {
        if (seen_round_[id] != round_) {
          order_.push_back({kTimeInfinity, id});
        }
      }
      std::stable_sort(order_.begin(), order_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first != b.first ? a.first < b.first
                                                   : a.second < b.second;
                       });

      busy_.clear();
      for (const auto& [prio, id] : order_) {
        try_activate(states_[id]);
      }
      // Completions must fire in job-id order (policies and traces observe
      // the event order), so keep the active set sorted between rounds.
      std::sort(active_ids_.begin(), active_ids_.end());
      maybe_compact_heap();
    }

    // 5. Ready-queue depth after arbitration: live jobs holding no
    //    resource. A job holds a resource iff try_activate granted it one
    //    this round, so the depth falls out of two counters with no extra
    //    pass over states_.
    const std::uint64_t waiting = live_ids_.size() - granted_;
    if (waiting > stats_.max_queue_depth) stats_.max_queue_depth = waiting;
    if (metrics_ != nullptr) {
      metrics_->gauge_set(ids_->queue_depth, static_cast<double>(waiting));
    }
    if (trace_ != nullptr) sample_counters(waiting);
  }

  /// Emits the event-granularity time series into the trace.
  void sample_counters(std::uint64_t waiting) {
    trace_counter(obs::TracePoint::kReadyQueueDepth,
                  static_cast<double>(waiting));
    double live_max = done_max_stretch_;
    for (const JobId id : live_sorted_) {
      const JobState& s = states_[id];
      const double denom = s.best_time > 0.0 ? s.best_time : 1.0;
      live_max = std::max(live_max, (now_ - s.job.release) / denom);
    }
    trace_counter(obs::TracePoint::kLiveMaxStretch, live_max);
    if (platform_.edge_count() > 0) {
      int busy = 0;
      for (const JobId id : busy_.edge_cpu) busy += id != -1 ? 1 : 0;
      trace_counter(obs::TracePoint::kEdgeUtilization,
                    static_cast<double>(busy) / platform_.edge_count());
    }
    if (platform_.cloud_count() > 0) {
      int busy = 0;
      for (const JobId id : busy_.cloud_cpu) busy += id != -1 ? 1 : 0;
      trace_counter(obs::TracePoint::kCloudUtilization,
                    static_cast<double>(busy) / platform_.cloud_count());
    }
  }

  void apply_directive(const Directive& d) {
    if (d.target == kTargetKeep) {
      // Keeps skip all validation (a keep for a finished or unknown job is
      // harmless); provenance still wants the deduplicated decision.
      if (provenance_on_) trace_keep_directive(d);
      return;
    }
    if (d.job < 0 || d.job >= static_cast<JobId>(states_.size())) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued a directive for unknown job " +
                               std::to_string(d.job));
    }
    JobState& s = states_[d.job];
    if (!s.live()) return;
    if (d.target != kAllocEdge &&
        (!is_cloud_alloc(d.target) || d.target >= platform_.cloud_count())) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued invalid target " +
                               std::to_string(d.target) + " for job " +
                               std::to_string(d.job));
    }
    if (d.target == s.alloc) {
      if (provenance_on_) trace_keep_directive(d);
      return;
    }
    if (provenance_on_) trace_directive(d.job, s.alloc, d.target, d);

    Recorder& rec = recorders_[d.job];
    rec.close(now_);
    const int old_alloc = s.alloc;
    if (s.alloc != kAllocUnassigned) {
      // Abandon the current run; its history stays on the books because it
      // physically occupied resources.
      ++s.reassignments;
      ++stats_.reassignments;
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(d.job, std::move(rec.current));
      }
      rec.current = RunRecord{};
    }
    // A reassignment is not a preemption: the job lost its resource because
    // its allocation changed, so drop the round's mid-activity flag.
    s.was_active = false;
    if (trace_ != nullptr) {
      trace_close_span(d.job);
      if (old_alloc != kAllocUnassigned) ++run_index_[d.job];
    }
    s.alloc = d.target;
    rec.current.alloc = d.target;
    if (d.target == kAllocEdge) {
      s.rem_up = 0.0;
      s.rem_work = s.job.work;
      s.rem_down = 0.0;
    } else {
      s.rem_up = s.job.up;
      s.rem_work = s.job.work;
      s.rem_down = s.job.down;
    }
    if (trace_ != nullptr && old_alloc != kAllocUnassigned) {
      trace_instant(obs::TracePoint::kReassignment, d.job, -1,
                    static_cast<double>(old_alloc));
    }
  }

  /// Consumes a job's was_active flag after it failed arbitration: a job
  /// that was mid-activity, kept its allocation, and got nothing was
  /// preempted (outprioritized, or its cloud entered an outage / crash
  /// window). A no-op for jobs that were idle or already re-granted.
  void note_preemption(JobState& s) {
    if (!s.was_active) return;
    s.was_active = false;
    ++stats_.preemptions;
    if (trace_ != nullptr) {
      trace_close_span(s.job.id);
      trace_instant(obs::TracePoint::kPreemption, s.job.id, -1, 0.0);
    }
  }

  void try_activate(JobState& s) {
    if (!s.live()) return;
    const Activity needed = s.next_activity();
    if (needed == Activity::kNone) {
      note_preemption(s);
      return;
    }
    const EdgeId o = s.job.origin;
    const JobId id = s.job.id;
    // A cloud processor inside an availability outage serves nothing —
    // neither computation nor communication involving it. The same holds
    // for an unannounced crash, except that the policy was never told.
    if (is_cloud_alloc(s.alloc) &&
        (!instance_.cloud_available(s.alloc, now_) ||
         cloud_down_[s.alloc] != 0)) {
      note_preemption(s);
      return;
    }
    switch (needed) {
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          if (busy_.edge_cpu[o] != -1) {
            note_preemption(s);
            return;
          }
          busy_.edge_cpu[o] = id;
        } else {
          if (busy_.cloud_cpu[s.alloc] != -1) {
            note_preemption(s);
            return;
          }
          busy_.cloud_cpu[s.alloc] = id;
        }
        break;
      case Activity::kUplink:
        if (busy_.edge_send[o] != -1 || busy_.cloud_recv[s.alloc] != -1) {
          note_preemption(s);
          return;
        }
        busy_.edge_send[o] = id;
        busy_.cloud_recv[s.alloc] = id;
        break;
      case Activity::kDownlink:
        if (busy_.cloud_send[s.alloc] != -1 || busy_.edge_recv[o] != -1) {
          note_preemption(s);
          return;
        }
        busy_.cloud_send[s.alloc] = id;
        busy_.edge_recv[o] = id;
        break;
      case Activity::kNone:
        return;
    }
    s.active = needed;
    s.was_active = false;
    // Lazy progress accounting: anchor the activity at now_ with its
    // consumption rate, enter the active set, and predict the end time
    // analytically. The prediction is exact — rates only change through a
    // re-grant, which pushes a fresh (versioned) entry.
    s.rate = needed == Activity::kCompute
                 ? (s.alloc == kAllocEdge ? platform_.edge_speed(o)
                                          : platform_.cloud_speed(s.alloc))
                 : 1.0;
    s.last_update = now_;
    active_ids_.push_back(id);
    heap_push(id, activity_end(s));
    ++granted_;
    recorders_[id].open(needed, now_);
    if (started_[id] == 0) {
      started_[id] = 1;
      if (metrics_ != nullptr) {
        metrics_->observe(ids_->queue_wait, now_ - s.job.release);
      }
    }
    if (trace_ != nullptr) {
      // Reopening the same activity on the same allocation continues the
      // current span; anything else starts a fresh one.
      SpanState& span = spans_[id];
      if (span.activity != needed || span.alloc != s.alloc) {
        trace_close_span(id);
        span.activity = needed;
        span.alloc = s.alloc;
        span.begin = now_;
      }
    }
  }

  [[nodiscard]] Time activity_end(const JobState& s) const {
    switch (s.active) {
      case Activity::kUplink:
        return now_ + clamp_amount(s.rem_up);
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          return now_ +
                 clamp_amount(s.rem_work) / platform_.edge_speed(s.job.origin);
        }
        return now_ + clamp_amount(s.rem_work) / platform_.cloud_speed(s.alloc);
      case Activity::kDownlink:
        return now_ + clamp_amount(s.rem_down);
      case Activity::kNone:
        return kTimeInfinity;
    }
    return kTimeInfinity;
  }

  void advance_to_next_event() {
    // Earliest predicted activity end, straight off the heap top — no scan.
    Time next = next_activity_end();
    if (next_release_ < release_order_.size()) {
      next = std::min(next,
                      states_[release_order_[next_release_]].job.release);
    }
    while (next_boundary_ < boundaries_.size() &&
           time_le(boundaries_[next_boundary_], now_)) {
      ++next_boundary_;
    }
    if (next_boundary_ < boundaries_.size()) {
      next = std::min(next, boundaries_[next_boundary_]);
    }
    if (next_wake_ < wakes_.size()) {
      next = std::min(next, wakes_[next_wake_].time);
    }
    if (next == kTimeInfinity) {
      std::ostringstream os;
      os << "simulation stalled at t=" << now_ << ": policy "
         << policy_.name() << " left all " << remaining_jobs_
         << " live job(s) without a runnable activity and no event is "
            "pending; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }

    // Materialize progress for the active set only (every member was
    // re-anchored at now_ this round, so the elapsed span is next - now_).
    for (const JobId id : active_ids_) {
      states_[id].advance_progress(next);
    }
    now_ = next;

    // Fire completions. active_ids_ is id-sorted, so completion events are
    // emitted in job-id order — the order policies and traces observe.
    for (const JobId id : active_ids_) {
      JobState& s = states_[id];
      if (s.active == Activity::kNone) continue;
      bool fired = false;
      switch (s.active) {
        case Activity::kUplink:
          if (amount_done(s.rem_up)) {
            s.rem_up = 0.0;
            events_.push_back(Event{EventKind::kUplinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kCompute:
          if (amount_done(s.rem_work)) {
            s.rem_work = 0.0;
            events_.push_back(Event{EventKind::kComputeDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kDownlink:
          if (amount_done(s.rem_down)) {
            s.rem_down = 0.0;
            events_.push_back(
                Event{EventKind::kDownlinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kNone:
          break;
      }
      if (fired) {
        recorders_[s.job.id].close(now_);
        s.active = Activity::kNone;
        if (trace_ != nullptr) trace_close_span(s.job.id);
        if (s.all_amounts_done()) {
          s.done = true;
          live_erase(s.job.id);
          s.completion = now_;
          --remaining_jobs_;
          if (trace_ != nullptr || metrics_ != nullptr) {
            const double denom = s.best_time > 0.0 ? s.best_time : 1.0;
            const double stretch = (now_ - s.job.release) / denom;
            done_max_stretch_ = std::max(done_max_stretch_, stretch);
            if (metrics_ != nullptr) {
              metrics_->observe(ids_->stretch, stretch);
            }
            if (trace_ != nullptr) {
              trace_instant(obs::TracePoint::kCompletion, s.job.id, -1,
                            stretch);
            }
          }
        }
      }
    }
    fire_faults();
    fire_releases();

    stats_.events += events_.size();
    if (stats_.events > max_events_) {
      std::ostringstream os;
      os << "event cap (" << max_events_ << ") exceeded at t=" << now_
         << " by policy " << policy_.name() << " with " << remaining_jobs_
         << " live job(s) after " << stats_.reassignments
         << " reassignment(s) and " << stats_.fault_aborts
         << " fault abort(s); the policy is likely thrashing "
            "re-executions; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }
  }

  /// Compact dump of the live jobs — id, allocation, current activity —
  /// for the stall / event-cap diagnostics. Capped at 8 entries.
  [[nodiscard]] std::string describe_live_jobs() const {
    std::vector<JobId> live(live_ids_.begin(), live_ids_.end());
    std::sort(live.begin(), live.end());
    std::ostringstream os;
    int shown = 0;
    for (const JobId id : live) {
      const JobState& s = states_[id];
      if (shown == 8) {
        os << ", ...";
        break;
      }
      if (shown > 0) os << ", ";
      os << "J" << s.job.id << "(";
      if (s.alloc == kAllocUnassigned) {
        os << "unassigned";
      } else if (s.alloc == kAllocEdge) {
        os << "edge" << s.job.origin;
      } else {
        os << "cloud" << s.alloc;
        if (cloud_down_[s.alloc] != 0) os << ":down";
      }
      os << "/" << to_string(s.active) << ")";
      ++shown;
    }
    if (shown == 0) os << "none";
    return os.str();
  }

  /// Processes every fault-timeline wake-up that is due at `now_`: flips
  /// the down/up state, fires the monitoring events, aborts crash victims
  /// (progress fully discarded — the machine's memory is gone) and corrupts
  /// in-flight messages at loss instants.
  void fire_faults() {
    if (next_wake_ >= wakes_.size() ||
        !time_le(wakes_[next_wake_].time, now_)) {
      return;  // nothing due; skip the phase timer's clock reads
    }
    const obs::ScopeTimer timer(metrics_,
                                metrics_ != nullptr ? ids_->phase_faults : 0);
    while (next_wake_ < wakes_.size() &&
           time_le(wakes_[next_wake_].time, now_)) {
      const FaultWake& wake = wakes_[next_wake_];
      const FaultSpec& spec = config_.faults.faults[wake.spec];
      if (wake.recovery) {
        cloud_down_[spec.cloud] = 0;
        push_fault_event(Event{EventKind::kRecovery, -1, now_, spec.cloud});
        if (trace_ != nullptr) {
          trace_instant(obs::TracePoint::kRecovery, -1, spec.cloud, 0.0);
        }
      } else if (spec.kind == FaultKind::kCrash) {
        cloud_down_[spec.cloud] = 1;
        push_fault_event(Event{EventKind::kFault, -1, now_, spec.cloud});
        if (trace_ != nullptr) {
          trace_instant(obs::TracePoint::kFault, -1, spec.cloud, 0.0);
        }
        abort_jobs_on_cloud(spec.cloud);
      } else {
        corrupt_in_flight_message(spec);
      }
      ++next_wake_;
    }
  }

  /// Crash semantics: every job allocated to the crashed cloud loses ALL
  /// progress (uplink included — the data sat on the dead machine, not in
  /// the network) and returns to the unassigned state; the partial run
  /// stays on the books as an abandoned run because it physically occupied
  /// resources.
  void abort_jobs_on_cloud(CloudId crashed) {
    // Victims come from the live set (no instance-wide sweep); sort so the
    // abort events keep firing in job-id order like the old full scan.
    victims_.clear();
    for (const JobId id : live_ids_) {
      if (states_[id].alloc == crashed) victims_.push_back(id);
    }
    std::sort(victims_.begin(), victims_.end());
    for (const JobId id : victims_) {
      JobState& s = states_[id];
      if (trace_ != nullptr) {
        trace_close_span(s.job.id);
        trace_instant(obs::TracePoint::kFault, s.job.id, crashed, 0.0);
        ++run_index_[s.job.id];
      }
      Recorder& rec = recorders_[s.job.id];
      rec.close(now_);
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(s.job.id, std::move(rec.current));
      }
      rec.current = RunRecord{};
      s.alloc = kAllocUnassigned;
      s.rem_up = 0.0;
      s.rem_work = 0.0;
      s.rem_down = 0.0;
      s.active = Activity::kNone;
      // The abort changed the allocation without a directive: the next
      // keep/assign decision is new information and must be re-emitted.
      if (provenance_on_) last_dir_target_[s.job.id] = kDirectiveNone;
      ++stats_.fault_aborts;
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, crashed});
    }
  }

  /// Loss semantics: the message in flight on the hit direction of the
  /// cloud's link at this instant is corrupted and must be retransmitted
  /// from zero. A downlink loss keeps the execution progress (the result
  /// still sits on the cloud); an uplink loss re-pays the whole upload.
  /// Nothing in flight => the loss is unobservable and hits nobody.
  void corrupt_in_flight_message(const FaultSpec& spec) {
    const Activity hit = spec.kind == FaultKind::kUplinkLoss
                             ? Activity::kUplink
                             : Activity::kDownlink;
    // Only an active job can be mid-transmission; active_ids_ is id-sorted,
    // so the first match is the lowest id, as with the old full scan.
    for (const JobId id : active_ids_) {
      JobState& s = states_[id];
      if (s.alloc != spec.cloud || s.active != hit) continue;
      // The corrupted transmission physically used the link: its interval
      // stays recorded in the current run (quantity checks are >=).
      recorders_[s.job.id].close(now_);
      s.active = Activity::kNone;
      if (hit == Activity::kUplink) {
        s.rem_up = s.job.up;
        ++stats_.uplink_retransmits;
      } else {
        s.rem_down = s.job.down;
        ++stats_.downlink_retransmits;
      }
      ++stats_.message_losses;
      if (trace_ != nullptr) {
        trace_close_span(s.job.id);
        trace_instant(hit == Activity::kUplink
                          ? obs::TracePoint::kUplinkLoss
                          : obs::TracePoint::kDownlinkLoss,
                      s.job.id, spec.cloud, 0.0);
      }
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, spec.cloud});
      break;  // one-port: at most one message per direction per cloud
    }
  }

  void push_fault_event(const Event& event) {
    events_.push_back(event);
    fault_log_.push_back(event);
  }

  SimResult finish() {
    // Counters mirroring SimStats are added in bulk here so the registry and
    // the returned stats are consistent by construction.
    if (metrics_ != nullptr) {
      metrics_->add(ids_->events, stats_.events);
      metrics_->add(ids_->decisions, stats_.decisions);
      metrics_->add(ids_->reassignments, stats_.reassignments);
      metrics_->add(ids_->preemptions, stats_.preemptions);
      metrics_->add(ids_->fault_aborts, stats_.fault_aborts);
      metrics_->add(ids_->uplink_retransmits, stats_.uplink_retransmits);
      metrics_->add(ids_->downlink_retransmits, stats_.downlink_retransmits);
      metrics_->add(ids_->message_losses, stats_.message_losses);
    }
    if (trace_ != nullptr) trace_->end_trace(now_);
    SimResult result;
    result.stats = stats_;
    result.fault_log = std::move(fault_log_);
    result.completions.resize(states_.size());
    for (const JobState& s : states_) {
      result.completions[s.job.id] = s.completion;
    }
    if (config_.record_schedule) {
      result.schedule = Schedule(instance_.job_count());
      for (auto& [id, run] : abandoned_runs_) {
        result.schedule.job(id).abandoned.push_back(std::move(run));
      }
      for (JobState& s : states_) {
        Recorder& rec = recorders_[s.job.id];
        rec.close(now_);
        result.schedule.job(s.job.id).final_run = std::move(rec.current);
      }
    }
    return result;
  }

  const Instance& instance_;
  const Platform& platform_;
  Policy& policy_;
  EngineConfig config_;
  BusyMap busy_;
  std::uint64_t max_events_ = 0;

  std::vector<JobState> states_;
  std::vector<Recorder> recorders_;
  std::vector<std::pair<JobId, RunRecord>> abandoned_runs_;
  std::vector<JobId> release_order_;
  std::size_t next_release_ = 0;
  std::vector<Time> boundaries_;  ///< sorted outage begin/end wake-ups
  std::size_t next_boundary_ = 0;
  std::vector<FaultWake> wakes_;  ///< sorted fault-timeline wake-ups
  std::size_t next_wake_ = 0;
  std::vector<char> cloud_down_;  ///< crashed-and-not-yet-repaired flags
  std::vector<Event> fault_log_;  ///< realized kFault/kRecovery trace
  int remaining_jobs_ = 0;
  Time now_ = 0.0;
  std::vector<Event> events_;
  SimStats stats_;

  // --- active-set core: everything the per-event hot path touches ---
  std::vector<JobId> active_ids_;  ///< jobs mid-activity, id-sorted per round
  std::vector<JobId> live_ids_;    ///< released-and-unfinished, unordered
  std::vector<std::int32_t> live_pos_;  ///< job -> index in live_ids_, or -1
  std::vector<JobId> live_sorted_;      ///< per-round sorted copy of live_ids_
  std::vector<HeapEntry> heap_;         ///< lazy-deletion end-time min-heap
  std::vector<std::uint32_t> entry_version_;  ///< current heap version per job
  std::vector<std::uint32_t> seen_round_;     ///< round stamp per job
  std::uint32_t round_ = 0;
  std::vector<JobId> victims_;  ///< scratch for crash-abort collection

  // Scratch buffers reused across decision rounds.
  std::vector<std::pair<double, JobId>> order_;
  std::vector<Directive> directives_;  ///< policy output, reused per round

  // --- observability (null sinks = everything below stays idle) ---
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::optional<Instruments> ids_;  ///< engaged iff metrics_ != nullptr
  obs::TeeTraceSink tee_;  ///< user sink + watchdog, when a watchdog is set
  bool provenance_on_ = false;
  /// Sentinel for "no directive emitted yet" in last_dir_target_ (any
  /// value no allocation can take).
  static constexpr int kDirectiveNone = std::numeric_limits<int>::min();
  std::vector<int> last_dir_target_;  ///< keep-dedup state (provenance only)
  std::vector<int> last_dir_reason_;

  /// Open trace span per job. Tracked separately from Recorder because
  /// recorder intervals close and reopen on every decision round, while a
  /// trace span runs until a true boundary: completion, preemption,
  /// reassignment, fault abort, or message loss.
  struct SpanState {
    Activity activity = Activity::kNone;
    int alloc = kAllocUnassigned;
    Time begin = 0.0;
  };
  std::vector<SpanState> spans_;  ///< sized only when tracing
  std::vector<int> run_index_;    ///< bumped per reassignment / fault abort
  std::vector<char> started_;     ///< first activation already observed
  std::uint64_t granted_ = 0;     ///< resources granted this decision round
  double done_max_stretch_ = 0.0; ///< max stretch over finished jobs
};

}  // namespace

SimResult simulate(const Instance& instance, Policy& policy,
                   const EngineConfig& config) {
  policy.reset(instance);
  Engine engine(instance, policy, config);
  return engine.run();
}

}  // namespace ecs
