#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/arrivals.hpp"

namespace ecs {
namespace {

/// Metric-instrument handles, resolved once per run so the hot path never
/// touches the registry's name maps. Only valid when a registry is set.
struct Instruments {
  using Id = obs::MetricsRegistry::Id;
  Id events, decisions, reassignments, preemptions, fault_aborts;
  Id uplink_retransmits, downlink_retransmits, message_losses;
  Id rejections, sheds;       ///< admission-control refusals
  Id queue_depth;             ///< gauge; its max mirrors max_queue_depth
  Id peak_live;               ///< gauge; live-set high-water mark
  Id stretch, queue_wait;     ///< histograms
  Id phase_policy, phase_allocate, phase_activate, phase_faults;  ///< timers

  explicit Instruments(obs::MetricsRegistry& registry)
      : events(registry.counter("engine.events")),
        decisions(registry.counter("engine.decisions")),
        reassignments(registry.counter("engine.reassignments")),
        preemptions(registry.counter("engine.preemptions")),
        fault_aborts(registry.counter("engine.fault_aborts")),
        uplink_retransmits(registry.counter("engine.uplink_retransmits")),
        downlink_retransmits(registry.counter("engine.downlink_retransmits")),
        message_losses(registry.counter("engine.message_losses")),
        rejections(registry.counter("engine.rejections")),
        sheds(registry.counter("engine.sheds")),
        queue_depth(registry.gauge("engine.ready_queue_depth")),
        peak_live(registry.gauge("engine.peak_live")),
        stretch(registry.histogram(
            "job.stretch", {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0,
                            24.0, 32.0, 64.0, 128.0})),
        queue_wait(registry.histogram(
            "job.queue_wait",
            {0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0})),
        phase_policy(registry.timer("engine.phase.policy")),
        phase_allocate(registry.timer("engine.phase.allocate")),
        phase_activate(registry.timer("engine.phase.activate")),
        phase_faults(registry.timer("engine.phase.faults")) {}
};

[[nodiscard]] obs::TracePoint span_point(Activity activity) {
  switch (activity) {
    case Activity::kUplink:
      return obs::TracePoint::kUplink;
    case Activity::kDownlink:
      return obs::TracePoint::kDownlink;
    case Activity::kCompute:
    case Activity::kNone:
      break;
  }
  return obs::TracePoint::kExec;
}

/// Per-job recording of the currently open activity interval plus the
/// in-progress run record.
struct Recorder {
  RunRecord current;
  Activity open_activity = Activity::kNone;
  Time open_start = 0.0;

  void open(Activity activity, Time now) {
    open_activity = activity;
    open_start = now;
  }

  void close(Time now) {
    if (open_activity == Activity::kNone) return;
    switch (open_activity) {
      case Activity::kUplink:
        current.uplink.add(open_start, now);
        break;
      case Activity::kCompute:
        current.exec.add(open_start, now);
        break;
      case Activity::kDownlink:
        current.downlink.add(open_start, now);
        break;
      case Activity::kNone:
        break;
    }
    open_activity = Activity::kNone;
  }

  [[nodiscard]] bool has_history() const noexcept {
    return !current.uplink.empty() || !current.exec.empty() ||
           !current.downlink.empty();
  }
};

/// Busy markers for one decision round: which job holds each resource.
struct BusyMap {
  std::vector<JobId> edge_cpu, edge_send, edge_recv;
  std::vector<JobId> cloud_cpu, cloud_send, cloud_recv;

  explicit BusyMap(const Platform& platform)
      : edge_cpu(platform.edge_count(), -1),
        edge_send(platform.edge_count(), -1),
        edge_recv(platform.edge_count(), -1),
        cloud_cpu(platform.cloud_count(), -1),
        cloud_send(platform.cloud_count(), -1),
        cloud_recv(platform.cloud_count(), -1) {}

  void clear() {
    std::fill(edge_cpu.begin(), edge_cpu.end(), -1);
    std::fill(edge_send.begin(), edge_send.end(), -1);
    std::fill(edge_recv.begin(), edge_recv.end(), -1);
    std::fill(cloud_cpu.begin(), cloud_cpu.end(), -1);
    std::fill(cloud_send.begin(), cloud_send.end(), -1);
    std::fill(cloud_recv.begin(), cloud_recv.end(), -1);
  }
};

/// One wake-up of the fault timeline: a crash start, a crash repair
/// (recovery), or a message-loss instant.
struct FaultWake {
  Time time = 0.0;
  std::size_t spec = 0;  ///< index into the plan
  bool recovery = false;
};

/// Versioned entry of the lazy-deletion min-heap over predicted activity
/// end times, keyed by state *slot* (== job id in materialized mode). An
/// entry is valid while its version matches the slot's current one AND the
/// slot's job is still mid-activity; preemption, completion, re-execution,
/// fault aborts and slot retirement never search the heap — they simply
/// leave the entry behind to be skipped (or compacted away) later.
struct HeapEntry {
  Time time = 0.0;
  std::int32_t slot = -1;
  std::uint32_t version = 0;
};

/// std::push_heap-style comparator making heap_.front() the earliest end.
[[nodiscard]] bool heap_later(const HeapEntry& a, const HeapEntry& b) {
  return a.time > b.time;
}

class Engine {
 public:
  /// Materialized mode: all jobs come from `instance`, slot == job id.
  Engine(const Instance& instance, Policy& policy, const EngineConfig& config)
      : Engine(instance, nullptr, policy, config) {}

  /// Streaming mode (stream != nullptr): `base` carries the platform and
  /// outage calendar only; jobs arrive from the stream and completed jobs
  /// retire, so per-job state is O(peak_live).
  Engine(const Instance& base, ArrivalStream* stream, Policy& policy,
         const EngineConfig& config)
      : instance_(base),
        platform_(base.platform),
        policy_(policy),
        config_(config),
        busy_(base.platform),
        stream_(stream),
        streaming_(stream != nullptr),
        trace_(config.trace),
        metrics_(config.metrics) {
    // A watchdog taps the trace stream through an internal tee, so it
    // works with or without a user trace sink attached.
    if (config.watchdog != nullptr) {
      tee_.add(config.trace);
      tee_.add(config.watchdog);
      trace_ = &tee_;
    }
    provenance_on_ =
        (config.provenance || config.watchdog != nullptr) && trace_ != nullptr;
    if (metrics_ != nullptr) ids_.emplace(*metrics_);
    if (streaming_ && !instance_.jobs.empty()) {
      throw std::invalid_argument(
          "simulate_stream: the base instance must have an empty job list "
          "(jobs come from the arrival stream)");
    }
    require_valid_instance(instance_);
    config_.faults.normalize();
    require_valid_fault_plan(config_.faults, platform_);
    admission_on_ = config_.admission.enabled();
  }

  SimResult run() {
    init();
    // Streaming: run while anything is resident or the stream can still
    // deliver (pending_ is engaged until exhaustion). Materialized:
    // remaining_jobs_ counts unreleased + live jobs not yet finished,
    // rejected or shed. Both conditions hit zero at the same step for the
    // same inputs, keeping the two modes in lockstep.
    if (streaming_) {
      while (remaining_jobs_ > 0 || pending_.has_value()) {
        step();
      }
    } else {
      while (remaining_jobs_ > 0) {
        step();
      }
    }
    return finish();
  }

 private:
  void init() {
    const int n = streaming_ ? 0 : instance_.job_count();
    states_.resize(n);
    recorders_.resize(n);
    started_.assign(n, 0);
    live_pos_.assign(n, -1);
    entry_version_.assign(n, 0);
    seen_round_.assign(n, 0);
    live_ids_.reserve(16);
    active_ids_.reserve(16);
    if (trace_ != nullptr) {
      spans_.assign(n, SpanState{});
      run_index_.assign(n, 0);
      if (provenance_on_) {
        last_dir_target_.assign(n, kDirectiveNone);
        last_dir_reason_.assign(n, 0);
      }
      obs::TraceMeta meta;
      meta.policy = policy_.name();
      meta.edge_count = platform_.edge_count();
      meta.cloud_count = platform_.cloud_count();
      if (streaming_) {
        const std::int64_t total = stream_->remaining();
        meta.job_count =
            total >= 0 && total <= std::numeric_limits<int>::max()
                ? static_cast<int>(total)
                : -1;
      } else {
        meta.job_count = n;
      }
      trace_->begin_trace(meta);
    }
    for (int i = 0; i < n; ++i) {
      JobState& s = states_[i];
      s.job = instance_.jobs[i];
      s.best_time = platform_.best_time(s.job);
    }
    // Outage boundaries (cloud availability windows): every begin and end
    // is a wake-up point where the engine re-arbitrates, so an in-flight
    // activity on a cloud that becomes unavailable is preempted exactly at
    // the boundary and can resume at the next one.
    for (const IntervalSet& outages : instance_.cloud_outages) {
      for (const Interval& iv : outages.intervals()) {
        boundaries_.push_back(iv.begin);
        boundaries_.push_back(iv.end);
      }
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    next_boundary_ = 0;

    // Fault timeline: a wake-up per crash start, crash repair, and loss
    // instant, so every fault lands exactly on an engine event. Recoveries
    // sort before same-instant faults (a cloud repaired at t can crash
    // again at t, never the other way around).
    cloud_down_.assign(platform_.cloud_count(), 0);
    for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
      const FaultSpec& spec = config_.faults.faults[f];
      wakes_.push_back(FaultWake{spec.begin, f, false});
      if (spec.kind == FaultKind::kCrash) {
        wakes_.push_back(FaultWake{spec.end, f, true});
      }
    }
    std::sort(wakes_.begin(), wakes_.end(),
              [](const FaultWake& a, const FaultWake& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.recovery != b.recovery) return a.recovery;
                return a.spec < b.spec;
              });
    next_wake_ = 0;

    if (streaming_) {
      remaining_jobs_ = 0;
      advance_stream();
      // Jump to the first arrival; faults scheduled earlier fire now (no
      // job existed to be hit, but the down/up state and the monitoring
      // events must be correct from the very first decision).
      now_ = pending_ ? pending_->release : 0.0;
    } else {
      release_order_.resize(n);
      for (int i = 0; i < n; ++i) release_order_[i] = i;
      std::sort(release_order_.begin(), release_order_.end(),
                [&](JobId a, JobId b) {
                  const Time ra = states_[a].job.release;
                  const Time rb = states_[b].job.release;
                  return ra != rb ? ra < rb : a < b;
                });
      next_release_ = 0;
      remaining_jobs_ = n;
      now_ = n > 0 ? states_[release_order_[0]].job.release : 0.0;
    }
    fire_faults();
    fire_releases();
    stats_.events += events_.size();
    events_since_completion_ += events_.size();
  }

  // --- id -> slot translation (identity outside streaming mode) ---

  /// Slot of `id`'s state, or a negative value when the id is out of
  /// bounds, not yet seen, or retired/rejected (streaming).
  [[nodiscard]] std::int32_t find_slot(JobId id) const noexcept {
    if (!streaming_) {
      return id >= 0 && id < static_cast<JobId>(states_.size())
                 ? static_cast<std::int32_t>(id)
                 : kSlotRetired;
    }
    const std::int64_t off = static_cast<std::int64_t>(id) - window_base_;
    if (off < 0) return kSlotRetired;
    const std::size_t idx = window_start_ + static_cast<std::size_t>(off);
    if (idx >= window_.size()) return kSlotUnseen;
    return window_[idx];
  }

  // --- streaming id -> slot window over [window_base_, newest id] ---

  [[nodiscard]] std::size_t window_index(JobId id) const noexcept {
    return window_start_ +
           static_cast<std::size_t>(static_cast<std::int64_t>(id) -
                                    window_base_);
  }

  /// Grows the window so `id` (>= window_base_) has an entry.
  void window_ensure(JobId id) {
    const std::size_t idx = window_index(id);
    if (idx >= window_.size()) window_.resize(idx + 1, kSlotUnseen);
  }

  void window_set(JobId id, std::int32_t slot) {
    window_ensure(id);
    window_[window_index(id)] = slot;
  }

  /// Marks an id dead (retired or rejected) and slides the window base past
  /// the dead prefix; the storage itself is compacted once the dead prefix
  /// dominates (amortized O(1) per retirement).
  void window_clear(JobId id) {
    window_ensure(id);
    window_[window_index(id)] = kSlotRetired;
    while (window_start_ < window_.size() &&
           window_[window_start_] == kSlotRetired) {
      ++window_start_;
      ++window_base_;
    }
    if (window_start_ > 1024 && window_start_ * 2 > window_.size()) {
      window_.erase(
          window_.begin(),
          window_.begin() + static_cast<std::ptrdiff_t>(window_start_));
      window_start_ = 0;
    }
  }

  /// Pulls the next arrival into pending_, enforcing the stream contract.
  void advance_stream() {
    pending_ = stream_->next();
    if (!pending_) return;
    const Job& job = *pending_;
    if (job.id < 0 || job.id < window_base_ || find_slot(job.id) >= 0) {
      throw std::runtime_error(
          "arrival stream " + stream_->name() +
          " emitted a duplicate, retired or negative job id " +
          std::to_string(job.id));
    }
    if (!(job.release >= last_arrival_)) {
      std::ostringstream os;
      os << "arrival stream " << stream_->name()
         << " emitted decreasing release dates (" << job.release
         << " after " << last_arrival_ << ", job " << job.id << ")";
      throw std::runtime_error(os.str());
    }
    const std::string problem = validate_job(job, platform_.edge_count());
    if (!problem.empty()) {
      throw std::runtime_error("arrival stream " + stream_->name() +
                               " emitted an invalid job: " + problem);
    }
    last_arrival_ = job.release;
    if (job.id >= next_id_) next_id_ = job.id + 1;
  }

  // --- live set: released-and-unfinished job ids, O(1) insert/erase ---

  void live_insert(JobId id, std::int32_t slot) {
    live_pos_[slot] = static_cast<std::int32_t>(live_ids_.size());
    live_ids_.push_back(id);
  }

  void live_erase(std::int32_t slot) {
    const std::int32_t pos = live_pos_[slot];
    const JobId moved = live_ids_.back();
    live_ids_[pos] = moved;
    live_pos_[find_slot(moved)] = pos;
    live_ids_.pop_back();
    live_pos_[slot] = -1;
  }

  // --- lazy-deletion heap over predicted activity end times ---

  void heap_push(std::int32_t slot, Time end) {
    heap_.push_back(HeapEntry{end, slot, ++entry_version_[slot]});
    std::push_heap(heap_.begin(), heap_.end(), &heap_later);
  }

  [[nodiscard]] bool heap_entry_valid(const HeapEntry& e) const {
    return e.version == entry_version_[e.slot] &&
           states_[e.slot].active != Activity::kNone;
  }

  /// Skims invalidated tops and returns the earliest valid activity end
  /// (infinity when nothing is running).
  [[nodiscard]] Time next_activity_end() {
    while (!heap_.empty() && !heap_entry_valid(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), &heap_later);
      heap_.pop_back();
    }
    return heap_.empty() ? kTimeInfinity : heap_.front().time;
  }

  /// Keeps the heap proportional to the active set: once stale entries
  /// dominate, drop them all in one O(size) sweep (amortized O(1)/push).
  void maybe_compact_heap() {
    if (heap_.size() < 64 || heap_.size() < 4 * active_ids_.size()) return;
    std::erase_if(heap_,
                  [this](const HeapEntry& e) { return !heap_entry_valid(e); });
    std::make_heap(heap_.begin(), heap_.end(), &heap_later);
  }

  /// Releases every arrival due at `now_` (within tolerance), each one
  /// routed through admission control.
  void fire_releases() {
    if (streaming_) {
      while (pending_ && time_le(pending_->release, now_)) {
        const Job job = *pending_;
        advance_stream();
        admit(job);
      }
    } else {
      while (next_release_ < release_order_.size()) {
        const JobId id = release_order_[next_release_];
        if (!time_le(states_[id].job.release, now_)) break;
        ++next_release_;
        admit(states_[id].job);
      }
    }
  }

  // --- admission control (EngineConfig::admission) ---

  /// Admits one arrival: with admission disabled this is exactly the plain
  /// release path (live insert + kRelease event + trace instant). A
  /// rejected arrival leaves no trace besides the kReject instant and the
  /// admission log — policies never learn it existed.
  void admit(const Job& job) {
    if (admission_on_ && !admission_allows(job)) return;
    const std::int32_t slot = acquire_slot(job);
    JobState& s = states_[slot];
    s.released = true;
    live_insert(job.id, slot);
    if (streaming_) ++remaining_jobs_;
    ++stats_.admitted;
    if (live_ids_.size() > stats_.peak_live) {
      stats_.peak_live = live_ids_.size();
    }
    events_.push_back(Event{EventKind::kRelease, job.id, now_});
    if (trace_ != nullptr) {
      trace_instant(obs::TracePoint::kRelease, slot, -1, 0.0);
    }
  }

  /// Finds (or creates) the state slot for an admitted arrival. In
  /// materialized mode the slot is the job id (states_ pre-sized in init);
  /// in streaming mode slots are recycled through a free list.
  std::int32_t acquire_slot(const Job& job) {
    if (!streaming_) return static_cast<std::int32_t>(job.id);
    std::int32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::int32_t>(states_.size());
      states_.emplace_back();
      recorders_.emplace_back();
      started_.push_back(0);
      live_pos_.push_back(-1);
      entry_version_.push_back(0);
      seen_round_.push_back(0);
      if (trace_ != nullptr) {
        spans_.emplace_back();
        run_index_.push_back(0);
      }
      if (provenance_on_) {
        last_dir_target_.push_back(kDirectiveNone);
        last_dir_reason_.push_back(0);
      }
    }
    JobState& s = states_[slot];
    s = JobState{};
    s.job = job;
    s.best_time = platform_.best_time(job);
    recorders_[slot] = Recorder{};
    started_[slot] = 0;
    seen_round_[slot] = 0;
    // entry_version_ is deliberately NOT reset: retirement bumped it, so
    // heap entries of the previous occupant stay dead.
    if (trace_ != nullptr) {
      spans_[slot] = SpanState{};
      run_index_[slot] = 0;
    }
    if (provenance_on_) {
      last_dir_target_[slot] = kDirectiveNone;
      last_dir_reason_[slot] = 0;
    }
    window_set(job.id, slot);
    return slot;
  }

  /// Applies the configured shed rule, then the caps. Returns true when the
  /// arrival may be admitted; otherwise records and traces the rejection.
  bool admission_allows(const Job& job) {
    const AdmissionConfig& adm = config_.admission;
    if (adm.rule == AdmissionRule::kShedInfeasible &&
        adm.stretch_limit > 0.0) {
      shed_infeasible(std::max(adm.stretch_limit, 1.0));
    }
    const bool over_live =
        adm.max_live > 0 && live_ids_.size() >= adm.max_live;
    const bool over_queue =
        adm.max_queue > 0 && queued_count() >= adm.max_queue;
    if (!over_live && !over_queue) return true;
    if (adm.rule == AdmissionRule::kRejectHopeless && shed_most_hopeless()) {
      return true;
    }
    reject(job);
    return false;
  }

  /// Live jobs holding no resource at this instant (the admission queue).
  [[nodiscard]] std::uint64_t queued_count() const {
    std::uint64_t waiting = 0;
    for (const JobId id : live_ids_) {
      if (states_[find_slot(id)].active == Activity::kNone) ++waiting;
    }
    return waiting;
  }

  /// Stretch lower bound of a never-started resident: even started now on
  /// its best resource it finishes no earlier than now_ + best_time.
  [[nodiscard]] double stretch_lower_bound(const JobState& s) const {
    const double denom = s.best_time > 0.0 ? s.best_time : 1.0;
    return (now_ - s.job.release + s.best_time) / denom;
  }

  /// A resident may be shed only if it never started (so the "no recorded
  /// activity" invariant holds) and was released strictly before this
  /// event batch (so no event in flight can still reference it).
  [[nodiscard]] bool sheddable(const JobState& s,
                               std::int32_t slot) const {
    return started_[slot] == 0 && !time_le(now_, s.job.release);
  }

  /// kShedInfeasible: evicts every sheddable resident whose stretch lower
  /// bound already exceeds `limit` — its deadline release + limit *
  /// best_time cannot be met no matter what the policy does.
  void shed_infeasible(double limit) {
    victims_.clear();
    for (const JobId id : live_ids_) {
      const std::int32_t slot = find_slot(id);
      const JobState& s = states_[slot];
      if (!sheddable(s, slot)) continue;
      if (stretch_lower_bound(s) > limit) victims_.push_back(id);
    }
    std::sort(victims_.begin(), victims_.end());
    for (const JobId id : victims_) {
      shed(id, ReasonCode::kAdmissionDeadlineInfeasible);
    }
  }

  /// kRejectHopeless: evicts the sheddable resident with the worst stretch
  /// lower bound, provided it is worse than the arrival's own (1.0 at its
  /// release). Ties prefer the newest (largest id). Returns true when a
  /// victim was shed, making room for the arrival.
  bool shed_most_hopeless() {
    JobId worst = -1;
    double worst_lb = 1.0;
    for (const JobId id : live_ids_) {
      const std::int32_t slot = find_slot(id);
      const JobState& s = states_[slot];
      if (!sheddable(s, slot)) continue;
      const double lb = stretch_lower_bound(s);
      if (lb > worst_lb) {
        worst = id;
        worst_lb = lb;
      } else if (lb == worst_lb && worst >= 0 && id > worst) {
        worst = id;
      }
    }
    if (worst < 0) return false;
    shed(worst, ReasonCode::kAdmissionStretchHopeless);
    return true;
  }

  /// Refuses an arrival: no state, no kRelease event, only the kReject
  /// instant (value = resident count at refusal) and the admission log.
  void reject(const Job& job) {
    ++stats_.rejections;
    if (!streaming_) --remaining_jobs_;
    if (config_.record_admission) {
      admission_log_.push_back(AdmissionRecord{
          job.id, now_, ReasonCode::kAdmissionQueueFull, false});
    }
    if (trace_ != nullptr) {
      obs::TraceRecord rec;
      rec.kind = obs::TraceKind::kInstant;
      rec.point = obs::TracePoint::kReject;
      rec.job = job.id;
      rec.origin = job.origin;
      rec.begin = rec.end = now_;
      rec.value = static_cast<double>(live_ids_.size());
      rec.reason = static_cast<int>(ReasonCode::kAdmissionQueueFull);
      trace_->record(rec);
    }
    // The id is dead on arrival: mark it so the window base can slide past.
    if (streaming_ && job.id >= window_base_) window_clear(job.id);
  }

  /// Evicts an admitted, never-started resident (value = its stretch lower
  /// bound at eviction). Its slot is recycled immediately in streaming mode
  /// — nothing in flight references a never-started job released before
  /// this batch.
  void shed(JobId id, ReasonCode reason) {
    const std::int32_t slot = find_slot(id);
    JobState& s = states_[slot];
    if (trace_ != nullptr) {
      obs::TraceRecord rec;
      rec.kind = obs::TraceKind::kInstant;
      rec.point = obs::TracePoint::kShed;
      rec.job = id;
      rec.run = run_index_.empty() ? 0 : run_index_[slot];
      rec.origin = s.job.origin;
      rec.alloc = s.alloc;
      rec.begin = rec.end = now_;
      rec.value = stretch_lower_bound(s);
      rec.reason = static_cast<int>(reason);
      trace_->record(rec);
    }
    live_erase(slot);
    s.released = false;  // expelled: live() is false from here on
    ++entry_version_[slot];
    ++stats_.sheds;
    --remaining_jobs_;
    if (config_.record_admission) {
      admission_log_.push_back(AdmissionRecord{id, now_, reason, true});
    }
    if (streaming_) retire_slot(slot);
  }

  /// Recycles a slot (streaming only): harvests its run record and
  /// completion time into the result logs, kills stale heap entries and
  /// returns the slot to the free list.
  void retire_slot(std::int32_t slot) {
    JobState& s = states_[slot];
    Recorder& rec = recorders_[slot];
    if (config_.record_schedule) {
      rec.close(now_);
      final_runs_.emplace_back(s.job.id, std::move(rec.current));
    }
    if (config_.record_completions && s.done) {
      completion_log_.emplace_back(s.job.id, s.completion);
    }
    rec.current = RunRecord{};
    ++entry_version_[slot];
    window_clear(s.job.id);
    free_slots_.push_back(slot);
  }

  /// Retires every job whose completion events the policy has now seen.
  void flush_retired() {
    for (const std::int32_t slot : retire_queue_) retire_slot(slot);
    retire_queue_.clear();
  }

  // --- trace emission helpers; callers guard on trace_ != nullptr ---

  /// Closes the slot's open activity span, emitting it ending at `now_`.
  void trace_close_span(std::int32_t slot) {
    SpanState& span = spans_[slot];
    if (span.activity == Activity::kNone) return;
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kSpan;
    rec.point = span_point(span.activity);
    rec.job = states_[slot].job.id;
    rec.run = run_index_[slot];
    rec.alloc = span.alloc;
    rec.origin = states_[slot].job.origin;
    rec.begin = span.begin;
    rec.end = now_;
    trace_->record(rec);
    span.activity = Activity::kNone;
  }

  /// `slot` < 0 emits a job-less instant (rec.job = -1).
  void trace_instant(obs::TracePoint point, std::int32_t slot, int cloud,
                     double value) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = point;
    rec.cloud = cloud;
    rec.begin = rec.end = now_;
    rec.value = value;
    if (slot >= 0) {
      const JobState& s = states_[slot];
      rec.job = s.job.id;
      rec.run = run_index_[slot];
      rec.origin = s.job.origin;
      rec.alloc = s.alloc;
    }
    trace_->record(rec);
  }

  /// Emits one decision-provenance instant (TracePoint::kDirective):
  /// alloc = resolved target, cloud = allocation before the directive,
  /// value = priority, reason = the policy's ReasonCode. Caller guards on
  /// provenance_on_.
  void trace_directive(std::int32_t slot, int source, int target,
                       const Directive& d) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = obs::TracePoint::kDirective;
    rec.job = states_[slot].job.id;
    rec.run = run_index_[slot];
    rec.origin = states_[slot].job.origin;
    rec.alloc = target;
    rec.cloud = source;
    rec.begin = rec.end = now_;
    rec.value = d.priority;
    rec.reason = static_cast<int>(d.reason);
    trace_->record(rec);
    last_dir_target_[slot] = target;
    last_dir_reason_[slot] = static_cast<int>(d.reason);
  }

  /// Provenance for a directive that does not move the job (kTargetKeep or
  /// an explicit re-confirmation of the current allocation). Policies emit
  /// these at EVERY event, so identical repeats are deduplicated: a keep is
  /// recorded when its resolved target or reason differs from the job's
  /// last emitted directive.
  void trace_keep_directive(const Directive& d) {
    const std::int32_t slot = find_slot(d.job);
    if (slot < 0) return;
    const JobState& s = states_[slot];
    if (!s.live()) return;
    if (last_dir_target_[slot] == s.alloc &&
        last_dir_reason_[slot] == static_cast<int>(d.reason)) {
      return;
    }
    trace_directive(slot, s.alloc, s.alloc, d);
  }

  void trace_counter(obs::TracePoint point, double value) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kCounter;
    rec.point = point;
    rec.begin = rec.end = now_;
    rec.value = value;
    trace_->record(rec);
  }

  void step() {
    decide_and_activate();
    advance_to_next_event();
  }

  void decide_and_activate() {
    // 1. Ask the policy what to do about the events that just fired. The
    //    sorted live index gives SimView::live_jobs() in O(live) and, below,
    //    the id-ordered implicit-keep walk the old full-state scan provided.
    live_sorted_.assign(live_ids_.begin(), live_ids_.end());
    std::sort(live_sorted_.begin(), live_sorted_.end());
    const SimView view =
        streaming_
            ? SimView(instance_, states_, now_, &live_sorted_,
                      window_.data() + window_start_,
                      static_cast<std::int64_t>(window_.size() -
                                                window_start_),
                      window_base_)
            : SimView(instance_, states_, now_, &live_sorted_);
    const auto t0 = std::chrono::steady_clock::now();
    // One buffer, reused round after round: with the per-policy workspaces
    // (DESIGN.md §6) the steady-state policy hot path allocates nothing.
    std::vector<Directive>& directives = directives_;
    directives.clear();
    policy_.decide(view, events_, directives);
    const auto t1 = std::chrono::steady_clock::now();
    stats_.policy_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++stats_.decisions;
    if (metrics_ != nullptr) {
      metrics_->add_nanos(
          ids_->phase_policy,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
    }
    if (trace_ != nullptr) {
      trace_instant(obs::TracePoint::kDecision, -1, -1,
                    static_cast<double>(directives.size()));
    }
    events_.clear();

    // 2. Close all open intervals; they will reopen seamlessly below
    //    (IntervalSet::add merges touching pieces). A job still mid-activity
    //    is flagged so arbitration can spot preemptions: only these jobs —
    //    at most one per processor or port — can lose a resource they still
    //    need. The flag is consumed inside this round (apply_directive or
    //    try_activate), never carried over. Only members of the active set
    //    can be mid-activity; entries already stopped by a completion,
    //    fault abort or message loss are skipped.
    for (const std::int32_t slot : active_ids_) {
      JobState& s = states_[slot];
      if (s.active != Activity::kNone) {
        s.was_active = true;
        recorders_[slot].close(now_);
        s.active = Activity::kNone;
      }
    }
    active_ids_.clear();
    // Completed jobs retire only now: the policy has consumed their
    // completion events above, so nothing references the slots any more.
    if (streaming_ && !retire_queue_.empty()) flush_retired();

    // 3. Apply allocation changes (the re-execution rule).
    {
      const obs::ScopeTimer timer(metrics_,
                                  metrics_ != nullptr ? ids_->phase_allocate
                                                      : 0);
      for (const Directive& d : directives) {
        apply_directive(d);
      }
    }

    // 4. Activate activities in priority order. Jobs without an explicit
    //    directive keep their allocation at the lowest priority, ordered by
    //    id, so the engine stays work-conserving and deterministic.
    granted_ = 0;
    {
      const obs::ScopeTimer timer(metrics_,
                                  metrics_ != nullptr ? ids_->phase_activate
                                                      : 0);
      order_.clear();
      for (const Directive& d : directives) {
        const std::int32_t slot = find_slot(d.job);
        if (slot >= 0 && states_[slot].live()) {
          order_.push_back({d.priority, d.job});
        }
      }
      // Round stamps replace a per-round O(n) boolean reset: a job is
      // "seen" iff its stamp equals the current round's.
      if (++round_ == 0) {  // wrap: old stamps could collide, wipe them
        seen_round_.assign(seen_round_.size(), 0);
        round_ = 1;
      }
      for (const auto& [prio, id] : order_) {
        seen_round_[find_slot(id)] = round_;
      }
      for (const JobId id : live_sorted_) {
        if (seen_round_[find_slot(id)] != round_) {
          order_.push_back({kTimeInfinity, id});
        }
      }
      std::stable_sort(order_.begin(), order_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first != b.first ? a.first < b.first
                                                   : a.second < b.second;
                       });

      busy_.clear();
      for (const auto& [prio, id] : order_) {
        try_activate(find_slot(id));
      }
      // Completions must fire in job-id order (policies and traces observe
      // the event order), so keep the active set id-sorted between rounds.
      // Slots are not id-ordered in streaming mode, hence the comparator;
      // in materialized mode slot == id and this is a plain sort.
      std::sort(active_ids_.begin(), active_ids_.end(),
                [this](std::int32_t a, std::int32_t b) {
                  return states_[a].job.id < states_[b].job.id;
                });
      maybe_compact_heap();
    }

    // 5. Ready-queue depth after arbitration: live jobs holding no
    //    resource. A job holds a resource iff try_activate granted it one
    //    this round, so the depth falls out of two counters with no extra
    //    pass over states_.
    const std::uint64_t waiting = live_ids_.size() - granted_;
    if (waiting > stats_.max_queue_depth) stats_.max_queue_depth = waiting;
    if (metrics_ != nullptr) {
      metrics_->gauge_set(ids_->queue_depth, static_cast<double>(waiting));
    }
    if (trace_ != nullptr) sample_counters(waiting);
  }

  /// Emits the event-granularity time series into the trace.
  void sample_counters(std::uint64_t waiting) {
    trace_counter(obs::TracePoint::kReadyQueueDepth,
                  static_cast<double>(waiting));
    double live_max = stats_.max_stretch;
    for (const JobId id : live_sorted_) {
      const JobState& s = states_[find_slot(id)];
      const double denom = s.best_time > 0.0 ? s.best_time : 1.0;
      live_max = std::max(live_max, (now_ - s.job.release) / denom);
    }
    trace_counter(obs::TracePoint::kLiveMaxStretch, live_max);
    if (platform_.edge_count() > 0) {
      int busy = 0;
      for (const JobId id : busy_.edge_cpu) busy += id != -1 ? 1 : 0;
      trace_counter(obs::TracePoint::kEdgeUtilization,
                    static_cast<double>(busy) / platform_.edge_count());
    }
    if (platform_.cloud_count() > 0) {
      int busy = 0;
      for (const JobId id : busy_.cloud_cpu) busy += id != -1 ? 1 : 0;
      trace_counter(obs::TracePoint::kCloudUtilization,
                    static_cast<double>(busy) / platform_.cloud_count());
    }
  }

  void apply_directive(const Directive& d) {
    if (d.target == kTargetKeep) {
      // Keeps skip all validation (a keep for a finished or unknown job is
      // harmless); provenance still wants the deduplicated decision.
      if (provenance_on_) trace_keep_directive(d);
      return;
    }
    if (d.job < 0 ||
        (!streaming_ && d.job >= static_cast<JobId>(states_.size())) ||
        (streaming_ && d.job >= next_id_)) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued a directive for unknown job " +
                               std::to_string(d.job));
    }
    const std::int32_t slot = find_slot(d.job);
    if (slot < 0) return;  // streaming: retired or rejected, stale directive
    JobState& s = states_[slot];
    if (!s.live()) return;
    if (d.target != kAllocEdge &&
        (!is_cloud_alloc(d.target) || d.target >= platform_.cloud_count())) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued invalid target " +
                               std::to_string(d.target) + " for job " +
                               std::to_string(d.job));
    }
    if (d.target == s.alloc) {
      if (provenance_on_) trace_keep_directive(d);
      return;
    }
    if (provenance_on_) trace_directive(slot, s.alloc, d.target, d);

    Recorder& rec = recorders_[slot];
    rec.close(now_);
    const int old_alloc = s.alloc;
    if (s.alloc != kAllocUnassigned) {
      // Abandon the current run; its history stays on the books because it
      // physically occupied resources.
      ++s.reassignments;
      ++stats_.reassignments;
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(d.job, std::move(rec.current));
      }
      rec.current = RunRecord{};
    }
    // A reassignment is not a preemption: the job lost its resource because
    // its allocation changed, so drop the round's mid-activity flag.
    s.was_active = false;
    if (trace_ != nullptr) {
      trace_close_span(slot);
      if (old_alloc != kAllocUnassigned) ++run_index_[slot];
    }
    s.alloc = d.target;
    rec.current.alloc = d.target;
    if (d.target == kAllocEdge) {
      s.rem_up = 0.0;
      s.rem_work = s.job.work;
      s.rem_down = 0.0;
    } else {
      s.rem_up = s.job.up;
      s.rem_work = s.job.work;
      s.rem_down = s.job.down;
    }
    if (trace_ != nullptr && old_alloc != kAllocUnassigned) {
      trace_instant(obs::TracePoint::kReassignment, slot, -1,
                    static_cast<double>(old_alloc));
    }
  }

  /// Consumes a job's was_active flag after it failed arbitration: a job
  /// that was mid-activity, kept its allocation, and got nothing was
  /// preempted (outprioritized, or its cloud entered an outage / crash
  /// window). A no-op for jobs that were idle or already re-granted.
  void note_preemption(JobState& s, std::int32_t slot) {
    if (!s.was_active) return;
    s.was_active = false;
    ++stats_.preemptions;
    if (trace_ != nullptr) {
      trace_close_span(slot);
      trace_instant(obs::TracePoint::kPreemption, slot, -1, 0.0);
    }
  }

  void try_activate(const std::int32_t slot) {
    JobState& s = states_[slot];
    if (!s.live()) return;
    const Activity needed = s.next_activity();
    if (needed == Activity::kNone) {
      note_preemption(s, slot);
      return;
    }
    const EdgeId o = s.job.origin;
    const JobId id = s.job.id;
    // A cloud processor inside an availability outage serves nothing —
    // neither computation nor communication involving it. The same holds
    // for an unannounced crash, except that the policy was never told.
    if (is_cloud_alloc(s.alloc) &&
        (!instance_.cloud_available(s.alloc, now_) ||
         cloud_down_[s.alloc] != 0)) {
      note_preemption(s, slot);
      return;
    }
    switch (needed) {
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          if (busy_.edge_cpu[o] != -1) {
            note_preemption(s, slot);
            return;
          }
          busy_.edge_cpu[o] = id;
        } else {
          if (busy_.cloud_cpu[s.alloc] != -1) {
            note_preemption(s, slot);
            return;
          }
          busy_.cloud_cpu[s.alloc] = id;
        }
        break;
      case Activity::kUplink:
        if (busy_.edge_send[o] != -1 || busy_.cloud_recv[s.alloc] != -1) {
          note_preemption(s, slot);
          return;
        }
        busy_.edge_send[o] = id;
        busy_.cloud_recv[s.alloc] = id;
        break;
      case Activity::kDownlink:
        if (busy_.cloud_send[s.alloc] != -1 || busy_.edge_recv[o] != -1) {
          note_preemption(s, slot);
          return;
        }
        busy_.cloud_send[s.alloc] = id;
        busy_.edge_recv[o] = id;
        break;
      case Activity::kNone:
        return;
    }
    s.active = needed;
    s.was_active = false;
    // Lazy progress accounting: anchor the activity at now_ with its
    // consumption rate, enter the active set, and predict the end time
    // analytically. The prediction is exact — rates only change through a
    // re-grant, which pushes a fresh (versioned) entry.
    s.rate = needed == Activity::kCompute
                 ? (s.alloc == kAllocEdge ? platform_.edge_speed(o)
                                          : platform_.cloud_speed(s.alloc))
                 : 1.0;
    s.last_update = now_;
    active_ids_.push_back(slot);
    heap_push(slot, activity_end(s));
    ++granted_;
    recorders_[slot].open(needed, now_);
    if (started_[slot] == 0) {
      started_[slot] = 1;
      if (metrics_ != nullptr) {
        metrics_->observe(ids_->queue_wait, now_ - s.job.release);
      }
    }
    if (trace_ != nullptr) {
      // Reopening the same activity on the same allocation continues the
      // current span; anything else starts a fresh one.
      SpanState& span = spans_[slot];
      if (span.activity != needed || span.alloc != s.alloc) {
        trace_close_span(slot);
        span.activity = needed;
        span.alloc = s.alloc;
        span.begin = now_;
      }
    }
  }

  [[nodiscard]] Time activity_end(const JobState& s) const {
    switch (s.active) {
      case Activity::kUplink:
        return now_ + clamp_amount(s.rem_up);
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          return now_ +
                 clamp_amount(s.rem_work) / platform_.edge_speed(s.job.origin);
        }
        return now_ + clamp_amount(s.rem_work) / platform_.cloud_speed(s.alloc);
      case Activity::kDownlink:
        return now_ + clamp_amount(s.rem_down);
      case Activity::kNone:
        return kTimeInfinity;
    }
    return kTimeInfinity;
  }

  void advance_to_next_event() {
    // Earliest predicted activity end, straight off the heap top — no scan.
    Time next = next_activity_end();
    if (streaming_) {
      if (pending_) next = std::min(next, pending_->release);
    } else if (next_release_ < release_order_.size()) {
      next = std::min(next,
                      states_[release_order_[next_release_]].job.release);
    }
    while (next_boundary_ < boundaries_.size() &&
           time_le(boundaries_[next_boundary_], now_)) {
      ++next_boundary_;
    }
    if (next_boundary_ < boundaries_.size()) {
      next = std::min(next, boundaries_[next_boundary_]);
    }
    if (next_wake_ < wakes_.size()) {
      next = std::min(next, wakes_[next_wake_].time);
    }
    if (next == kTimeInfinity) {
      std::ostringstream os;
      os << "simulation stalled at t=" << now_ << ": policy "
         << policy_.name() << " left all " << remaining_jobs_
         << " live job(s) without a runnable activity and no event is "
            "pending; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }

    // Materialize progress for the active set only (every member was
    // re-anchored at now_ this round, so the elapsed span is next - now_).
    for (const std::int32_t slot : active_ids_) {
      states_[slot].advance_progress(next);
    }
    now_ = next;

    // Fire completions. active_ids_ is id-sorted, so completion events are
    // emitted in job-id order — the order policies and traces observe.
    bool job_completed = false;
    for (const std::int32_t slot : active_ids_) {
      JobState& s = states_[slot];
      if (s.active == Activity::kNone) continue;
      bool fired = false;
      switch (s.active) {
        case Activity::kUplink:
          if (amount_done(s.rem_up)) {
            s.rem_up = 0.0;
            events_.push_back(Event{EventKind::kUplinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kCompute:
          if (amount_done(s.rem_work)) {
            s.rem_work = 0.0;
            events_.push_back(Event{EventKind::kComputeDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kDownlink:
          if (amount_done(s.rem_down)) {
            s.rem_down = 0.0;
            events_.push_back(
                Event{EventKind::kDownlinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kNone:
          break;
      }
      if (fired) {
        recorders_[slot].close(now_);
        s.active = Activity::kNone;
        if (trace_ != nullptr) trace_close_span(slot);
        if (s.all_amounts_done()) {
          s.done = true;
          job_completed = true;
          live_erase(slot);
          s.completion = now_;
          --remaining_jobs_;
          ++stats_.completed;
          const double denom = s.best_time > 0.0 ? s.best_time : 1.0;
          const double stretch = (now_ - s.job.release) / denom;
          stats_.max_stretch = std::max(stats_.max_stretch, stretch);
          if (metrics_ != nullptr) {
            metrics_->observe(ids_->stretch, stretch);
          }
          if (trace_ != nullptr) {
            trace_instant(obs::TracePoint::kCompletion, slot, -1, stretch);
          }
          // Retirement is deferred to the next decision round: the policy
          // must still see this completion event with the state attached.
          if (streaming_) retire_queue_.push_back(slot);
        }
      }
    }
    fire_faults();
    fire_releases();

    stats_.events += events_.size();
    if (config_.max_events != 0 && stats_.events > config_.max_events) {
      std::ostringstream os;
      os << "event cap (" << config_.max_events << ") exceeded at t=" << now_
         << " by policy " << policy_.name() << " with " << remaining_jobs_
         << " live job(s) after " << stats_.reassignments
         << " reassignment(s) and " << stats_.fault_aborts
         << " fault abort(s); the policy is likely thrashing "
            "re-executions; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }
    // Progress watchdog: a thrashing policy fires activity events forever
    // without completing a job, so count events since the last completion —
    // meaningful even when the total event count is unbounded (streaming).
    if (job_completed) {
      events_since_completion_ = 0;
    } else {
      events_since_completion_ += events_.size();
      const std::uint64_t cap =
          config_.stall_events != 0
              ? config_.stall_events
              : std::max<std::uint64_t>(
                    kStallFloor, 512 * static_cast<std::uint64_t>(
                                           live_ids_.size()));
      if (events_since_completion_ > cap) {
        std::ostringstream os;
        os << "progress watchdog: " << events_since_completion_
           << " event(s) since the last job completion (cap " << cap
           << ") at t=" << now_ << " under policy " << policy_.name()
           << " with " << live_ids_.size() << " live job(s) after "
           << stats_.reassignments << " reassignment(s) and "
           << stats_.fault_aborts
           << " fault abort(s); the policy is likely thrashing "
              "re-executions; live jobs: "
           << describe_live_jobs();
        throw std::runtime_error(os.str());
      }
    }
  }

  /// Compact dump of the live jobs — id, allocation, current activity —
  /// for the stall / event-cap diagnostics. Capped at 8 entries.
  [[nodiscard]] std::string describe_live_jobs() const {
    std::vector<JobId> live(live_ids_.begin(), live_ids_.end());
    std::sort(live.begin(), live.end());
    std::ostringstream os;
    int shown = 0;
    for (const JobId id : live) {
      const JobState& s = states_[find_slot(id)];
      if (shown == 8) {
        os << ", ...";
        break;
      }
      if (shown > 0) os << ", ";
      os << "J" << s.job.id << "(";
      if (s.alloc == kAllocUnassigned) {
        os << "unassigned";
      } else if (s.alloc == kAllocEdge) {
        os << "edge" << s.job.origin;
      } else {
        os << "cloud" << s.alloc;
        if (cloud_down_[s.alloc] != 0) os << ":down";
      }
      os << "/" << to_string(s.active) << ")";
      ++shown;
    }
    if (shown == 0) os << "none";
    return os.str();
  }

  /// Processes every fault-timeline wake-up that is due at `now_`: flips
  /// the down/up state, fires the monitoring events, aborts crash victims
  /// (progress fully discarded — the machine's memory is gone) and corrupts
  /// in-flight messages at loss instants.
  void fire_faults() {
    if (next_wake_ >= wakes_.size() ||
        !time_le(wakes_[next_wake_].time, now_)) {
      return;  // nothing due; skip the phase timer's clock reads
    }
    const obs::ScopeTimer timer(metrics_,
                                metrics_ != nullptr ? ids_->phase_faults : 0);
    while (next_wake_ < wakes_.size() &&
           time_le(wakes_[next_wake_].time, now_)) {
      const FaultWake& wake = wakes_[next_wake_];
      const FaultSpec& spec = config_.faults.faults[wake.spec];
      if (wake.recovery) {
        cloud_down_[spec.cloud] = 0;
        push_fault_event(Event{EventKind::kRecovery, -1, now_, spec.cloud});
        if (trace_ != nullptr) {
          trace_instant(obs::TracePoint::kRecovery, -1, spec.cloud, 0.0);
        }
      } else if (spec.kind == FaultKind::kCrash) {
        cloud_down_[spec.cloud] = 1;
        push_fault_event(Event{EventKind::kFault, -1, now_, spec.cloud});
        if (trace_ != nullptr) {
          trace_instant(obs::TracePoint::kFault, -1, spec.cloud, 0.0);
        }
        abort_jobs_on_cloud(spec.cloud);
      } else {
        corrupt_in_flight_message(spec);
      }
      ++next_wake_;
    }
  }

  /// Crash semantics: every job allocated to the crashed cloud loses ALL
  /// progress (uplink included — the data sat on the dead machine, not in
  /// the network) and returns to the unassigned state; the partial run
  /// stays on the books as an abandoned run because it physically occupied
  /// resources.
  void abort_jobs_on_cloud(CloudId crashed) {
    // Victims come from the live set (no instance-wide sweep); sort so the
    // abort events keep firing in job-id order like the old full scan.
    victims_.clear();
    for (const JobId id : live_ids_) {
      if (states_[find_slot(id)].alloc == crashed) victims_.push_back(id);
    }
    std::sort(victims_.begin(), victims_.end());
    for (const JobId id : victims_) {
      const std::int32_t slot = find_slot(id);
      JobState& s = states_[slot];
      if (trace_ != nullptr) {
        trace_close_span(slot);
        trace_instant(obs::TracePoint::kFault, slot, crashed, 0.0);
        ++run_index_[slot];
      }
      Recorder& rec = recorders_[slot];
      rec.close(now_);
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(s.job.id, std::move(rec.current));
      }
      rec.current = RunRecord{};
      s.alloc = kAllocUnassigned;
      s.rem_up = 0.0;
      s.rem_work = 0.0;
      s.rem_down = 0.0;
      s.active = Activity::kNone;
      // The abort changed the allocation without a directive: the next
      // keep/assign decision is new information and must be re-emitted.
      if (provenance_on_) last_dir_target_[slot] = kDirectiveNone;
      ++stats_.fault_aborts;
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, crashed});
    }
  }

  /// Loss semantics: the message in flight on the hit direction of the
  /// cloud's link at this instant is corrupted and must be retransmitted
  /// from zero. A downlink loss keeps the execution progress (the result
  /// still sits on the cloud); an uplink loss re-pays the whole upload.
  /// Nothing in flight => the loss is unobservable and hits nobody.
  void corrupt_in_flight_message(const FaultSpec& spec) {
    const Activity hit = spec.kind == FaultKind::kUplinkLoss
                             ? Activity::kUplink
                             : Activity::kDownlink;
    // Only an active job can be mid-transmission; active_ids_ is id-sorted,
    // so the first match is the lowest id, as with the old full scan.
    for (const std::int32_t slot : active_ids_) {
      JobState& s = states_[slot];
      if (s.alloc != spec.cloud || s.active != hit) continue;
      // The corrupted transmission physically used the link: its interval
      // stays recorded in the current run (quantity checks are >=).
      recorders_[slot].close(now_);
      s.active = Activity::kNone;
      if (hit == Activity::kUplink) {
        s.rem_up = s.job.up;
        ++stats_.uplink_retransmits;
      } else {
        s.rem_down = s.job.down;
        ++stats_.downlink_retransmits;
      }
      ++stats_.message_losses;
      if (trace_ != nullptr) {
        trace_close_span(slot);
        trace_instant(hit == Activity::kUplink
                          ? obs::TracePoint::kUplinkLoss
                          : obs::TracePoint::kDownlinkLoss,
                      slot, spec.cloud, 0.0);
      }
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, spec.cloud});
      break;  // one-port: at most one message per direction per cloud
    }
  }

  void push_fault_event(const Event& event) {
    events_.push_back(event);
    fault_log_.push_back(event);
  }

  SimResult finish() {
    // Streaming: the last completions of the run never saw another decision
    // round, so their slots still sit in the retire queue — harvest them.
    if (streaming_) flush_retired();
    // Counters mirroring SimStats are added in bulk here so the registry and
    // the returned stats are consistent by construction.
    if (metrics_ != nullptr) {
      metrics_->add(ids_->events, stats_.events);
      metrics_->add(ids_->decisions, stats_.decisions);
      metrics_->add(ids_->reassignments, stats_.reassignments);
      metrics_->add(ids_->preemptions, stats_.preemptions);
      metrics_->add(ids_->fault_aborts, stats_.fault_aborts);
      metrics_->add(ids_->uplink_retransmits, stats_.uplink_retransmits);
      metrics_->add(ids_->downlink_retransmits, stats_.downlink_retransmits);
      metrics_->add(ids_->message_losses, stats_.message_losses);
      metrics_->add(ids_->rejections, stats_.rejections);
      metrics_->add(ids_->sheds, stats_.sheds);
      metrics_->gauge_set(ids_->peak_live,
                          static_cast<double>(stats_.peak_live));
    }
    if (trace_ != nullptr) trace_->end_trace(now_);
    SimResult result;
    result.stats = stats_;
    result.fault_log = std::move(fault_log_);
    result.admission_log = std::move(admission_log_);
    const std::size_t total_jobs =
        streaming_ ? static_cast<std::size_t>(next_id_) : states_.size();
    if (config_.record_completions) {
      // -1 marks rejected / shed jobs (they never completed).
      result.completions.assign(total_jobs, -1.0);
      if (streaming_) {
        for (const auto& [id, completion] : completion_log_) {
          result.completions[id] = completion;
        }
      } else {
        for (const JobState& s : states_) {
          if (s.done) result.completions[s.job.id] = s.completion;
        }
      }
    }
    if (config_.record_schedule) {
      result.schedule = Schedule(static_cast<int>(total_jobs));
      for (auto& [id, run] : abandoned_runs_) {
        result.schedule.job(id).abandoned.push_back(std::move(run));
      }
      if (streaming_) {
        // Retired jobs harvested their final run on the way out; rejected
        // ids keep an empty record, like never-started jobs do.
        for (auto& [id, run] : final_runs_) {
          result.schedule.job(id).final_run = std::move(run);
        }
      } else {
        for (JobState& s : states_) {
          Recorder& rec = recorders_[s.job.id];
          rec.close(now_);
          result.schedule.job(s.job.id).final_run = std::move(rec.current);
        }
      }
    }
    return result;
  }

  const Instance& instance_;
  const Platform& platform_;
  Policy& policy_;
  EngineConfig config_;
  BusyMap busy_;
  ArrivalStream* stream_;   ///< null in materialized mode
  bool streaming_;

  std::vector<JobState> states_;
  std::vector<Recorder> recorders_;
  std::vector<std::pair<JobId, RunRecord>> abandoned_runs_;
  std::vector<JobId> release_order_;
  std::size_t next_release_ = 0;
  std::vector<Time> boundaries_;  ///< sorted outage begin/end wake-ups
  std::size_t next_boundary_ = 0;
  std::vector<FaultWake> wakes_;  ///< sorted fault-timeline wake-ups
  std::size_t next_wake_ = 0;
  std::vector<char> cloud_down_;  ///< crashed-and-not-yet-repaired flags
  std::vector<Event> fault_log_;  ///< realized kFault/kRecovery trace
  int remaining_jobs_ = 0;
  Time now_ = 0.0;
  std::vector<Event> events_;
  SimStats stats_;

  // --- active-set core: everything the per-event hot path touches ---
  /// Slots of jobs mid-activity, job-id-sorted per round (slot == id
  /// outside streaming, so this is id-sorted there too).
  std::vector<std::int32_t> active_ids_;
  std::vector<JobId> live_ids_;    ///< released-and-unfinished ids, unordered
  std::vector<std::int32_t> live_pos_;  ///< slot -> index in live_ids_, or -1
  std::vector<JobId> live_sorted_;      ///< per-round sorted copy of live_ids_
  std::vector<HeapEntry> heap_;         ///< lazy-deletion end-time min-heap
  std::vector<std::uint32_t> entry_version_;  ///< current heap version per slot
  std::vector<std::uint32_t> seen_round_;     ///< round stamp per slot
  std::uint32_t round_ = 0;
  std::vector<JobId> victims_;  ///< scratch for crash-abort / shed collection

  // --- streaming mode (engaged iff streaming_) ---
  static constexpr std::int32_t kSlotRetired = -1;  ///< id done, compactable
  static constexpr std::int32_t kSlotUnseen = -2;   ///< id hole, blocks base
  std::optional<Job> pending_;       ///< next arrival, not yet released
  Time last_arrival_ = -kTimeInfinity;
  JobId next_id_ = 0;                ///< one past the largest id ever seen
  /// id -> slot for ids in [window_base_, next emission): entry i (offset by
  /// window_start_) maps id window_base_ + i. Retired prefixes advance the
  /// base; storage compacts once the dead prefix dominates.
  std::vector<std::int32_t> window_;
  std::size_t window_start_ = 0;
  JobId window_base_ = 0;
  std::vector<std::int32_t> free_slots_;    ///< recycled state slots
  std::vector<std::int32_t> retire_queue_;  ///< completed, one round grace
  std::vector<std::pair<JobId, Time>> completion_log_;
  std::vector<std::pair<JobId, RunRecord>> final_runs_;

  // --- admission control ---
  bool admission_on_ = false;
  std::vector<AdmissionRecord> admission_log_;

  // --- progress watchdog ---
  static constexpr std::uint64_t kStallFloor = 100'000;
  std::uint64_t events_since_completion_ = 0;

  // Scratch buffers reused across decision rounds.
  std::vector<std::pair<double, JobId>> order_;
  std::vector<Directive> directives_;  ///< policy output, reused per round

  // --- observability (null sinks = everything below stays idle) ---
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::optional<Instruments> ids_;  ///< engaged iff metrics_ != nullptr
  obs::TeeTraceSink tee_;  ///< user sink + watchdog, when a watchdog is set
  bool provenance_on_ = false;
  /// Sentinel for "no directive emitted yet" in last_dir_target_ (any
  /// value no allocation can take).
  static constexpr int kDirectiveNone = std::numeric_limits<int>::min();
  std::vector<int> last_dir_target_;  ///< keep-dedup state (provenance only)
  std::vector<int> last_dir_reason_;

  /// Open trace span per job. Tracked separately from Recorder because
  /// recorder intervals close and reopen on every decision round, while a
  /// trace span runs until a true boundary: completion, preemption,
  /// reassignment, fault abort, or message loss.
  struct SpanState {
    Activity activity = Activity::kNone;
    int alloc = kAllocUnassigned;
    Time begin = 0.0;
  };
  std::vector<SpanState> spans_;  ///< sized only when tracing
  std::vector<int> run_index_;    ///< bumped per reassignment / fault abort
  std::vector<char> started_;     ///< first activation already observed
  std::uint64_t granted_ = 0;     ///< resources granted this decision round
};

}  // namespace

SimResult simulate(const Instance& instance, Policy& policy,
                   const EngineConfig& config) {
  policy.reset(instance);
  Engine engine(instance, policy, config);
  return engine.run();
}

SimResult simulate_stream(const Instance& base, ArrivalStream& arrivals,
                          Policy& policy, const EngineConfig& config) {
  policy.reset(base);
  Engine engine(base, &arrivals, policy, config);
  return engine.run();
}

}  // namespace ecs
