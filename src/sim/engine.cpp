#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/validate.hpp"

namespace ecs {
namespace {

/// Per-job recording of the currently open activity interval plus the
/// in-progress run record.
struct Recorder {
  RunRecord current;
  Activity open_activity = Activity::kNone;
  Time open_start = 0.0;

  void open(Activity activity, Time now) {
    open_activity = activity;
    open_start = now;
  }

  void close(Time now) {
    if (open_activity == Activity::kNone) return;
    switch (open_activity) {
      case Activity::kUplink:
        current.uplink.add(open_start, now);
        break;
      case Activity::kCompute:
        current.exec.add(open_start, now);
        break;
      case Activity::kDownlink:
        current.downlink.add(open_start, now);
        break;
      case Activity::kNone:
        break;
    }
    open_activity = Activity::kNone;
  }

  [[nodiscard]] bool has_history() const noexcept {
    return !current.uplink.empty() || !current.exec.empty() ||
           !current.downlink.empty();
  }
};

/// Busy markers for one decision round: which job holds each resource.
struct BusyMap {
  std::vector<JobId> edge_cpu, edge_send, edge_recv;
  std::vector<JobId> cloud_cpu, cloud_send, cloud_recv;

  explicit BusyMap(const Platform& platform)
      : edge_cpu(platform.edge_count(), -1),
        edge_send(platform.edge_count(), -1),
        edge_recv(platform.edge_count(), -1),
        cloud_cpu(platform.cloud_count(), -1),
        cloud_send(platform.cloud_count(), -1),
        cloud_recv(platform.cloud_count(), -1) {}

  void clear() {
    std::fill(edge_cpu.begin(), edge_cpu.end(), -1);
    std::fill(edge_send.begin(), edge_send.end(), -1);
    std::fill(edge_recv.begin(), edge_recv.end(), -1);
    std::fill(cloud_cpu.begin(), cloud_cpu.end(), -1);
    std::fill(cloud_send.begin(), cloud_send.end(), -1);
    std::fill(cloud_recv.begin(), cloud_recv.end(), -1);
  }
};

/// One wake-up of the fault timeline: a crash start, a crash repair
/// (recovery), or a message-loss instant.
struct FaultWake {
  Time time = 0.0;
  std::size_t spec = 0;  ///< index into the plan
  bool recovery = false;
};

class Engine {
 public:
  Engine(const Instance& instance, Policy& policy, const EngineConfig& config)
      : instance_(instance),
        platform_(instance.platform),
        policy_(policy),
        config_(config),
        busy_(instance.platform) {
    require_valid_instance(instance_);
    config_.faults.normalize();
    require_valid_fault_plan(config_.faults, platform_);
    max_events_ = config_.max_events != 0
                      ? config_.max_events
                      : std::max<std::uint64_t>(
                            10'000, 512ULL * instance_.jobs.size());
  }

  SimResult run() {
    init();
    while (remaining_jobs_ > 0) {
      step();
    }
    return finish();
  }

 private:
  void init() {
    const int n = instance_.job_count();
    states_.resize(n);
    recorders_.resize(n);
    for (int i = 0; i < n; ++i) {
      JobState& s = states_[i];
      s.job = instance_.jobs[i];
      s.best_time = platform_.best_time(s.job);
    }
    // Outage boundaries (cloud availability windows): every begin and end
    // is a wake-up point where the engine re-arbitrates, so an in-flight
    // activity on a cloud that becomes unavailable is preempted exactly at
    // the boundary and can resume at the next one.
    for (const IntervalSet& outages : instance_.cloud_outages) {
      for (const Interval& iv : outages.intervals()) {
        boundaries_.push_back(iv.begin);
        boundaries_.push_back(iv.end);
      }
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    next_boundary_ = 0;

    // Fault timeline: a wake-up per crash start, crash repair, and loss
    // instant, so every fault lands exactly on an engine event. Recoveries
    // sort before same-instant faults (a cloud repaired at t can crash
    // again at t, never the other way around).
    cloud_down_.assign(platform_.cloud_count(), 0);
    for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
      const FaultSpec& spec = config_.faults.faults[f];
      wakes_.push_back(FaultWake{spec.begin, f, false});
      if (spec.kind == FaultKind::kCrash) {
        wakes_.push_back(FaultWake{spec.end, f, true});
      }
    }
    std::sort(wakes_.begin(), wakes_.end(),
              [](const FaultWake& a, const FaultWake& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.recovery != b.recovery) return a.recovery;
                return a.spec < b.spec;
              });
    next_wake_ = 0;

    release_order_.resize(n);
    for (int i = 0; i < n; ++i) release_order_[i] = i;
    std::sort(release_order_.begin(), release_order_.end(),
              [&](JobId a, JobId b) {
                const Time ra = states_[a].job.release;
                const Time rb = states_[b].job.release;
                return ra != rb ? ra < rb : a < b;
              });
    next_release_ = 0;
    remaining_jobs_ = n;
    // Jump to the first release; faults scheduled earlier fire now (no job
    // existed to be hit, but the down/up state and the monitoring events
    // must be correct from the very first decision).
    now_ = n > 0 ? states_[release_order_[0]].job.release : 0.0;
    fire_faults();
    fire_releases();
    stats_.events += events_.size();
  }

  /// Releases every job whose release date is <= now (within tolerance).
  void fire_releases() {
    while (next_release_ < release_order_.size()) {
      JobState& s = states_[release_order_[next_release_]];
      if (!time_le(s.job.release, now_)) break;
      s.released = true;
      events_.push_back(Event{EventKind::kRelease, s.job.id, now_});
      ++next_release_;
    }
  }

  void step() {
    decide_and_activate();
    advance_to_next_event();
  }

  void decide_and_activate() {
    // 1. Ask the policy what to do about the events that just fired.
    const SimView view(instance_, states_, now_);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Directive> directives = policy_.decide(view, events_);
    const auto t1 = std::chrono::steady_clock::now();
    stats_.policy_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++stats_.decisions;
    events_.clear();

    // 2. Close all open intervals; they will reopen seamlessly below
    //    (IntervalSet::add merges touching pieces).
    for (JobState& s : states_) {
      if (s.active != Activity::kNone) {
        recorders_[s.job.id].close(now_);
        s.active = Activity::kNone;
      }
    }

    // 3. Apply allocation changes (the re-execution rule).
    for (const Directive& d : directives) {
      apply_directive(d);
    }

    // 4. Activate activities in priority order. Jobs without an explicit
    //    directive keep their allocation at the lowest priority, ordered by
    //    id, so the engine stays work-conserving and deterministic.
    order_.clear();
    for (const Directive& d : directives) {
      if (d.job >= 0 && d.job < static_cast<JobId>(states_.size()) &&
          states_[d.job].live()) {
        order_.push_back({d.priority, d.job});
      }
    }
    seen_.assign(states_.size(), false);
    for (const auto& [prio, id] : order_) seen_[id] = true;
    for (const JobState& s : states_) {
      if (s.live() && !seen_[s.job.id]) {
        order_.push_back({kTimeInfinity, s.job.id});
      }
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first != b.first ? a.first < b.first
                                                 : a.second < b.second;
                     });

    busy_.clear();
    for (const auto& [prio, id] : order_) {
      try_activate(states_[id]);
    }
  }

  void apply_directive(const Directive& d) {
    if (d.target == kTargetKeep) return;
    if (d.job < 0 || d.job >= static_cast<JobId>(states_.size())) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued a directive for unknown job " +
                               std::to_string(d.job));
    }
    JobState& s = states_[d.job];
    if (!s.live()) return;
    if (d.target != kAllocEdge &&
        (!is_cloud_alloc(d.target) || d.target >= platform_.cloud_count())) {
      throw std::runtime_error("policy " + policy_.name() +
                               " issued invalid target " +
                               std::to_string(d.target) + " for job " +
                               std::to_string(d.job));
    }
    if (d.target == s.alloc) return;

    Recorder& rec = recorders_[d.job];
    rec.close(now_);
    if (s.alloc != kAllocUnassigned) {
      // Abandon the current run; its history stays on the books because it
      // physically occupied resources.
      ++s.reassignments;
      ++stats_.reassignments;
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(d.job, std::move(rec.current));
      }
      rec.current = RunRecord{};
    }
    s.alloc = d.target;
    rec.current.alloc = d.target;
    if (d.target == kAllocEdge) {
      s.rem_up = 0.0;
      s.rem_work = s.job.work;
      s.rem_down = 0.0;
    } else {
      s.rem_up = s.job.up;
      s.rem_work = s.job.work;
      s.rem_down = s.job.down;
    }
  }

  void try_activate(JobState& s) {
    if (!s.live()) return;
    const Activity needed = s.next_activity();
    if (needed == Activity::kNone) return;
    const EdgeId o = s.job.origin;
    const JobId id = s.job.id;
    // A cloud processor inside an availability outage serves nothing —
    // neither computation nor communication involving it. The same holds
    // for an unannounced crash, except that the policy was never told.
    if (is_cloud_alloc(s.alloc) &&
        (!instance_.cloud_available(s.alloc, now_) ||
         cloud_down_[s.alloc] != 0)) {
      return;
    }
    switch (needed) {
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          if (busy_.edge_cpu[o] != -1) return;
          busy_.edge_cpu[o] = id;
        } else {
          if (busy_.cloud_cpu[s.alloc] != -1) return;
          busy_.cloud_cpu[s.alloc] = id;
        }
        break;
      case Activity::kUplink:
        if (busy_.edge_send[o] != -1 || busy_.cloud_recv[s.alloc] != -1) {
          return;
        }
        busy_.edge_send[o] = id;
        busy_.cloud_recv[s.alloc] = id;
        break;
      case Activity::kDownlink:
        if (busy_.cloud_send[s.alloc] != -1 || busy_.edge_recv[o] != -1) {
          return;
        }
        busy_.cloud_send[s.alloc] = id;
        busy_.edge_recv[o] = id;
        break;
      case Activity::kNone:
        return;
    }
    s.active = needed;
    recorders_[id].open(needed, now_);
  }

  [[nodiscard]] Time activity_end(const JobState& s) const {
    switch (s.active) {
      case Activity::kUplink:
        return now_ + clamp_amount(s.rem_up);
      case Activity::kCompute:
        if (s.alloc == kAllocEdge) {
          return now_ +
                 clamp_amount(s.rem_work) / platform_.edge_speed(s.job.origin);
        }
        return now_ + clamp_amount(s.rem_work) / platform_.cloud_speed(s.alloc);
      case Activity::kDownlink:
        return now_ + clamp_amount(s.rem_down);
      case Activity::kNone:
        return kTimeInfinity;
    }
    return kTimeInfinity;
  }

  void advance_to_next_event() {
    Time next = kTimeInfinity;
    for (const JobState& s : states_) {
      if (s.active != Activity::kNone) {
        next = std::min(next, activity_end(s));
      }
    }
    if (next_release_ < release_order_.size()) {
      next = std::min(next,
                      states_[release_order_[next_release_]].job.release);
    }
    while (next_boundary_ < boundaries_.size() &&
           time_le(boundaries_[next_boundary_], now_)) {
      ++next_boundary_;
    }
    if (next_boundary_ < boundaries_.size()) {
      next = std::min(next, boundaries_[next_boundary_]);
    }
    if (next_wake_ < wakes_.size()) {
      next = std::min(next, wakes_[next_wake_].time);
    }
    if (next == kTimeInfinity) {
      std::ostringstream os;
      os << "simulation stalled at t=" << now_ << ": policy "
         << policy_.name() << " left all " << remaining_jobs_
         << " live job(s) without a runnable activity and no event is "
            "pending; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }

    const double dt = std::max(0.0, next - now_);
    for (JobState& s : states_) {
      if (s.active == Activity::kNone) continue;
      switch (s.active) {
        case Activity::kUplink:
          s.rem_up = clamp_amount(s.rem_up - dt);
          break;
        case Activity::kCompute:
          if (s.alloc == kAllocEdge) {
            s.rem_work = clamp_amount(
                s.rem_work - dt * platform_.edge_speed(s.job.origin));
          } else {
            s.rem_work = clamp_amount(
                s.rem_work - dt * platform_.cloud_speed(s.alloc));
          }
          break;
        case Activity::kDownlink:
          s.rem_down = clamp_amount(s.rem_down - dt);
          break;
        case Activity::kNone:
          break;
      }
    }
    now_ = next;

    // Fire completions.
    for (JobState& s : states_) {
      if (s.active == Activity::kNone) continue;
      bool fired = false;
      switch (s.active) {
        case Activity::kUplink:
          if (amount_done(s.rem_up)) {
            s.rem_up = 0.0;
            events_.push_back(Event{EventKind::kUplinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kCompute:
          if (amount_done(s.rem_work)) {
            s.rem_work = 0.0;
            events_.push_back(Event{EventKind::kComputeDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kDownlink:
          if (amount_done(s.rem_down)) {
            s.rem_down = 0.0;
            events_.push_back(
                Event{EventKind::kDownlinkDone, s.job.id, now_});
            fired = true;
          }
          break;
        case Activity::kNone:
          break;
      }
      if (fired) {
        recorders_[s.job.id].close(now_);
        s.active = Activity::kNone;
        if (s.all_amounts_done()) {
          s.done = true;
          s.completion = now_;
          --remaining_jobs_;
        }
      }
    }
    fire_faults();
    fire_releases();

    stats_.events += events_.size();
    if (stats_.events > max_events_) {
      std::ostringstream os;
      os << "event cap (" << max_events_ << ") exceeded at t=" << now_
         << " by policy " << policy_.name() << " with " << remaining_jobs_
         << " live job(s) after " << stats_.reassignments
         << " reassignment(s) and " << stats_.fault_aborts
         << " fault abort(s); the policy is likely thrashing "
            "re-executions; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }
  }

  /// Compact dump of the live jobs — id, allocation, current activity —
  /// for the stall / event-cap diagnostics. Capped at 8 entries.
  [[nodiscard]] std::string describe_live_jobs() const {
    std::ostringstream os;
    int shown = 0;
    for (const JobState& s : states_) {
      if (!s.live()) continue;
      if (shown == 8) {
        os << ", ...";
        break;
      }
      if (shown > 0) os << ", ";
      os << "J" << s.job.id << "(";
      if (s.alloc == kAllocUnassigned) {
        os << "unassigned";
      } else if (s.alloc == kAllocEdge) {
        os << "edge" << s.job.origin;
      } else {
        os << "cloud" << s.alloc;
        if (cloud_down_[s.alloc] != 0) os << ":down";
      }
      os << "/" << to_string(s.active) << ")";
      ++shown;
    }
    if (shown == 0) os << "none";
    return os.str();
  }

  /// Processes every fault-timeline wake-up that is due at `now_`: flips
  /// the down/up state, fires the monitoring events, aborts crash victims
  /// (progress fully discarded — the machine's memory is gone) and corrupts
  /// in-flight messages at loss instants.
  void fire_faults() {
    while (next_wake_ < wakes_.size() &&
           time_le(wakes_[next_wake_].time, now_)) {
      const FaultWake& wake = wakes_[next_wake_];
      const FaultSpec& spec = config_.faults.faults[wake.spec];
      if (wake.recovery) {
        cloud_down_[spec.cloud] = 0;
        push_fault_event(Event{EventKind::kRecovery, -1, now_, spec.cloud});
      } else if (spec.kind == FaultKind::kCrash) {
        cloud_down_[spec.cloud] = 1;
        push_fault_event(Event{EventKind::kFault, -1, now_, spec.cloud});
        abort_jobs_on_cloud(spec.cloud);
      } else {
        corrupt_in_flight_message(spec);
      }
      ++next_wake_;
    }
  }

  /// Crash semantics: every job allocated to the crashed cloud loses ALL
  /// progress (uplink included — the data sat on the dead machine, not in
  /// the network) and returns to the unassigned state; the partial run
  /// stays on the books as an abandoned run because it physically occupied
  /// resources.
  void abort_jobs_on_cloud(CloudId crashed) {
    for (JobState& s : states_) {
      if (!s.live() || s.alloc != crashed) continue;
      Recorder& rec = recorders_[s.job.id];
      rec.close(now_);
      if (config_.record_schedule && rec.has_history()) {
        abandoned_runs_.emplace_back(s.job.id, std::move(rec.current));
      }
      rec.current = RunRecord{};
      s.alloc = kAllocUnassigned;
      s.rem_up = 0.0;
      s.rem_work = 0.0;
      s.rem_down = 0.0;
      s.active = Activity::kNone;
      ++stats_.fault_aborts;
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, crashed});
    }
  }

  /// Loss semantics: the message in flight on the hit direction of the
  /// cloud's link at this instant is corrupted and must be retransmitted
  /// from zero. A downlink loss keeps the execution progress (the result
  /// still sits on the cloud); an uplink loss re-pays the whole upload.
  /// Nothing in flight => the loss is unobservable and hits nobody.
  void corrupt_in_flight_message(const FaultSpec& spec) {
    const Activity hit = spec.kind == FaultKind::kUplinkLoss
                             ? Activity::kUplink
                             : Activity::kDownlink;
    for (JobState& s : states_) {
      if (!s.live() || s.alloc != spec.cloud || s.active != hit) continue;
      // The corrupted transmission physically used the link: its interval
      // stays recorded in the current run (quantity checks are >=).
      recorders_[s.job.id].close(now_);
      s.active = Activity::kNone;
      if (hit == Activity::kUplink) {
        s.rem_up = s.job.up;
      } else {
        s.rem_down = s.job.down;
      }
      ++stats_.message_losses;
      push_fault_event(Event{EventKind::kFault, s.job.id, now_, spec.cloud});
      break;  // one-port: at most one message per direction per cloud
    }
  }

  void push_fault_event(const Event& event) {
    events_.push_back(event);
    fault_log_.push_back(event);
  }

  SimResult finish() {
    SimResult result;
    result.stats = stats_;
    result.fault_log = std::move(fault_log_);
    result.completions.resize(states_.size());
    for (const JobState& s : states_) {
      result.completions[s.job.id] = s.completion;
    }
    if (config_.record_schedule) {
      result.schedule = Schedule(instance_.job_count());
      for (auto& [id, run] : abandoned_runs_) {
        result.schedule.job(id).abandoned.push_back(std::move(run));
      }
      for (JobState& s : states_) {
        Recorder& rec = recorders_[s.job.id];
        rec.close(now_);
        result.schedule.job(s.job.id).final_run = std::move(rec.current);
      }
    }
    return result;
  }

  const Instance& instance_;
  const Platform& platform_;
  Policy& policy_;
  EngineConfig config_;
  BusyMap busy_;
  std::uint64_t max_events_ = 0;

  std::vector<JobState> states_;
  std::vector<Recorder> recorders_;
  std::vector<std::pair<JobId, RunRecord>> abandoned_runs_;
  std::vector<JobId> release_order_;
  std::size_t next_release_ = 0;
  std::vector<Time> boundaries_;  ///< sorted outage begin/end wake-ups
  std::size_t next_boundary_ = 0;
  std::vector<FaultWake> wakes_;  ///< sorted fault-timeline wake-ups
  std::size_t next_wake_ = 0;
  std::vector<char> cloud_down_;  ///< crashed-and-not-yet-repaired flags
  std::vector<Event> fault_log_;  ///< realized kFault/kRecovery trace
  int remaining_jobs_ = 0;
  Time now_ = 0.0;
  std::vector<Event> events_;
  SimStats stats_;

  // Scratch buffers reused across decision rounds.
  std::vector<std::pair<double, JobId>> order_;
  std::vector<char> seen_;
};

}  // namespace

SimResult simulate(const Instance& instance, Policy& policy,
                   const EngineConfig& config) {
  policy.reset(instance);
  Engine engine(instance, policy, config);
  return engine.run();
}

}  // namespace ecs
